#ifndef ZEROONE_DATALOG_MEASURE_H_
#define ZEROONE_DATALOG_MEASURE_H_

#include "common/polynomial.h"
#include "common/rational.h"
#include "core/generic_instance.h"
#include "data/database.h"
#include "datalog/program.h"

namespace zeroone {

// Measures for datalog queries. A datalog program is a generic query
// (logic-defined, data-independent), so Theorem 1 applies verbatim:
// µ(Q,D,ā) ∈ {0,1} with µ = 1 iff ā is a naïve answer — even though
// datalog is not first-order. These functions lower a program to the
// formalism-agnostic GenericInstance and reuse the shared measure engine,
// which is exactly how the paper's "only genericity is needed" argument
// plays out in code.

// Lowers (program, D, ā) to the generic measure interface.
GenericInstance MakeDatalogInstance(const DatalogProgram& program,
                                    const Database& db, const Tuple& tuple);

// µ(Q,D,ā) by the 0–1 law: 1 iff ā ∈ Q^naive(D) (one bottom-up run).
int DatalogMuLimit(const DatalogProgram& program, const Database& db,
                   const Tuple& tuple);

// Exact µ^k by enumeration (ground truth; exponential in #nulls).
Rational DatalogMuK(const DatalogProgram& program, const Database& db,
                    const Tuple& tuple, std::size_t k);

// µ from the definition via the partition-polynomial method — the
// independent check that the 0–1 law holds beyond FO.
Rational DatalogMuViaPolynomial(const DatalogProgram& program,
                                const Database& db, const Tuple& tuple);

}  // namespace zeroone

#endif  // ZEROONE_DATALOG_MEASURE_H_
