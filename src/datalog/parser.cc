#include "datalog/parser.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace zeroone {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipWhitespaceAndComments() {
    while (position_ < text_.size()) {
      char c = text_[position_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++position_;
      } else if (c == '%' || c == '#') {
        while (position_ < text_.size() && text_[position_] != '\n') {
          ++position_;
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return position_ >= text_.size();
  }

  char Peek() {
    SkipWhitespaceAndComments();
    return position_ < text_.size() ? text_[position_] : '\0';
  }

  bool Consume(char expected) {
    SkipWhitespaceAndComments();
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  bool ConsumeSequence(std::string_view expected) {
    SkipWhitespaceAndComments();
    if (text_.substr(position_, expected.size()) == expected) {
      position_ += expected.size();
      return true;
    }
    return false;
  }

  StatusOr<std::string> Identifier() {
    SkipWhitespaceAndComments();
    std::size_t start = position_;
    while (position_ < text_.size()) {
      char c = text_[position_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++position_;
      } else {
        break;
      }
    }
    if (position_ == start) {
      return Status::Error("datalog parse error at offset ", position_,
                           ": expected identifier");
    }
    return std::string(text_.substr(start, position_ - start));
  }

  StatusOr<std::string> QuotedString() {
    // Precondition: Peek() == '\''.
    ++position_;
    std::size_t start = position_;
    while (position_ < text_.size() && text_[position_] != '\'') ++position_;
    if (position_ == text_.size()) {
      return Status::Error("datalog parse error: unterminated string");
    }
    std::string result(text_.substr(start, position_ - start));
    ++position_;
    return result;
  }

  std::size_t position() const { return position_; }

 private:
  std::string_view text_;
  std::size_t position_ = 0;
};

// Per-rule variable scope: names → dense ids.
class RuleScope {
 public:
  std::size_t IdOf(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    std::size_t id = names_.size();
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }
  std::vector<std::string> names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::size_t> ids_;
};

StatusOr<Term> ParseTerm(Cursor* cursor, RuleScope* scope) {
  char c = cursor->Peek();
  if (c == '\'') {
    ZO_ASSIGN_OR_RETURN(std::string text, cursor->QuotedString());
    return Term::Val(Value::Constant(text));
  }
  ZO_ASSIGN_OR_RETURN(std::string identifier, cursor->Identifier());
  char first = identifier[0];
  if (std::isupper(static_cast<unsigned char>(first))) {
    return Term::Variable(scope->IdOf(identifier));
  }
  return Term::Val(Value::Constant(identifier));
}

StatusOr<DatalogAtom> ParseAtom(Cursor* cursor, RuleScope* scope) {
  DatalogAtom atom;
  ZO_ASSIGN_OR_RETURN(atom.predicate, cursor->Identifier());
  if (!cursor->Consume('(')) {
    return Status::Error("datalog parse error: expected '(' after ",
                         atom.predicate);
  }
  if (cursor->Peek() != ')') {
    while (true) {
      ZO_ASSIGN_OR_RETURN(Term term, ParseTerm(cursor, scope));
      atom.terms.push_back(term);
      if (cursor->Consume(',')) continue;
      break;
    }
  }
  if (!cursor->Consume(')')) {
    return Status::Error("datalog parse error: expected ')' closing atom");
  }
  return atom;
}

}  // namespace

StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text) {
  Cursor cursor(text);
  std::vector<DatalogRule> rules;
  std::string goal;
  while (!cursor.AtEnd()) {
    if (cursor.ConsumeSequence("?-")) {
      ZO_ASSIGN_OR_RETURN(std::string predicate, cursor.Identifier());
      if (!goal.empty()) {
        return Status::Error("datalog parse error: multiple goals");
      }
      goal = std::move(predicate);
      continue;
    }
    RuleScope scope;
    DatalogRule rule;
    ZO_ASSIGN_OR_RETURN(rule.head, ParseAtom(&cursor, &scope));
    if (cursor.ConsumeSequence(":-")) {
      while (true) {
        DatalogLiteral literal;
        literal.negated = cursor.Consume('!');
        ZO_ASSIGN_OR_RETURN(literal.atom, ParseAtom(&cursor, &scope));
        rule.body.push_back(std::move(literal));
        if (cursor.Consume(',')) continue;
        break;
      }
    }
    if (!cursor.Consume('.')) {
      return Status::Error("datalog parse error at offset ",
                           cursor.position(),
                           ": expected '.' ending the rule");
    }
    rule.variable_names = scope.names();
    rules.push_back(std::move(rule));
  }
  if (goal.empty()) {
    return Status::Error("datalog parse error: missing goal ('?- P')");
  }
  return DatalogProgram::Create(std::move(rules), std::move(goal));
}

}  // namespace zeroone
