#ifndef ZEROONE_DATALOG_EVAL_H_
#define ZEROONE_DATALOG_EVAL_H_

#include <string>
#include <vector>

#include "data/database.h"
#include "datalog/program.h"

namespace zeroone {

// Bottom-up evaluation of a stratified datalog program: strata are
// materialized in order, each with semi-naive fixpoint iteration (every
// round instantiates each recursive rule with at least one delta literal,
// so no derivation is recomputed). Evaluation is syntactic on values, so on
// incomplete databases this computes the program's *naïve* answers — nulls
// behave as fresh constants, exactly as in the FO evaluator, and the
// measure machinery (datalog/measure.h) builds on that.

// Materializes all intensional predicates over the given database and
// returns the result (EDB relations unchanged, IDB relations filled).
Database MaterializeDatalog(const DatalogProgram& program, const Database& db);

// The goal relation's tuples after materialization.
std::vector<Tuple> EvaluateDatalog(const DatalogProgram& program,
                                   const Database& db);

// Membership test: ā ∈ goal(D).
bool DatalogMembership(const DatalogProgram& program, const Database& db,
                       const Tuple& tuple);

// Renders the cost-based body orders the semi-naive evaluator would pick
// for each rule's initial round against `db`, with the estimates behind
// each pick — the datalog side of `zeroone_cli --explain` / `@explain=1`.
std::string ExplainDatalogPlan(const DatalogProgram& program,
                               const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_DATALOG_EVAL_H_
