#ifndef ZEROONE_DATALOG_PARSER_H_
#define ZEROONE_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"

namespace zeroone {

// Parses a datalog program. Syntax:
//
//   T(X, Y) :- E(X, Y).
//   T(X, Z) :- E(X, Y), T(Y, Z).
//   Far(X)  :- T(a, X), !E(a, X).
//   ?- Far
//
// One rule per '.'-terminated statement; '!' negates a body literal; the
// final '?- <predicate>' names the goal. Identifiers beginning with an
// uppercase letter are variables (Prolog convention — note this differs
// from the FO query parser, which uses declaration sites); lowercase
// identifiers, numbers, and single-quoted strings are constants. '%' or '#'
// start comments to end of line.
StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text);

}  // namespace zeroone

#endif  // ZEROONE_DATALOG_PARSER_H_
