#include "datalog/eval.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>

#include "common/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

namespace {

// A variable binding during rule instantiation.
using Binding = std::vector<std::optional<Value>>;

std::size_t RuleVariableCount(const DatalogRule& rule) {
  std::size_t count = rule.variable_names.size();
  auto note = [&](const DatalogAtom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) count = std::max(count, t.variable_id() + 1);
    }
  };
  note(rule.head);
  for (const DatalogLiteral& literal : rule.body) note(literal.atom);
  return count;
}

// Tries to match `atom` against `tuple`, extending the binding; returns the
// variables newly bound (for rollback), or nullopt on mismatch.
std::optional<std::vector<std::size_t>> MatchAtom(const DatalogAtom& atom,
                                                  const Tuple& tuple,
                                                  Binding* binding) {
  if (atom.terms.size() != tuple.arity()) return std::nullopt;
  std::vector<std::size_t> newly_bound;
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_value()) {
      if (t.value() != tuple[i]) {
        for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
        return std::nullopt;
      }
      continue;
    }
    std::optional<Value>& slot = (*binding)[t.variable_id()];
    if (slot) {
      if (*slot != tuple[i]) {
        for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
        return std::nullopt;
      }
    } else {
      slot = tuple[i];
      newly_bound.push_back(t.variable_id());
    }
  }
  return newly_bound;
}

// The instantiated image of an atom under a (total-enough) binding.
Tuple Instantiate(const DatalogAtom& atom, const Binding& binding) {
  std::vector<Value> values;
  values.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    if (t.is_value()) {
      values.push_back(t.value());
    } else {
      assert(binding[t.variable_id()] && "unsafe rule slipped through");
      values.push_back(*binding[t.variable_id()]);
    }
  }
  return Tuple(std::move(values));
}

// Relation lookup that treats missing relations as empty.
const std::vector<Tuple>& TuplesOf(const Database& db,
                                   const std::string& predicate) {
  static const std::vector<Tuple>& kEmpty = *new std::vector<Tuple>();
  if (!db.HasRelation(predicate)) return kEmpty;
  return db.relation(predicate).tuples();
}

// Recursively instantiates positive body literals (literal `delta_index`
// drawing from `delta` instead of the full database), then checks negated
// literals and emits the head instantiation.
void FireRule(const DatalogRule& rule, const Database& db,
              const std::map<std::string, std::set<Tuple>>* delta,
              int delta_index, std::size_t literal_index, Binding* binding,
              std::set<Tuple>* derived) {
  if (literal_index == rule.body.size()) {
    ZO_COUNTER_INC("datalog.rule_firings");
    derived->insert(Instantiate(rule.head, *binding));
    return;
  }
  const DatalogLiteral& literal = rule.body[literal_index];
  if (literal.negated) {
    // Negated literals refer to lower strata (or EDB), fully materialized
    // in `db`; safety guarantees the atom is ground here.
    Tuple image = Instantiate(literal.atom, *binding);
    bool present = db.HasRelation(literal.atom.predicate) &&
                   db.relation(literal.atom.predicate).Contains(image);
    if (!present) {
      FireRule(rule, db, delta, delta_index, literal_index + 1, binding,
               derived);
    }
    return;
  }
  // Positive literal: iterate matching tuples, from the delta if this is
  // the designated delta position.
  auto scan = [&](const Tuple& tuple) {
    std::optional<std::vector<std::size_t>> bound =
        MatchAtom(literal.atom, tuple, binding);
    if (!bound) return;
    FireRule(rule, db, delta, delta_index, literal_index + 1, binding,
             derived);
    for (std::size_t v : *bound) (*binding)[v] = std::nullopt;
  };
  if (delta != nullptr && static_cast<int>(literal_index) == delta_index) {
    auto it = delta->find(literal.atom.predicate);
    if (it == delta->end()) return;
    for (const Tuple& tuple : it->second) scan(tuple);
  } else {
    for (const Tuple& tuple : TuplesOf(db, literal.atom.predicate)) {
      scan(tuple);
    }
  }
}

}  // namespace

Database MaterializeDatalog(const DatalogProgram& program,
                            const Database& db) {
  ZO_TRACE_SPAN("MaterializeDatalog");
  Database materialized = db;
  // Declare all intensional relations (possibly empty).
  std::map<std::string, std::size_t> idb_arity;
  for (const DatalogRule& rule : program.rules()) {
    idb_arity[rule.head.predicate] = rule.head.terms.size();
  }
  for (const auto& [predicate, arity] : idb_arity) {
    materialized.AddRelation(predicate, arity);
  }

  for (const std::vector<std::string>& stratum : program.strata()) {
    std::set<std::string> in_stratum(stratum.begin(), stratum.end());
    std::vector<const DatalogRule*> stratum_rules;
    for (const DatalogRule& rule : program.rules()) {
      if (in_stratum.count(rule.head.predicate) != 0) {
        stratum_rules.push_back(&rule);
      }
    }
    // Initial round: full evaluation of every rule of the stratum.
    ZO_COUNTER_INC("datalog.rounds");
    std::map<std::string, std::set<Tuple>> delta;
    for (const DatalogRule* rule : stratum_rules) {
      Binding binding(RuleVariableCount(*rule));
      std::set<Tuple> derived;
      FireRule(*rule, materialized, nullptr, -1, 0, &binding, &derived);
      for (const Tuple& t : derived) {
        Relation& relation =
            materialized.mutable_relation(rule->head.predicate);
        if (!relation.Contains(t)) {
          relation.Insert(t);
          ZO_COUNTER_INC("datalog.facts_derived");
          delta[rule->head.predicate].insert(t);
        }
      }
    }
    // Semi-naive rounds: each recursive instantiation uses the latest delta
    // in one positive literal position. A cancellation request abandons the
    // fixpoint mid-way; the token's installer discards the partial result.
    while (!delta.empty() && !CancellationRequested()) {
      ZO_COUNTER_INC("datalog.rounds");
      std::map<std::string, std::set<Tuple>> next_delta;
      for (const DatalogRule* rule : stratum_rules) {
        for (std::size_t i = 0; i < rule->body.size(); ++i) {
          const DatalogLiteral& literal = rule->body[i];
          if (literal.negated) continue;
          if (in_stratum.count(literal.atom.predicate) == 0) continue;
          if (delta.find(literal.atom.predicate) == delta.end()) continue;
          Binding binding(RuleVariableCount(*rule));
          std::set<Tuple> derived;
          FireRule(*rule, materialized, &delta, static_cast<int>(i), 0,
                   &binding, &derived);
          for (const Tuple& t : derived) {
            Relation& relation =
                materialized.mutable_relation(rule->head.predicate);
            if (!relation.Contains(t)) {
              relation.Insert(t);
              ZO_COUNTER_INC("datalog.facts_derived");
              next_delta[rule->head.predicate].insert(t);
            }
          }
        }
      }
      delta = std::move(next_delta);
    }
  }
  return materialized;
}

std::vector<Tuple> EvaluateDatalog(const DatalogProgram& program,
                                   const Database& db) {
  Database materialized = MaterializeDatalog(program, db);
  if (!materialized.HasRelation(program.goal_predicate())) return {};
  return materialized.relation(program.goal_predicate()).tuples();
}

bool DatalogMembership(const DatalogProgram& program, const Database& db,
                       const Tuple& tuple) {
  Database materialized = MaterializeDatalog(program, db);
  return materialized.HasRelation(program.goal_predicate()) &&
         materialized.relation(program.goal_predicate()).Contains(tuple);
}

}  // namespace zeroone
