#include "datalog/eval.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "plan/datalog_plan.h"
#include "plan/mode.h"

namespace zeroone {

namespace {

// A variable binding during rule instantiation.
using Binding = std::vector<std::optional<Value>>;

std::size_t RuleVariableCount(const DatalogRule& rule) {
  std::size_t count = rule.variable_names.size();
  auto note = [&](const DatalogAtom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) count = std::max(count, t.variable_id() + 1);
    }
  };
  note(rule.head);
  for (const DatalogLiteral& literal : rule.body) note(literal.atom);
  return count;
}

// Tries to match `atom` against `tuple`, extending the binding; returns the
// variables newly bound (for rollback), or nullopt on mismatch.
std::optional<std::vector<std::size_t>> MatchAtom(const DatalogAtom& atom,
                                                  Relation::Row tuple,
                                                  Binding* binding) {
  if (atom.terms.size() != tuple.arity()) return std::nullopt;
  std::vector<std::size_t> newly_bound;
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_value()) {
      if (t.value() != tuple[i]) {
        for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
        return std::nullopt;
      }
      continue;
    }
    std::optional<Value>& slot = (*binding)[t.variable_id()];
    if (slot) {
      if (*slot != tuple[i]) {
        for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
        return std::nullopt;
      }
    } else {
      slot = tuple[i];
      newly_bound.push_back(t.variable_id());
    }
  }
  return newly_bound;
}

// The instantiated image of an atom under a (total-enough) binding.
Tuple Instantiate(const DatalogAtom& atom, const Binding& binding) {
  std::vector<Value> values;
  values.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    if (t.is_value()) {
      values.push_back(t.value());
    } else {
      assert(binding[t.variable_id()] && "unsafe rule slipped through");
      values.push_back(*binding[t.variable_id()]);
    }
  }
  return Tuple(std::move(values));
}

// Relation lookup that treats missing relations as empty.
const Relation& RelationOf(const Database& db, const std::string& predicate) {
  static const Relation kEmpty;
  if (!db.HasRelation(predicate)) return kEmpty;
  return db.relation(predicate);
}

// Iterates the rows of `rel` that can match `atom` under `binding`. In
// indexed mode, columns already fixed by constant terms or bound variables
// become a hash probe; the scan path visits every row (the historical
// behavior, kept for ZEROONE_STORAGE=scan differential runs). Either way
// MatchAtom re-verifies each candidate, so the two paths see identical
// match sets.
template <typename Fn>
void ForEachCandidate(const Relation& rel, const DatalogAtom& atom,
                      const Binding& binding, Fn&& fn) {
  if (storage_mode() == StorageMode::kIndexed &&
      atom.terms.size() == rel.arity() && rel.arity() > 0 &&
      rel.arity() <= Relation::kMaxIndexedColumns) {
    Relation::Mask mask = 0;
    std::vector<Value> key;
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (t.is_value()) {
        mask |= Relation::Mask{1} << i;
        key.push_back(t.value());
      } else if (binding[t.variable_id()]) {
        mask |= Relation::Mask{1} << i;
        key.push_back(*binding[t.variable_id()]);
      }
    }
    if (mask != 0) {
      for (std::uint32_t pos : rel.Probe(mask, key)) fn(rel.row(pos));
      return;
    }
  }
  for (std::size_t pos = 0; pos < rel.size(); ++pos) fn(rel.row(pos));
}

// Adapts a rule body to the planner's literal structs.
std::vector<plan::BodyLiteral> PlannedBody(const DatalogRule& rule) {
  std::vector<plan::BodyLiteral> body;
  body.reserve(rule.body.size());
  for (const DatalogLiteral& literal : rule.body) {
    body.push_back(
        {literal.atom.predicate, literal.atom.terms, literal.negated});
  }
  return body;
}

// Recursively instantiates positive body literals (literal `delta_index`
// drawing from `delta` instead of the full database), then checks negated
// literals and emits the head instantiation. When `order` is non-null
// (compiled plan mode), position i evaluates body[(*order)[i]] — delta
// designation and ground-negation checks follow the actual literal, so
// the derived set is the written-order one (join order is invisible to a
// set of instantiations).
void FireRule(const DatalogRule& rule, const Database& db,
              const std::map<std::string, Relation>* delta, int delta_index,
              const std::vector<std::size_t>* order,
              std::size_t literal_index, Binding* binding,
              std::set<Tuple>* derived) {
  if (literal_index == rule.body.size()) {
    ZO_COUNTER_INC("datalog.rule_firings");
    derived->insert(Instantiate(rule.head, *binding));
    return;
  }
  std::size_t actual =
      order != nullptr ? (*order)[literal_index] : literal_index;
  const DatalogLiteral& literal = rule.body[actual];
  if (literal.negated) {
    // Negated literals refer to lower strata (or EDB), fully materialized
    // in `db`; safety (plus the orderer's ground-only placement) guarantees
    // the atom is ground here.
    Tuple image = Instantiate(literal.atom, *binding);
    bool present = db.HasRelation(literal.atom.predicate) &&
                   db.relation(literal.atom.predicate).Contains(image);
    if (!present) {
      FireRule(rule, db, delta, delta_index, order, literal_index + 1,
               binding, derived);
    }
    return;
  }
  // Positive literal: iterate matching tuples, from the delta if this is
  // the designated delta position.
  auto scan = [&](Relation::Row tuple) {
    std::optional<std::vector<std::size_t>> bound =
        MatchAtom(literal.atom, tuple, binding);
    if (!bound) return;
    FireRule(rule, db, delta, delta_index, order, literal_index + 1, binding,
             derived);
    for (std::size_t v : *bound) (*binding)[v] = std::nullopt;
  };
  if (delta != nullptr && static_cast<int>(actual) == delta_index) {
    auto it = delta->find(literal.atom.predicate);
    if (it == delta->end()) return;
    ForEachCandidate(it->second, literal.atom, *binding, scan);
  } else {
    ForEachCandidate(RelationOf(db, literal.atom.predicate), literal.atom,
                     *binding, scan);
  }
}

// Evaluates one whole rule body into `derived`, parallelizing the first
// evaluated literal: its candidate rows are materialized once (the rows of
// the delta or full relation that a probe under the empty binding admits)
// and swept in morsels, each worker joining the remaining literals via
// FireRule into a per-morsel derived set. The per-morsel sets union into
// `derived` — a set union is order-free, so the round's derived set, and
// with it every fixpoint, is byte-identical at any thread count. Falls back
// to the plain recursion when the first literal is negated (ground check,
// nothing to partition) or the body is empty.
//
// Every candidate polls the CancelToken and passes the deterministic
// `datalog.join.cancel` fault site (the standing datalog-loop fault
// coverage item): a deadline or injected fault abandons the join mid-sweep
// and the token's installer discards the partial materialization.
void FireRuleAll(const DatalogRule& rule, const Database& db,
                 const std::map<std::string, Relation>* delta,
                 int delta_index, const std::vector<std::size_t>* order,
                 std::set<Tuple>* derived) {
  std::size_t variable_count = RuleVariableCount(rule);
  std::size_t actual = order != nullptr && !order->empty() ? (*order)[0] : 0;
  const Relation* rel = nullptr;
  if (!rule.body.empty() && !rule.body[actual].negated) {
    const DatalogLiteral& literal = rule.body[actual];
    if (delta != nullptr && static_cast<int>(actual) == delta_index) {
      auto it = delta->find(literal.atom.predicate);
      if (it == delta->end()) return;
      rel = &it->second;
    } else {
      rel = &RelationOf(db, literal.atom.predicate);
    }
  }
  if (rel == nullptr) {
    Binding binding(variable_count);
    FireRule(rule, db, delta, delta_index, order, 0, &binding, derived);
    return;
  }
  const DatalogLiteral& literal = rule.body[actual];
  Binding empty_binding(variable_count);
  std::vector<Relation::Row> candidates;
  ForEachCandidate(*rel, literal.atom, empty_binding,
                   [&](Relation::Row row) { candidates.push_back(row); });
  par::ForPlan morsels =
      par::PlanMorsels(candidates.size(), par::ForOptions{});
  std::vector<std::set<Tuple>> slots(morsels.morsels);
  par::ParallelFor(morsels, [&](const par::Morsel& m, std::size_t) {
    Binding binding(variable_count);
    std::set<Tuple>& slot = slots[m.index];
    for (std::size_t i = m.begin; i < m.end; ++i) {
      if (ZO_FAULT_POINT("datalog.join.cancel")) {
        if (CancelToken* token = CurrentCancelToken()) token->Cancel();
      }
      if (CancellationRequested()) return false;
      std::optional<std::vector<std::size_t>> bound =
          MatchAtom(literal.atom, candidates[i], &binding);
      if (!bound) continue;
      FireRule(rule, db, delta, delta_index, order, 1, &binding, &slot);
      for (std::size_t v : *bound) binding[v] = std::nullopt;
    }
    return true;
  });
  for (std::set<Tuple>& slot : slots) derived->merge(slot);
}

// Merges `derived` into the head relation, counting genuinely new facts
// into `next_delta` (built per predicate with the head's arity). The new
// facts join the relation in one InsertBatch rather than n sorted inserts.
void MergeDerived(const DatalogRule& rule, const std::set<Tuple>& derived,
                  Database* materialized,
                  std::map<std::string, Relation>* next_delta) {
  Relation& relation = materialized->mutable_relation(rule.head.predicate);
  std::vector<Tuple> fresh;
  for (const Tuple& t : derived) {
    if (!relation.Contains(t)) fresh.push_back(t);
  }
  if (fresh.empty()) return;
  auto [it, inserted] = next_delta->try_emplace(
      rule.head.predicate,
      Relation(rule.head.predicate, rule.head.terms.size()));
  for (const Tuple& t : fresh) {
    ZO_COUNTER_INC("datalog.facts_derived");
    it->second.Insert(t);
  }
  relation.InsertBatch(fresh);
}

}  // namespace

Database MaterializeDatalog(const DatalogProgram& program,
                            const Database& db) {
  ZO_TRACE_SPAN("MaterializeDatalog");
  Database materialized = db;
  // Declare all intensional relations (possibly empty).
  std::map<std::string, std::size_t> idb_arity;
  for (const DatalogRule& rule : program.rules()) {
    idb_arity[rule.head.predicate] = rule.head.terms.size();
  }
  for (const auto& [predicate, arity] : idb_arity) {
    materialized.AddRelation(predicate, arity);
  }

  for (const std::vector<std::string>& stratum : program.strata()) {
    std::set<std::string> in_stratum(stratum.begin(), stratum.end());
    std::vector<const DatalogRule*> stratum_rules;
    for (const DatalogRule& rule : program.rules()) {
      if (in_stratum.count(rule.head.predicate) != 0) {
        stratum_rules.push_back(&rule);
      }
    }
    // Initial round: full evaluation of every rule of the stratum.
    ZO_COUNTER_INC("datalog.rounds");
    bool planned = plan::plan_mode() == plan::PlanMode::kCompiled;
    std::map<std::string, Relation> delta;
    for (const DatalogRule* rule : stratum_rules) {
      std::set<Tuple> derived;
      std::vector<std::size_t> order;
      if (planned) {
        order =
            plan::OrderBody(PlannedBody(*rule), materialized, -1, nullptr)
                .order;
      }
      FireRuleAll(*rule, materialized, nullptr, -1,
                  planned ? &order : nullptr, &derived);
      MergeDerived(*rule, derived, &materialized, &delta);
    }
    // Semi-naive rounds: each recursive instantiation uses the latest delta
    // in one positive literal position. A cancellation request abandons the
    // fixpoint mid-way; the token's installer discards the partial result.
    while (!delta.empty() && !CancellationRequested()) {
      ZO_COUNTER_INC("datalog.rounds");
      std::map<std::string, Relation> next_delta;
      for (const DatalogRule* rule : stratum_rules) {
        for (std::size_t i = 0; i < rule->body.size(); ++i) {
          const DatalogLiteral& literal = rule->body[i];
          if (literal.negated) continue;
          if (in_stratum.count(literal.atom.predicate) == 0) continue;
          auto delta_it = delta.find(literal.atom.predicate);
          if (delta_it == delta.end()) continue;
          std::set<Tuple> derived;
          std::vector<std::size_t> order;
          if (planned) {
            // Re-planned per round: the delta shrinks as the fixpoint
            // converges, pulling the delta literal outward.
            order = plan::OrderBody(PlannedBody(*rule), materialized,
                                    static_cast<int>(i), &delta_it->second)
                        .order;
          }
          FireRuleAll(*rule, materialized, &delta, static_cast<int>(i),
                      planned ? &order : nullptr, &derived);
          MergeDerived(*rule, derived, &materialized, &next_delta);
        }
      }
      delta = std::move(next_delta);
    }
  }
  return materialized;
}

std::vector<Tuple> EvaluateDatalog(const DatalogProgram& program,
                                   const Database& db) {
  Database materialized = MaterializeDatalog(program, db);
  if (!materialized.HasRelation(program.goal_predicate())) return {};
  return materialized.relation(program.goal_predicate()).Tuples();
}

bool DatalogMembership(const DatalogProgram& program, const Database& db,
                       const Tuple& tuple) {
  Database materialized = MaterializeDatalog(program, db);
  return materialized.HasRelation(program.goal_predicate()) &&
         materialized.relation(program.goal_predicate()).Contains(tuple);
}

std::string ExplainDatalogPlan(const DatalogProgram& program,
                               const Database& db) {
  // Orders are what the initial full round would use against `db` with the
  // intensional relations declared empty (exactly MaterializeDatalog's
  // starting state); semi-naive rounds re-plan against the live delta.
  Database declared = db;
  for (const DatalogRule& rule : program.rules()) {
    declared.AddRelation(rule.head.predicate, rule.head.terms.size());
  }
  std::string out = "datalog plan (initial round)\n";
  char buffer[64];
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const DatalogRule& rule = program.rules()[r];
    out += "rule " + std::to_string(r) + ": " + rule.ToString() + "\n";
    plan::BodyOrder body_order =
        plan::OrderBody(PlannedBody(rule), declared, -1, nullptr);
    for (std::size_t i = 0; i < body_order.order.size(); ++i) {
      const DatalogLiteral& literal = rule.body[body_order.order[i]];
      std::snprintf(buffer, sizeof(buffer), " est=%.3g",
                    body_order.estimates[i]);
      out += "  " + std::to_string(i + 1) + ". " +
             (literal.negated ? "not " : "") +
             literal.atom.ToString(rule.variable_names) + buffer + "\n";
    }
  }
  return out;
}

}  // namespace zeroone
