#include "datalog/program.h"

#include <algorithm>
#include <map>
#include <set>

namespace zeroone {

namespace {

std::string NameOf(std::size_t id, const std::vector<std::string>& names) {
  if (id < names.size() && !names[id].empty()) return names[id];
  return "X" + std::to_string(id);
}

}  // namespace

std::string DatalogAtom::ToString(
    const std::vector<std::string>& variable_names) const {
  std::string result = predicate + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) result += ", ";
    result += terms[i].is_variable()
                  ? NameOf(terms[i].variable_id(), variable_names)
                  : terms[i].value().ToString();
  }
  return result + ")";
}

std::string DatalogRule::ToString() const {
  std::string result = head.ToString(variable_names);
  if (body.empty()) return result + ".";
  result += " :- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) result += ", ";
    if (body[i].negated) result += "!";
    result += body[i].atom.ToString(variable_names);
  }
  return result + ".";
}

StatusOr<DatalogProgram> DatalogProgram::Create(std::vector<DatalogRule> rules,
                                                std::string goal_predicate) {
  DatalogProgram program;
  // Arity consistency.
  std::map<std::string, std::size_t> arities;
  auto note_arity = [&](const DatalogAtom& atom) -> Status {
    auto [it, inserted] = arities.emplace(atom.predicate, atom.terms.size());
    if (!inserted && it->second != atom.terms.size()) {
      return Status::Error("predicate ", atom.predicate,
                           " used with arities ", it->second, " and ",
                           atom.terms.size());
    }
    return Status::Ok();
  };
  std::set<std::string> intensional;
  for (const DatalogRule& rule : rules) {
    ZO_RETURN_IF_ERROR(note_arity(rule.head));
    intensional.insert(rule.head.predicate);
    for (const DatalogLiteral& literal : rule.body) {
      ZO_RETURN_IF_ERROR(note_arity(literal.atom));
    }
  }
  if (arities.find(goal_predicate) == arities.end()) {
    return Status::Error("goal predicate ", goal_predicate,
                         " does not occur in the program");
  }

  // Safety.
  for (const DatalogRule& rule : rules) {
    std::set<std::size_t> positive_variables;
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.negated) continue;
      for (const Term& t : literal.atom.terms) {
        if (t.is_variable()) positive_variables.insert(t.variable_id());
      }
    }
    auto check_covered = [&](const DatalogAtom& atom,
                             const char* where) -> Status {
      for (const Term& t : atom.terms) {
        if (t.is_variable() &&
            positive_variables.count(t.variable_id()) == 0) {
          return Status::Error("unsafe rule (" + rule.ToString() +
                               "): variable in " + where +
                               " not bound by a positive body literal");
        }
      }
      return Status::Ok();
    };
    ZO_RETURN_IF_ERROR(check_covered(rule.head, "head"));
    for (const DatalogLiteral& literal : rule.body) {
      if (!literal.negated) continue;
      ZO_RETURN_IF_ERROR(check_covered(literal.atom, "negated literal"));
    }
  }

  // Stratification: iteratively assign strata; stratum(p) must be
  // >= stratum(q) for positive edges q → p and > stratum(q) for negative
  // ones. Failure to stabilize within |predicates| rounds means a negative
  // cycle.
  std::map<std::string, std::size_t> stratum;
  for (const auto& [predicate, arity] : arities) stratum[predicate] = 0;
  bool changed = true;
  std::size_t rounds = 0;
  // Strata are bounded by the predicate count, so a legal program
  // stabilizes within |predicates|² + 1 rounds; exceeding that bound means
  // strata grow without bound — a negative cycle.
  const std::size_t max_rounds = arities.size() * arities.size() + 2;
  while (changed) {
    if (++rounds > max_rounds) {
      return Status::Error(
          "program is not stratifiable (recursion through negation)");
    }
    changed = false;
    for (const DatalogRule& rule : rules) {
      std::size_t& head_stratum = stratum[rule.head.predicate];
      for (const DatalogLiteral& literal : rule.body) {
        std::size_t body_stratum = stratum[literal.atom.predicate];
        // Negation over an intensional predicate forces a strictly higher
        // stratum; extensional predicates never change during evaluation,
        // so negating them is free.
        std::size_t required =
            literal.negated && intensional.count(literal.atom.predicate) != 0
                ? body_stratum + 1
                : body_stratum;
        if (head_stratum < required) {
          head_stratum = required;
          changed = true;
        }
      }
    }
  }
  // Group intensional predicates by stratum.
  std::map<std::size_t, std::vector<std::string>> grouped;
  for (const std::string& predicate : intensional) {
    grouped[stratum[predicate]].push_back(predicate);
  }
  for (auto& [level, predicates] : grouped) {
    std::sort(predicates.begin(), predicates.end());
    program.strata_.push_back(predicates);
  }

  program.rules_ = std::move(rules);
  program.goal_predicate_ = std::move(goal_predicate);
  program.goal_arity_ = arities[program.goal_predicate_];
  return program;
}

bool DatalogProgram::IsIntensional(const std::string& predicate) const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [&](const DatalogRule& rule) {
                       return rule.head.predicate == predicate;
                     });
}

std::vector<Value> DatalogProgram::MentionedConstants() const {
  std::set<Value> constants;
  auto collect = [&](const DatalogAtom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_value() && t.value().is_constant()) constants.insert(t.value());
    }
  };
  for (const DatalogRule& rule : rules_) {
    collect(rule.head);
    for (const DatalogLiteral& literal : rule.body) collect(literal.atom);
  }
  return std::vector<Value>(constants.begin(), constants.end());
}

std::string DatalogProgram::ToString() const {
  std::string result;
  for (const DatalogRule& rule : rules_) {
    result += rule.ToString() + "\n";
  }
  result += "?- " + goal_predicate_ + "\n";
  return result;
}

}  // namespace zeroone
