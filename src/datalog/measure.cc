#include "datalog/measure.h"

#include <cassert>

#include "datalog/eval.h"

namespace zeroone {

namespace {

void AppendUnique(std::vector<Value>* out, const std::vector<Value>& values) {
  for (Value v : values) {
    bool seen = false;
    for (Value existing : *out) seen = seen || existing == v;
    if (!seen) out->push_back(v);
  }
}

}  // namespace

GenericInstance MakeDatalogInstance(const DatalogProgram& program,
                                    const Database& db, const Tuple& tuple) {
  assert(tuple.arity() == program.goal_arity() &&
         "tuple arity must match the goal predicate");
  GenericInstance instance;
  instance.nulls = db.Nulls();
  AppendUnique(&instance.nulls, tuple.Nulls());
  instance.prefix = program.MentionedConstants();
  AppendUnique(&instance.prefix, db.Constants());
  for (Value v : tuple) {
    if (v.is_constant()) AppendUnique(&instance.prefix, {v});
  }
  // The witness owns copies of the program and the inspected tuple.
  DatalogProgram owned_program = program;
  Tuple owned_tuple = tuple;
  instance.witness = [owned_program, owned_tuple](
                         const Valuation& v, const Database& valuated) {
    return DatalogMembership(owned_program, valuated, v.Apply(owned_tuple));
  };
  return instance;
}

int DatalogMuLimit(const DatalogProgram& program, const Database& db,
                   const Tuple& tuple) {
  return DatalogMembership(program, db, tuple) ? 1 : 0;
}

Rational DatalogMuK(const DatalogProgram& program, const Database& db,
                    const Tuple& tuple, std::size_t k) {
  return GenericMuK(MakeDatalogInstance(program, db, tuple), db, k);
}

Rational DatalogMuViaPolynomial(const DatalogProgram& program,
                                const Database& db, const Tuple& tuple) {
  return GenericMuLimit(MakeDatalogInstance(program, db, tuple), db);
}

}  // namespace zeroone
