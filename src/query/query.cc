#include "query/query.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "data/tuple.h"

namespace zeroone {

namespace {

// Replaces free occurrences of the mapped variables by values, respecting
// shadowing by quantifiers.
FormulaPtr SubstituteVars(const FormulaPtr& f,
                          std::map<std::size_t, Value>* substitution) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals: {
      std::vector<Term> terms;
      terms.reserve(f->terms().size());
      bool changed = false;
      for (const Term& t : f->terms()) {
        if (t.is_variable()) {
          auto it = substitution->find(t.variable_id());
          if (it != substitution->end()) {
            terms.push_back(Term::Val(it->second));
            changed = true;
            continue;
          }
        }
        terms.push_back(t);
      }
      if (!changed) return f;
      if (f->kind() == Formula::Kind::kEquals) {
        return Formula::Equals(terms[0], terms[1]);
      }
      return Formula::Atom(f->relation_name(), std::move(terms));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::size_t bound = f->bound_variable();
      auto it = substitution->find(bound);
      if (it != substitution->end()) {
        // Shadowed: remove, recurse, restore.
        Value saved = it->second;
        substitution->erase(it);
        FormulaPtr body = SubstituteVars(f->children()[0], substitution);
        substitution->emplace(bound, saved);
        if (body == f->children()[0]) return f;
        return f->kind() == Formula::Kind::kExists
                   ? Formula::Exists(bound, std::move(body))
                   : Formula::Forall(bound, std::move(body));
      }
      FormulaPtr body = SubstituteVars(f->children()[0], substitution);
      if (body == f->children()[0]) return f;
      return f->kind() == Formula::Kind::kExists
                 ? Formula::Exists(bound, std::move(body))
                 : Formula::Forall(bound, std::move(body));
    }
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const FormulaPtr& child : f->children()) {
        FormulaPtr replaced = SubstituteVars(child, substitution);
        changed = changed || replaced != child;
        children.push_back(std::move(replaced));
      }
      if (!changed) return f;
      switch (f->kind()) {
        case Formula::Kind::kNot:
          return Formula::Not(children[0]);
        case Formula::Kind::kAnd:
          return Formula::And(std::move(children));
        case Formula::Kind::kOr:
          return Formula::Or(std::move(children));
        case Formula::Kind::kImplies:
          return Formula::Implies(children[0], children[1]);
        default:
          assert(false && "unreachable");
          return f;
      }
    }
  }
}

}  // namespace

Query::Query(std::string name, std::vector<std::size_t> free_variables,
             FormulaPtr formula, std::vector<std::string> variable_names)
    : name_(std::move(name)),
      free_variables_(std::move(free_variables)),
      formula_(std::move(formula)),
      variable_names_(std::move(variable_names)) {
  assert(formula_ != nullptr);
  variable_count_ = static_cast<std::size_t>(formula_->MaxVariableId() + 1);
  for (std::size_t v : free_variables_) {
    variable_count_ = std::max(variable_count_, v + 1);
  }
}

Query Query::Substitute(const Tuple& tuple) const {
  assert(tuple.arity() == arity() && "substituted tuple arity mismatch");
  std::map<std::size_t, Value> substitution;
  for (std::size_t i = 0; i < free_variables_.size(); ++i) {
    auto [it, inserted] = substitution.emplace(free_variables_[i], tuple[i]);
    // A variable listed twice in the output must receive equal components.
    assert((inserted || it->second == tuple[i]) &&
           "inconsistent substitution for repeated output variable");
    (void)it;
    (void)inserted;
  }
  FormulaPtr substituted = SubstituteVars(formula_, &substitution);
  return Query(name_.empty() ? "" : name_ + tuple.ToString(), {}, substituted,
               variable_names_);
}

std::string Query::ToString() const {
  std::string result = name_.empty() ? "Q" : name_;
  result += "(";
  for (std::size_t i = 0; i < free_variables_.size(); ++i) {
    if (i > 0) result += ", ";
    std::size_t id = free_variables_[i];
    result += id < variable_names_.size() && !variable_names_[id].empty()
                  ? variable_names_[id]
                  : "x" + std::to_string(id);
  }
  result += ") := " + formula_->ToString(variable_names_);
  return result;
}

}  // namespace zeroone
