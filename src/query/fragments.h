#ifndef ZEROONE_QUERY_FRAGMENTS_H_
#define ZEROONE_QUERY_FRAGMENTS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace zeroone {

// Syntactic query-fragment classification (Section 2 "Query languages" and
// Corollary 3). All fragments are checked on the formula as written; no
// semantic equivalence reasoning is attempted.

// ∃,∧-fragment: atoms, equalities, conjunction, existential quantification
// (select-project-join queries).
bool IsConjunctive(const Formula& formula);

// ∃,∧,∨-fragment: additionally disjunction — unions of conjunctive queries
// (select-project-join-union). kTrue/kFalse are allowed.
bool IsUnionOfConjunctive(const Formula& formula);

// The Pos∀G fragment of Corollary 3 (Compton's positive FO with universal
// guards): atomic formulas, closed under ∧, ∨, ∃, ∀, and the guarded rule
// ∀x̄ (α(x̄) → φ) where α is a relational atom whose variable occurrences
// are distinct variables covering all of x̄. Negation is not allowed, and
// implications may appear only as guards. For Pos∀G queries, naïve
// evaluation computes certain answers, so almost-certainly-true and certain
// answers coincide.
bool IsPosForallGuarded(const Formula& formula);

// A relational atom of a conjunctive query in normal form.
struct CQAtom {
  std::string relation;
  std::vector<Term> terms;
};

// One disjunct of a UCQ in normal form: a conjunction of relational atoms
// and equality atoms, with all existential quantifiers stripped (every
// variable that is not free in the enclosing query is existential; variable
// ids are globally unique within a query, so no renaming is needed).
struct ConjunctiveClause {
  std::vector<CQAtom> atoms;
  std::vector<std::pair<Term, Term>> equalities;
};

// A union of conjunctive queries, flattened to disjunctive normal form.
// An empty disjunct list denotes the constant-false query; a disjunct with
// no atoms and no equalities is constant-true.
struct UcqNormalForm {
  std::vector<ConjunctiveClause> disjuncts;
};

// Converts a positive-existential formula to DNF. Fails with an error if
// the formula is not in the ∃,∧,∨-fragment. Distribution of ∧ over ∨ can
// blow up exponentially in the (fixed) query size; data complexity is
// unaffected.
StatusOr<UcqNormalForm> NormalizeUcq(const Formula& formula);

}  // namespace zeroone

#endif  // ZEROONE_QUERY_FRAGMENTS_H_
