#ifndef ZEROONE_QUERY_MATCHER_H_
#define ZEROONE_QUERY_MATCHER_H_

#include <vector>

#include "common/status.h"
#include "data/database.h"
#include "query/fragments.h"
#include "query/query.h"

namespace zeroone {

// Efficient evaluation of unions of conjunctive queries via backtracking
// homomorphism search (a backtracking join over the clause atoms), instead
// of the exhaustive adom^vars enumeration of query/eval.h. Evaluation is
// syntactic on values, so on incomplete databases this computes naïve
// answers — which is exactly what the polynomial-time comparison algorithm
// of Theorem 8 needs when it tests v′(b̄) ∉ Q^naive(v′(D)) against the full
// database.
//
// Semantics matches EvaluateQuery/EvaluateMembership on the same UCQ:
// existential variables range over adom(D) (active-domain semantics), so a
// clause variable that occurs in no atom is satisfiable iff adom(D) is
// nonempty.

// ā ∈ Q^naive(D) for a normalized UCQ. `free_variables` gives the output
// variable order matching `tuple`.
bool UcqMembership(const UcqNormalForm& ucq,
                   const std::vector<std::size_t>& free_variables,
                   const Database& db, const Tuple& tuple);

// All naïve answers of the UCQ over adom(D), deduplicated and sorted.
std::vector<Tuple> UcqEvaluate(const UcqNormalForm& ucq,
                               const std::vector<std::size_t>& free_variables,
                               const Database& db);

// Convenience wrappers that normalize `query` first; fail if the query is
// not a UCQ.
StatusOr<bool> UcqMembership(const Query& query, const Database& db,
                             const Tuple& tuple);
StatusOr<std::vector<Tuple>> UcqEvaluate(const Query& query,
                                         const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_QUERY_MATCHER_H_
