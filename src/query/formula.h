#ifndef ZEROONE_QUERY_FORMULA_H_
#define ZEROONE_QUERY_FORMULA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/value.h"

namespace zeroone {

// A term of first-order logic: a variable (identified by a dense per-query
// id) or a value (a constant mentioned in the query, or — when a tuple ā is
// substituted for free variables — possibly a null of the database).
class Term {
 public:
  static Term Variable(std::size_t id) { return Term(true, id, Value()); }
  static Term Val(Value value) { return Term(false, 0, value); }

  bool is_variable() const { return is_variable_; }
  bool is_value() const { return !is_variable_; }
  // Precondition: is_variable().
  std::size_t variable_id() const { return variable_id_; }
  // Precondition: is_value().
  Value value() const { return value_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.variable_id_ == b.variable_id_
                          : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Term(bool is_variable, std::size_t variable_id, Value value)
      : is_variable_(is_variable), variable_id_(variable_id), value_(value) {}

  bool is_variable_;
  std::size_t variable_id_;
  Value value_;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

// An immutable first-order formula over a relational vocabulary, with
// Boolean connectives ∧, ∨, ¬, →, quantifiers ∃, ∀ (active-domain
// semantics), relational atoms, and (in)equality atoms. Implication is kept
// as a distinct node so that the Pos∀G fragment of Corollary 3 — which is
// defined via guarded implications ∀x̄ (α(x̄) → φ) — remains syntactically
// recognizable.
//
// Formulas are shared immutable trees; build them with the factory
// functions below or with the parser in query/parser.h.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,     // R(t₁, …, t_n)
    kEquals,   // t₁ = t₂
    kNot,      // ¬φ
    kAnd,      // φ₁ ∧ … ∧ φ_n (n >= 1)
    kOr,       // φ₁ ∨ … ∨ φ_n (n >= 1)
    kImplies,  // φ → ψ
    kExists,   // ∃x φ
    kForall,   // ∀x φ
  };

  Kind kind() const { return kind_; }

  // Atom accessors. Precondition: kind() == kAtom.
  const std::string& relation_name() const { return relation_name_; }
  const std::vector<Term>& terms() const { return terms_; }

  // Equality accessors. Precondition: kind() == kEquals.
  const Term& left() const { return terms_[0]; }
  const Term& right() const { return terms_[1]; }

  // Child formulas: 1 for kNot and quantifiers, 2 for kImplies
  // (premise, conclusion), n for kAnd/kOr.
  const std::vector<FormulaPtr>& children() const { return children_; }

  // Bound variable id. Precondition: kind() is kExists or kForall.
  std::size_t bound_variable() const { return bound_variable_; }

  // --- Factories ---
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(std::string relation_name, std::vector<Term> terms);
  static FormulaPtr Equals(Term left, Term right);
  static FormulaPtr Not(FormulaPtr child);
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Implies(FormulaPtr premise, FormulaPtr conclusion);
  static FormulaPtr Exists(std::size_t variable, FormulaPtr body);
  // ∃x₁…∃x_n φ for a list of variables.
  static FormulaPtr Exists(const std::vector<std::size_t>& variables,
                           FormulaPtr body);
  static FormulaPtr Forall(std::size_t variable, FormulaPtr body);
  static FormulaPtr Forall(const std::vector<std::size_t>& variables,
                           FormulaPtr body);

  // The constants mentioned anywhere in the formula (the finite set C of
  // Definition 1 that makes the query C-generic), deduplicated.
  std::vector<Value> MentionedConstants() const;

  // The nulls mentioned in the formula (possible after substituting a tuple
  // over the active domain for free variables), deduplicated.
  std::vector<Value> MentionedNulls() const;

  // Ids of variables occurring free in the formula, deduplicated, sorted.
  std::vector<std::size_t> FreeVariables() const;

  // The largest variable id occurring anywhere (free or bound), or -1 if
  // there are no variables. Useful for sizing evaluation environments.
  int MaxVariableId() const;

  // Renders the formula using the supplied variable names; ids without a
  // name print as x<id>.
  std::string ToString(const std::vector<std::string>& variable_names) const;

 protected:
  explicit Formula(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  std::string relation_name_;        // kAtom.
  std::vector<Term> terms_;          // kAtom, kEquals.
  std::vector<FormulaPtr> children_; // kNot/kAnd/kOr/kImplies/quantifiers.
  std::size_t bound_variable_ = 0;   // kExists/kForall.
};

}  // namespace zeroone

#endif  // ZEROONE_QUERY_FORMULA_H_
