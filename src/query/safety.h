#ifndef ZEROONE_QUERY_SAFETY_H_
#define ZEROONE_QUERY_SAFETY_H_

#include "query/query.h"

namespace zeroone {

// Safe-range analysis (domain independence).
//
// The paper evaluates queries under active-domain semantics (queries return
// subsets of adom(D)^m; quantifiers range over adom). For arbitrary FO that
// semantics is a *choice* — ∃x (x = x) is true exactly when the domain is
// nonempty, and ¬R(x) "returns" whatever the domain offers. The classical
// class for which the choice does not matter is the safe-range queries:
// every variable is *range restricted* — grounded by a positive atom (or an
// equality chain to one) in every branch where its value matters. Safe-range
// FO = domain-independent FO in expressive power (Codd's theorem territory,
// cf. Abiteboul–Hull–Vianu ch. 5).
//
// This analyzer implements the standard syntactic check on the library's
// AST: it computes the set of range-restricted free variables of each
// subformula (after pushing ¬ through ∧/∨/→/quantifiers as needed):
//
//   rr(R(t̄))        = variables of t̄
//   rr(x = c)        = {x}
//   rr(x = y)        = ∅ (but equalities propagate restriction in ∧)
//   rr(φ ∧ ψ)        = rr(φ) ∪ rr(ψ), then closed under x = y conjuncts
//   rr(φ ∨ ψ)        = rr(φ) ∩ rr(ψ)
//   rr(¬φ)           = ∅
//   rr(∃x φ)         = rr(φ) − {x}, provided x ∈ rr(φ)
//   rr(∀x φ)         treated as ¬∃x¬φ
//
// A query is safe-range if the analysis succeeds (every quantified variable
// is restricted in its scope) and every free (output) variable is
// restricted.
//
// In this library the analyzer is advisory: evaluation always uses
// active-domain semantics (as the paper does), and IsSafeRange tells you
// when the result is additionally domain independent — e.g. when comparing
// against an external engine, or when adding constants to the database must
// not change answers.
bool IsSafeRange(const Query& query);

// The subformula-level entry point: true if all quantifications are
// range-restricted and every free variable of the formula is restricted.
bool IsSafeRangeFormula(const Formula& formula);

}  // namespace zeroone

#endif  // ZEROONE_QUERY_SAFETY_H_
