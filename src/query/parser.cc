#include "query/parser.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace zeroone {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // single-quoted constant
  kLParen,
  kRParen,
  kComma,
  kDot,
  kAmp,
  kPipe,
  kBang,
  kArrow,    // ->
  kEquals,   // =
  kNotEquals,  // !=
  kAssign,   // :=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t position;  // Byte offset, for error messages.
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        tokens.push_back({TokenKind::kIdentifier,
                          std::string(text_.substr(start, i - start)), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        std::size_t start = i;
        if (c == '-') ++i;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        tokens.push_back({TokenKind::kNumber,
                          std::string(text_.substr(start, i - start)), start});
        continue;
      }
      if (c == '\'') {
        std::size_t start = ++i;
        while (i < text_.size() && text_[i] != '\'') ++i;
        if (i == text_.size()) {
          return Status::Error("parse error: unterminated string literal");
        }
        tokens.push_back({TokenKind::kString,
                          std::string(text_.substr(start, i - start)), start});
        ++i;  // Closing quote.
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", i++});
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", i++});
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", i++});
          continue;
        case '.':
          tokens.push_back({TokenKind::kDot, ".", i++});
          continue;
        case '&':
          tokens.push_back({TokenKind::kAmp, "&", i++});
          continue;
        case '|':
          tokens.push_back({TokenKind::kPipe, "|", i++});
          continue;
        case '!':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            tokens.push_back({TokenKind::kNotEquals, "!=", i});
            i += 2;
          } else {
            tokens.push_back({TokenKind::kBang, "!", i++});
          }
          continue;
        case '-':
          if (i + 1 < text_.size() && text_[i + 1] == '>') {
            tokens.push_back({TokenKind::kArrow, "->", i});
            i += 2;
            continue;
          }
          return Status::Error("parse error: stray '-' at offset ", i);
        case '=':
          tokens.push_back({TokenKind::kEquals, "=", i++});
          continue;
        case ':':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            tokens.push_back({TokenKind::kAssign, ":=", i});
            i += 2;
            continue;
          }
          return Status::Error("parse error: stray ':' at offset ", i);
        default:
          return Status::Error("parse error: unexpected '", c, "' at offset ",
                               i);
      }
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> ParseTopLevel() {
    std::string query_name = "Q";
    std::vector<std::size_t> free_variables;
    // Optional head: name '(' vars ')' ':='  — detect by scanning for ':='
    // before any formula content. A head is present iff the token stream
    // starts with identifier '(' identifiers ')' ':='.
    if (LooksLikeHead()) {
      query_name = Current().text;
      Advance();  // name
      Advance();  // '('
      if (Current().kind != TokenKind::kRParen) {
        while (true) {
          if (Current().kind != TokenKind::kIdentifier) {
            return Error("expected variable in query head");
          }
          free_variables.push_back(DeclareVariable(Current().text));
          Advance();
          if (Current().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')' closing query head");
      }
      Advance();
      if (Current().kind != TokenKind::kAssign) {
        return Error("expected ':=' after query head");
      }
      Advance();
    } else if (Current().kind == TokenKind::kAssign) {
      Advance();  // Boolean query written ":= formula".
    }
    ZO_ASSIGN_OR_RETURN(FormulaPtr formula, ParseFormula());
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    // Verify the head variables are exactly the free variables.
    std::vector<std::size_t> actual_free = formula->FreeVariables();
    for (std::size_t v : actual_free) {
      bool declared = false;
      for (std::size_t f : free_variables) declared = declared || f == v;
      if (!declared) {
        return Status::Error("parse error: variable '", variable_names_[v],
                             "' is free in the body but not in the head");
      }
    }
    return Query(std::move(query_name), std::move(free_variables),
                 std::move(formula), variable_names_);
  }

 private:
  const Token& Current() const { return tokens_[position_]; }
  const Token& Peek(std::size_t ahead = 1) const {
    std::size_t p = position_ + ahead;
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  void Advance() {
    if (position_ + 1 < tokens_.size()) ++position_;
  }

  Status Error(const std::string& message) const {
    return Status::Error("parse error at offset ", Current().position, ": ",
                         message);
  }

  bool LooksLikeHead() const {
    if (Current().kind != TokenKind::kIdentifier) return false;
    if (Peek(1).kind != TokenKind::kLParen) return false;
    // Scan until the matching ')' (head variable lists have no nesting) and
    // check whether ':=' follows.
    std::size_t i = position_ + 2;
    while (i < tokens_.size() && tokens_[i].kind != TokenKind::kRParen) {
      if (tokens_[i].kind != TokenKind::kIdentifier &&
          tokens_[i].kind != TokenKind::kComma) {
        return false;
      }
      ++i;
    }
    return i + 1 < tokens_.size() &&
           tokens_[i + 1].kind == TokenKind::kAssign;
  }

  // Declares (or looks up) a variable name, returning its id.
  std::size_t DeclareVariable(const std::string& name) {
    auto it = variable_ids_.find(name);
    if (it != variable_ids_.end()) return it->second;
    std::size_t id = variable_names_.size();
    variable_names_.push_back(name);
    variable_ids_.emplace(name, id);
    return id;
  }

  bool IsDeclared(const std::string& name) const {
    return variable_ids_.count(name) != 0;
  }

  StatusOr<FormulaPtr> ParseFormula() {
    if (Current().kind == TokenKind::kIdentifier &&
        (Current().text == "exists" || Current().text == "forall")) {
      return ParseQuantified();
    }
    return ParseImplication();
  }

  StatusOr<FormulaPtr> ParseQuantified() {
    bool is_exists = Current().text == "exists";
    Advance();
    std::vector<std::size_t> vars;
    std::vector<std::string> names;
    while (true) {
      if (Current().kind != TokenKind::kIdentifier) {
        return Error("expected variable after quantifier");
      }
      names.push_back(Current().text);
      vars.push_back(DeclareVariable(Current().text));
      Advance();
      if (Current().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Current().kind != TokenKind::kDot) {
      return Error("expected '.' after quantified variables");
    }
    Advance();
    ZO_ASSIGN_OR_RETURN(FormulaPtr body, ParseFormula());
    // Quantified variable names go out of scope after the body; they remain
    // in variable_names_ (ids are unique), but identifiers are re-usable
    // as constants afterwards only if never declared — we keep paper
    // semantics simple: a name, once a variable, stays a variable.
    return is_exists ? Formula::Exists(vars, std::move(body))
                     : Formula::Forall(vars, std::move(body));
  }

  StatusOr<FormulaPtr> ParseImplication() {
    ZO_ASSIGN_OR_RETURN(FormulaPtr left, ParseDisjunction());
    if (Current().kind == TokenKind::kArrow) {
      Advance();
      ZO_ASSIGN_OR_RETURN(FormulaPtr right, ParseFormula());
      return Formula::Implies(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseDisjunction() {
    ZO_ASSIGN_OR_RETURN(FormulaPtr first, ParseConjunction());
    std::vector<FormulaPtr> children;
    children.push_back(std::move(first));
    while (Current().kind == TokenKind::kPipe) {
      Advance();
      ZO_ASSIGN_OR_RETURN(FormulaPtr next, ParseConjunction());
      children.push_back(std::move(next));
    }
    return Formula::Or(std::move(children));
  }

  StatusOr<FormulaPtr> ParseConjunction() {
    ZO_ASSIGN_OR_RETURN(FormulaPtr first, ParseUnary());
    std::vector<FormulaPtr> children;
    children.push_back(std::move(first));
    while (Current().kind == TokenKind::kAmp) {
      Advance();
      ZO_ASSIGN_OR_RETURN(FormulaPtr next, ParseUnary());
      children.push_back(std::move(next));
    }
    return Formula::And(std::move(children));
  }

  StatusOr<FormulaPtr> ParseUnary() {
    if (Current().kind == TokenKind::kBang) {
      Advance();
      ZO_ASSIGN_OR_RETURN(FormulaPtr child, ParseUnary());
      return Formula::Not(std::move(child));
    }
    if (Current().kind == TokenKind::kIdentifier &&
        (Current().text == "exists" || Current().text == "forall")) {
      return ParseQuantified();
    }
    return ParsePrimary();
  }

  StatusOr<FormulaPtr> ParsePrimary() {
    if (Current().kind == TokenKind::kLParen) {
      Advance();
      ZO_ASSIGN_OR_RETURN(FormulaPtr inner, ParseFormula());
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    if (Current().kind == TokenKind::kIdentifier && Current().text == "true") {
      Advance();
      return Formula::True();
    }
    if (Current().kind == TokenKind::kIdentifier &&
        Current().text == "false") {
      Advance();
      return Formula::False();
    }
    // Atom: identifier '('.
    if (Current().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kLParen) {
      std::string relation = Current().text;
      Advance();
      Advance();  // '('
      std::vector<Term> terms;
      if (Current().kind != TokenKind::kRParen) {
        while (true) {
          ZO_ASSIGN_OR_RETURN(Term term, ParseTerm());
          terms.push_back(term);
          if (Current().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')' closing atom");
      }
      Advance();
      return Formula::Atom(std::move(relation), std::move(terms));
    }
    // (In)equality between two terms.
    ZO_ASSIGN_OR_RETURN(Term left, ParseTerm());
    if (Current().kind == TokenKind::kEquals) {
      Advance();
      ZO_ASSIGN_OR_RETURN(Term right, ParseTerm());
      return Formula::Equals(left, right);
    }
    if (Current().kind == TokenKind::kNotEquals) {
      Advance();
      ZO_ASSIGN_OR_RETURN(Term right, ParseTerm());
      return Formula::Not(Formula::Equals(left, right));
    }
    return Error("expected '=' or '!=' after term");
  }

  StatusOr<Term> ParseTerm() {
    if (Current().kind == TokenKind::kNumber) {
      Term t = Term::Val(Value::Constant(Current().text));
      Advance();
      return t;
    }
    if (Current().kind == TokenKind::kString) {
      Term t = Term::Val(Value::Constant(Current().text));
      Advance();
      return t;
    }
    if (Current().kind == TokenKind::kIdentifier) {
      std::string name = Current().text;
      Advance();
      if (IsDeclared(name)) {
        return Term::Variable(variable_ids_.at(name));
      }
      // Undeclared identifiers denote named constants (paper style: R(c, y)
      // mentions the constant c).
      return Term::Val(Value::Constant(name));
    }
    return Error("expected term");
  }

  std::vector<Token> tokens_;
  std::size_t position_ = 0;
  std::vector<std::string> variable_names_;
  std::map<std::string, std::size_t> variable_ids_;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  ZO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseTopLevel();
}

}  // namespace zeroone
