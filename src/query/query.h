#ifndef ZEROONE_QUERY_QUERY_H_
#define ZEROONE_QUERY_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/tuple.h"
#include "data/value.h"
#include "query/formula.h"

namespace zeroone {

// An m-ary query: a first-order formula together with an ordered list of
// free variables (the output columns). Queries in this library are generic
// by construction (Definition 1): they are logical formulas, so they are
// C-generic for C = the set of constants mentioned in the formula.
//
// A Boolean query has arity 0; its answers are the empty set (false) or the
// set containing the empty tuple (true).
class Query {
 public:
  Query() = default;

  // `free_variables` gives the output order: answer column i is the value of
  // variable free_variables[i]. `variable_names` maps every variable id used
  // in the formula to a display name (ids beyond the vector print as x<id>).
  // Precondition: the formula's free variables are exactly `free_variables`
  // (duplicates allowed in the output list; each must occur free).
  Query(std::string name, std::vector<std::size_t> free_variables,
        FormulaPtr formula, std::vector<std::string> variable_names);

  const std::string& name() const { return name_; }
  std::size_t arity() const { return free_variables_.size(); }
  bool is_boolean() const { return free_variables_.empty(); }
  const std::vector<std::size_t>& free_variables() const {
    return free_variables_;
  }
  const FormulaPtr& formula() const { return formula_; }
  const std::vector<std::string>& variable_names() const {
    return variable_names_;
  }

  // Number of variable ids in use (max id + 1); environments for evaluation
  // must have at least this many slots.
  std::size_t variable_count() const { return variable_count_; }

  // The constant set C witnessing C-genericity: constants mentioned in the
  // formula (Definition 1).
  std::vector<Value> GenericityConstants() const {
    return formula_->MentionedConstants();
  }

  // The Boolean query Q(ā): this query with the tuple substituted for the
  // free variables. Values of ā may be constants or nulls (tuples over the
  // active domain can contain nulls — "certain answers with nulls").
  // Precondition: tuple.arity() == arity().
  Query Substitute(const Tuple& tuple) const;

  // "Q(x, y) := R(x, y) & !S(x, y)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::size_t> free_variables_;
  FormulaPtr formula_;
  std::vector<std::string> variable_names_;
  std::size_t variable_count_ = 0;
};

}  // namespace zeroone

#endif  // ZEROONE_QUERY_QUERY_H_
