#include "query/formula.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace zeroone {

namespace {
struct ConcreteFormula : Formula {
  explicit ConcreteFormula(Kind k) : Formula(k) {}
};

// Formula's constructor is private; expose it through a local subclass. The
// factories mutate the fresh node before publishing it as a FormulaPtr.
std::shared_ptr<ConcreteFormula> Make(Formula::Kind kind) {
  return std::make_shared<ConcreteFormula>(kind);
}
}  // namespace

FormulaPtr Formula::True() { return Make(Kind::kTrue); }
FormulaPtr Formula::False() { return Make(Kind::kFalse); }

FormulaPtr Formula::Atom(std::string relation_name, std::vector<Term> terms) {
  auto f = Make(Kind::kAtom);
  f->relation_name_ = std::move(relation_name);
  f->terms_ = std::move(terms);
  return f;
}

FormulaPtr Formula::Equals(Term left, Term right) {
  auto f = Make(Kind::kEquals);
  f->terms_ = {left, right};
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  assert(child != nullptr);
  auto f = Make(Kind::kNot);
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto f = Make(Kind::kAnd);
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  return And(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto f = Make(Kind::kOr);
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  return Or(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::Implies(FormulaPtr premise, FormulaPtr conclusion) {
  auto f = Make(Kind::kImplies);
  f->children_ = {std::move(premise),
                                        std::move(conclusion)};
  return f;
}

FormulaPtr Formula::Exists(std::size_t variable, FormulaPtr body) {
  auto f = Make(Kind::kExists);
  f->children_ = {std::move(body)};
  f->bound_variable_ = variable;
  return f;
}

FormulaPtr Formula::Exists(const std::vector<std::size_t>& variables,
                           FormulaPtr body) {
  FormulaPtr result = std::move(body);
  for (std::size_t i = variables.size(); i-- > 0;) {
    result = Exists(variables[i], std::move(result));
  }
  return result;
}

FormulaPtr Formula::Forall(std::size_t variable, FormulaPtr body) {
  auto f = Make(Kind::kForall);
  f->children_ = {std::move(body)};
  f->bound_variable_ = variable;
  return f;
}

FormulaPtr Formula::Forall(const std::vector<std::size_t>& variables,
                           FormulaPtr body) {
  FormulaPtr result = std::move(body);
  for (std::size_t i = variables.size(); i-- > 0;) {
    result = Forall(variables[i], std::move(result));
  }
  return result;
}

namespace {

void CollectConstants(const Formula& f, std::set<Value>* out) {
  for (const Term& t : f.terms()) {
    if (t.is_value()) out->insert(t.value());
  }
  for (const FormulaPtr& child : f.children()) {
    CollectConstants(*child, out);
  }
}

void CollectFreeVariables(const Formula& f, std::set<std::size_t>* bound,
                          std::set<std::size_t>* out) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      for (const Term& t : f.terms()) {
        if (t.is_variable() && bound->count(t.variable_id()) == 0) {
          out->insert(t.variable_id());
        }
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      bool newly_bound = bound->insert(f.bound_variable()).second;
      CollectFreeVariables(*f.children()[0], bound, out);
      if (newly_bound) bound->erase(f.bound_variable());
      return;
    }
    default:
      for (const FormulaPtr& child : f.children()) {
        CollectFreeVariables(*child, bound, out);
      }
      return;
  }
}

int MaxVariableIdOf(const Formula& f) {
  int result = -1;
  for (const Term& t : f.terms()) {
    if (t.is_variable()) {
      result = std::max(result, static_cast<int>(t.variable_id()));
    }
  }
  if (f.kind() == Formula::Kind::kExists ||
      f.kind() == Formula::Kind::kForall) {
    result = std::max(result, static_cast<int>(f.bound_variable()));
  }
  for (const FormulaPtr& child : f.children()) {
    result = std::max(result, MaxVariableIdOf(*child));
  }
  return result;
}

std::string NameOf(std::size_t id,
                   const std::vector<std::string>& variable_names) {
  if (id < variable_names.size() && !variable_names[id].empty()) {
    return variable_names[id];
  }
  return "x" + std::to_string(id);
}

std::string TermToString(const Term& t,
                         const std::vector<std::string>& variable_names) {
  if (t.is_variable()) return NameOf(t.variable_id(), variable_names);
  return t.value().ToString();
}

std::string ToStringImpl(const Formula& f,
                         const std::vector<std::string>& names);

// Renders a direct operand of a binary connective. Quantifiers print with
// maximal scope (the parser extends their body as far right as possible),
// so a quantified operand must be parenthesized or `exists y. A | B` would
// re-parse as `exists y. (A | B)` — print → parse must preserve meaning
// (the plan cache keys on the printed form; see parse_roundtrip_test).
std::string OperandToString(const Formula& f,
                            const std::vector<std::string>& names) {
  std::string text = ToStringImpl(f, names);
  if (f.kind() == Formula::Kind::kExists ||
      f.kind() == Formula::Kind::kForall) {
    return "(" + text + ")";
  }
  return text;
}

std::string ToStringImpl(const Formula& f,
                         const std::vector<std::string>& names) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return "true";
    case Formula::Kind::kFalse:
      return "false";
    case Formula::Kind::kAtom: {
      std::string result = f.relation_name() + "(";
      for (std::size_t i = 0; i < f.terms().size(); ++i) {
        if (i > 0) result += ", ";
        result += TermToString(f.terms()[i], names);
      }
      return result + ")";
    }
    case Formula::Kind::kEquals:
      return TermToString(f.left(), names) + " = " +
             TermToString(f.right(), names);
    case Formula::Kind::kNot:
      return "!(" + ToStringImpl(*f.children()[0], names) + ")";
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::string op = f.kind() == Formula::Kind::kAnd ? " & " : " | ";
      std::string result = "(";
      for (std::size_t i = 0; i < f.children().size(); ++i) {
        if (i > 0) result += op;
        result += OperandToString(*f.children()[i], names);
      }
      return result + ")";
    }
    case Formula::Kind::kImplies:
      return "(" + OperandToString(*f.children()[0], names) + " -> " +
             ToStringImpl(*f.children()[1], names) + ")";
    case Formula::Kind::kExists:
      return "exists " + NameOf(f.bound_variable(), names) + ". " +
             ToStringImpl(*f.children()[0], names);
    case Formula::Kind::kForall:
      return "forall " + NameOf(f.bound_variable(), names) + ". " +
             ToStringImpl(*f.children()[0], names);
  }
  return "?";
}

}  // namespace

std::vector<Value> Formula::MentionedConstants() const {
  std::set<Value> constants;
  CollectConstants(*this, &constants);
  std::vector<Value> result;
  for (Value v : constants) {
    if (v.is_constant()) result.push_back(v);
  }
  return result;
}

std::vector<Value> Formula::MentionedNulls() const {
  std::set<Value> values;
  CollectConstants(*this, &values);
  std::vector<Value> result;
  for (Value v : values) {
    if (v.is_null()) result.push_back(v);
  }
  return result;
}

std::vector<std::size_t> Formula::FreeVariables() const {
  std::set<std::size_t> bound;
  std::set<std::size_t> free;
  CollectFreeVariables(*this, &bound, &free);
  return std::vector<std::size_t>(free.begin(), free.end());
}

int Formula::MaxVariableId() const { return MaxVariableIdOf(*this); }

std::string Formula::ToString(
    const std::vector<std::string>& variable_names) const {
  return ToStringImpl(*this, variable_names);
}

}  // namespace zeroone
