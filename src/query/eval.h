#ifndef ZEROONE_QUERY_EVAL_H_
#define ZEROONE_QUERY_EVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "data/tuple.h"
#include "data/valuation.h"
#include "query/query.h"

namespace zeroone {

// First-order evaluation with active-domain semantics: quantifiers range
// over adom(D). Evaluation is purely syntactic on values — two values are
// equal iff they are the same constant or the same null. On complete
// databases this is standard FO evaluation; on incomplete databases it
// treats nulls as if they were distinct fresh constants, which by
// Proposition 1 / Definition 3 is exactly naïve evaluation. There is thus a
// single evaluator; NaiveEvaluate below is a documented alias.

// Environment binding variable ids to values during evaluation. Slot i holds
// the value of variable i, or nullopt when unbound.
using Environment = std::vector<std::optional<Value>>;

// Evaluates a formula under the given environment. All free variables of
// the formula must be bound in `env`. `domain` is the quantification domain
// (normally db.ActiveDomain(), precomputed by the caller).
bool EvaluateFormula(const Formula& formula, const Database& db,
                     const std::vector<Value>& domain, Environment* env);

// Q(D): all tuples ā over adom(D)^arity with D ⊨ Q(ā). For Boolean queries
// returns {()} (true) or {} (false). Exhaustive over adom^arity; intended
// for the exact small-instance computations at the heart of the measures.
std::vector<Tuple> EvaluateQuery(const Query& query, const Database& db);

// Renders the cost-based plan EvaluateQuery would run for `query` against
// `db` (operator tree, candidate atoms, index masks, estimates) without
// executing it. Always compiles fresh — estimates reflect the live
// database. See docs/planner.md; surfaced via `zeroone_cli --explain` and
// the svc `@explain=1` request option.
std::string ExplainQueryPlan(const Query& query, const Database& db);

// D ⊨ Q(ā): membership test without materializing all answers.
// Precondition: tuple.arity() == query.arity() and the tuple is over
// adom(D) ∪ constants.
bool EvaluateMembership(const Query& query, const Database& db,
                        const Tuple& tuple);

// As above, but quantifying over a caller-provided `domain` (normally a
// precomputed db.ActiveDomain()). Callers probing many tuples against one
// database should use this overload: the three-argument form recomputes the
// active domain on every call.
bool EvaluateMembership(const Query& query, const Database& db,
                        const Tuple& tuple, const std::vector<Value>& domain);

// Applies a valuation to the value terms of a formula: every null value
// bound by `v` is replaced by its image. Needed when a tuple containing
// nulls has been substituted into a query and the combination v(ā), v(D)
// must be evaluated.
FormulaPtr ApplyValuationToFormula(const FormulaPtr& formula,
                                   const Valuation& v);

// Naïve evaluation (Definition 3): evaluates Q on D as if nulls were fresh
// distinct constants. Equal to v⁻¹(Q(v(D))) for any C-bijective valuation v
// (Proposition 1); answers may contain nulls.
std::vector<Tuple> NaiveEvaluate(const Query& query, const Database& db);

// Naïve membership: ā ∈ Q^naive(D).
bool NaiveMembership(const Query& query, const Database& db,
                     const Tuple& tuple);

// Reference implementation of Definition 3, used in tests to validate that
// the direct evaluator implements naïve evaluation: picks a C-bijective
// valuation v, computes Q(v(D)), and applies v⁻¹.
std::vector<Tuple> NaiveEvaluateViaBijection(const Query& query,
                                             const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_QUERY_EVAL_H_
