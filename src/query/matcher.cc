#include "query/matcher.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "plan/clause_plan.h"
#include "plan/mode.h"

namespace zeroone {

namespace {

// A clause compiled against a concrete binding of its free variables:
// variables are collapsed into equivalence classes induced by the clause's
// equality atoms, each class optionally pinned to a value.
struct CompiledClause {
  // For each variable id appearing in the clause, its class index.
  std::map<std::size_t, std::size_t> class_of_variable;
  // Pinned value of each class (from constants / the output tuple), if any.
  std::vector<std::optional<Value>> pinned;
  // Whether the class occurs in some atom (otherwise it only needs a
  // nonempty active domain to be satisfiable).
  std::vector<bool> occurs_in_atom;
  // Atoms with terms rewritten to either a pinned Value or a class index.
  struct AtomSlot {
    bool is_class;
    std::size_t class_index;  // When is_class.
    Value value;              // Otherwise.
  };
  struct CompiledAtom {
    const Relation* relation;  // Null when the relation is absent from D.
    std::vector<AtomSlot> slots;
  };
  std::vector<CompiledAtom> atoms;
  bool unsatisfiable = false;  // Equalities force two distinct values.
};

// Union-find over a small dense set.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Compiles one clause. `bound` optionally pins free variables to the values
// of an output tuple (for membership tests); when absent, free variables
// behave like existential ones and the caller projects afterwards.
CompiledClause Compile(const ConjunctiveClause& clause, const Database& db,
                       const std::map<std::size_t, Value>* bound) {
  CompiledClause out;
  // Collect the clause's variables.
  std::vector<std::size_t> variables;
  auto note_variable = [&](const Term& t) {
    if (t.is_variable() &&
        std::find(variables.begin(), variables.end(), t.variable_id()) ==
            variables.end()) {
      variables.push_back(t.variable_id());
    }
  };
  for (const CQAtom& atom : clause.atoms) {
    for (const Term& t : atom.terms) note_variable(t);
  }
  for (const auto& [l, r] : clause.equalities) {
    note_variable(l);
    note_variable(r);
  }
  if (bound != nullptr) {
    for (const auto& [var, value] : *bound) {
      note_variable(Term::Variable(var));
    }
  }
  std::map<std::size_t, std::size_t> dense;
  for (std::size_t i = 0; i < variables.size(); ++i) {
    dense[variables[i]] = i;
  }

  // Merge classes by the equality atoms; collect value pins.
  UnionFind uf(variables.size());
  std::vector<std::optional<Value>> pin(variables.size());
  bool unsat = false;
  auto pin_class = [&](std::size_t root, Value value) {
    if (pin[root] && *pin[root] != value) {
      unsat = true;
      return;
    }
    pin[root] = value;
  };
  for (const auto& [l, r] : clause.equalities) {
    if (l.is_variable() && r.is_variable()) {
      std::size_t a = uf.Find(dense[l.variable_id()]);
      std::size_t b = uf.Find(dense[r.variable_id()]);
      if (a == b) continue;
      // Merge, reconciling pins.
      std::optional<Value> pa = pin[a];
      std::optional<Value> pb = pin[b];
      uf.Union(a, b);
      std::size_t root = uf.Find(a);
      pin[root] = std::nullopt;
      if (pa) pin_class(root, *pa);
      if (pb) pin_class(root, *pb);
    } else if (l.is_variable() || r.is_variable()) {
      const Term& var = l.is_variable() ? l : r;
      const Term& val = l.is_variable() ? r : l;
      pin_class(uf.Find(dense[var.variable_id()]), val.value());
    } else if (l.value() != r.value()) {
      unsat = true;
    }
  }
  if (bound != nullptr) {
    for (const auto& [var, value] : *bound) {
      pin_class(uf.Find(dense[var]), value);
    }
  }

  // Re-number the union-find roots densely as class indices.
  std::map<std::size_t, std::size_t> class_index;
  for (std::size_t i = 0; i < variables.size(); ++i) {
    std::size_t root = uf.Find(i);
    if (class_index.find(root) == class_index.end()) {
      std::size_t index = class_index.size();
      class_index[root] = index;
    }
  }
  out.pinned.assign(class_index.size(), std::nullopt);
  out.occurs_in_atom.assign(class_index.size(), false);
  for (std::size_t i = 0; i < variables.size(); ++i) {
    std::size_t root = uf.Find(i);
    std::size_t index = class_index[root];
    out.class_of_variable[variables[i]] = index;
    if (pin[root]) out.pinned[index] = pin[root];
  }
  out.unsatisfiable = unsat;

  // Compile atoms — in cost-based order when the compiled evaluator is
  // active. Search's match set is join-order independent (each candidate
  // tuple is fully re-verified against the assignment), so the permutation
  // changes backtracking effort only, never answers.
  std::vector<std::size_t> atom_order(clause.atoms.size());
  for (std::size_t i = 0; i < atom_order.size(); ++i) atom_order[i] = i;
  if (plan::plan_mode() == plan::PlanMode::kCompiled) {
    std::vector<plan::ClauseAtom> planned;
    planned.reserve(clause.atoms.size());
    for (const CQAtom& atom : clause.atoms) {
      planned.push_back({atom.relation, atom.terms});
    }
    // A variable pinned to a value (by an equality or the output tuple)
    // counts as bound from the start.
    std::set<std::size_t> bound_vars;
    for (std::size_t i = 0; i < variables.size(); ++i) {
      if (pin[uf.Find(i)]) bound_vars.insert(variables[i]);
    }
    atom_order = plan::OrderClauseAtoms(planned, db, bound_vars);
  }
  for (std::size_t atom_index : atom_order) {
    const CQAtom& atom = clause.atoms[atom_index];
    CompiledClause::CompiledAtom compiled;
    compiled.relation =
        db.HasRelation(atom.relation) ? &db.relation(atom.relation) : nullptr;
    for (const Term& t : atom.terms) {
      CompiledClause::AtomSlot slot;
      if (t.is_variable()) {
        slot.is_class = true;
        slot.class_index = out.class_of_variable[t.variable_id()];
        out.occurs_in_atom[slot.class_index] = true;
      } else {
        slot.is_class = false;
        slot.class_index = 0;
        slot.value = t.value();
      }
      compiled.slots.push_back(slot);
    }
    out.atoms.push_back(std::move(compiled));
  }
  return out;
}

// Backtracking join: tries to extend `assignment` (class index → value)
// so that every atom maps to some tuple of its relation. Invokes `on_match`
// for each complete match; returns false from on_match to stop early.
// Returns true iff the search was stopped early (a match was accepted).
bool Search(const CompiledClause& clause, std::size_t atom_index,
            std::vector<std::optional<Value>>* assignment,
            const std::function<bool(void)>& on_match) {
  if (atom_index == clause.atoms.size()) {
    return !on_match();
  }
  const CompiledClause::CompiledAtom& atom = clause.atoms[atom_index];
  if (atom.relation == nullptr) return false;  // Absent relation: no tuples.
  const Relation& rel = *atom.relation;
  // In indexed mode, columns already fixed by constants or bound classes
  // become a hash probe; the compatibility loop below re-verifies every
  // candidate either way, so scan and probe see identical match sets.
  std::vector<std::uint32_t> probe_ids;
  bool use_probe = false;
  if (storage_mode() == StorageMode::kIndexed && rel.arity() > 0 &&
      rel.arity() <= Relation::kMaxIndexedColumns &&
      atom.slots.size() == rel.arity()) {
    Relation::Mask mask = 0;
    std::vector<Value> key;
    for (std::size_t i = 0; i < atom.slots.size(); ++i) {
      const CompiledClause::AtomSlot& slot = atom.slots[i];
      if (!slot.is_class) {
        mask |= Relation::Mask{1} << i;
        key.push_back(slot.value);
      } else if ((*assignment)[slot.class_index]) {
        mask |= Relation::Mask{1} << i;
        key.push_back(*(*assignment)[slot.class_index]);
      }
    }
    if (mask != 0) {
      Relation::RowIdSpan span = rel.Probe(mask, key);
      probe_ids.assign(span.begin(), span.end());
      use_probe = true;
    }
  }
  std::size_t candidate_count = use_probe ? probe_ids.size() : rel.size();
  for (std::size_t c = 0; c < candidate_count; ++c) {
    Relation::Row tuple = rel.row(use_probe ? probe_ids[c] : c);
    // Check compatibility and collect the bindings this tuple adds.
    std::vector<std::size_t> newly_bound;
    bool compatible = true;
    for (std::size_t i = 0; i < atom.slots.size() && compatible; ++i) {
      const CompiledClause::AtomSlot& slot = atom.slots[i];
      if (!slot.is_class) {
        compatible = slot.value == tuple[i];
        continue;
      }
      std::optional<Value>& current = (*assignment)[slot.class_index];
      if (current) {
        compatible = *current == tuple[i];
      } else {
        current = tuple[i];
        newly_bound.push_back(slot.class_index);
      }
    }
    if (compatible && Search(clause, atom_index + 1, assignment, on_match)) {
      // Stop-early propagates; leave bindings as-is (caller unwinding).
      for (std::size_t c : newly_bound) (*assignment)[c] = std::nullopt;
      return true;
    }
    for (std::size_t c : newly_bound) (*assignment)[c] = std::nullopt;
  }
  return false;
}

// True iff the clause has a satisfying homomorphism into db (with free
// variables already pinned during compilation).
bool ClauseSatisfiable(const CompiledClause& clause, const Database& db) {
  if (clause.unsatisfiable) return false;
  // Classes never touched by an atom need a nonempty active domain (they
  // are existential variables ranging over adom) unless pinned.
  std::vector<Value> adom;  // Lazily computed.
  bool adom_computed = false;
  for (std::size_t c = 0; c < clause.occurs_in_atom.size(); ++c) {
    if (!clause.occurs_in_atom[c] && !clause.pinned[c]) {
      if (!adom_computed) {
        adom = db.ActiveDomain();
        adom_computed = true;
      }
      if (adom.empty()) return false;
    }
  }
  // Pinned values that must also appear in atoms are checked by Search via
  // the initial assignment.
  std::vector<std::optional<Value>> assignment = clause.pinned;
  bool found = false;
  Search(clause, 0, &assignment, [&]() {
    found = true;
    return false;  // Stop at the first match.
  });
  return found;
}

}  // namespace

bool UcqMembership(const UcqNormalForm& ucq,
                   const std::vector<std::size_t>& free_variables,
                   const Database& db, const Tuple& tuple) {
  assert(tuple.arity() == free_variables.size());
  std::map<std::size_t, Value> bound;
  for (std::size_t i = 0; i < free_variables.size(); ++i) {
    auto [it, inserted] = bound.emplace(free_variables[i], tuple[i]);
    if (!inserted && it->second != tuple[i]) return false;
  }
  for (const ConjunctiveClause& clause : ucq.disjuncts) {
    CompiledClause compiled = Compile(clause, db, &bound);
    if (ClauseSatisfiable(compiled, db)) return true;
  }
  return false;
}

std::vector<Tuple> UcqEvaluate(const UcqNormalForm& ucq,
                               const std::vector<std::size_t>& free_variables,
                               const Database& db) {
  std::set<Tuple> answers;
  std::vector<Value> adom = db.ActiveDomain();
  for (const ConjunctiveClause& clause : ucq.disjuncts) {
    CompiledClause compiled = Compile(clause, db, nullptr);
    if (compiled.unsatisfiable) continue;
    // Free variables that do not occur in this clause at all range over the
    // full active domain; handle them by enumerating after each match.
    std::vector<std::optional<Value>> assignment = compiled.pinned;
    // Check unpinned atom-free classes: they range over adom; if adom is
    // empty no match is possible (unless there are no such classes).
    auto emit = [&]() {
      // Build the answer tuple; unresolved free columns enumerate adom.
      std::vector<std::size_t> open_columns;
      std::vector<Value> values(free_variables.size(), Value());
      for (std::size_t i = 0; i < free_variables.size(); ++i) {
        auto it = compiled.class_of_variable.find(free_variables[i]);
        if (it != compiled.class_of_variable.end() &&
            assignment[it->second]) {
          values[i] = *assignment[it->second];
        } else {
          open_columns.push_back(i);
        }
      }
      if (open_columns.empty()) {
        answers.insert(Tuple(values));
        return true;  // Continue searching for more matches.
      }
      // Enumerate the open columns over adom (odometer).
      if (adom.empty()) return true;
      std::vector<std::size_t> indices(open_columns.size(), 0);
      while (true) {
        for (std::size_t j = 0; j < open_columns.size(); ++j) {
          values[open_columns[j]] = adom[indices[j]];
        }
        answers.insert(Tuple(values));
        std::size_t p = 0;
        while (p < indices.size() && ++indices[p] == adom.size()) {
          indices[p++] = 0;
        }
        if (p == indices.size()) break;
      }
      return true;
    };
    // Existential atom-free unpinned classes require nonempty adom.
    bool clause_viable = true;
    for (std::size_t c = 0; c < compiled.occurs_in_atom.size(); ++c) {
      if (!compiled.occurs_in_atom[c] && !compiled.pinned[c] && adom.empty()) {
        clause_viable = false;
      }
    }
    if (!clause_viable) continue;
    Search(compiled, 0, &assignment, emit);
  }
  return std::vector<Tuple>(answers.begin(), answers.end());
}

StatusOr<bool> UcqMembership(const Query& query, const Database& db,
                             const Tuple& tuple) {
  StatusOr<UcqNormalForm> ucq = NormalizeUcq(*query.formula());
  if (!ucq.ok()) return ucq.status();
  return UcqMembership(*ucq, query.free_variables(), db, tuple);
}

StatusOr<std::vector<Tuple>> UcqEvaluate(const Query& query,
                                         const Database& db) {
  StatusOr<UcqNormalForm> ucq = NormalizeUcq(*query.formula());
  if (!ucq.ok()) return ucq.status();
  return UcqEvaluate(*ucq, query.free_variables(), db);
}

}  // namespace zeroone
