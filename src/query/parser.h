#ifndef ZEROONE_QUERY_PARSER_H_
#define ZEROONE_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace zeroone {

// Parses the textual first-order query syntax.
//
// Grammar (whitespace-insensitive):
//
//   query       := [ name '(' var {',' var} ')' ':=' ] formula
//   formula     := quantified | implication
//   quantified  := ('exists' | 'forall') var {',' var} '.' formula
//   implication := disjunction [ '->' formula ]
//   disjunction := conjunction { '|' conjunction }
//   conjunction := unary { '&' unary }
//   unary       := '!' unary | quantified | primary
//   primary     := '(' formula ')' | 'true' | 'false'
//                | relname '(' [term {',' term}] ')'        (atom)
//                | term ('=' | '!=') term
//   term        := variable | constant
//
// Identifier interpretation: an identifier immediately followed by '(' is a
// relation name. Any other identifier is a *variable* if it was declared —
// in the query head or by an enclosing quantifier — and a *named constant*
// otherwise. Numbers (e.g. 42) and single-quoted strings (e.g. 'widget')
// are always constants. This matches the paper's style, where R(c, y)
// mentions the constant c and the variable y is quantified or free in the
// head.
//
// Quantifier bodies extend as far to the right as possible:
// "a & exists x . b & c" parses as a & (exists x . (b & c)).
//
// Examples:
//   Q(x, y) := R1(x, y) & !R2(x, y)
//   phi(x)  := exists y . E(c, y) & E(y, x)
//   := forall x . U(x) -> (R(x) & !S(x))         (Boolean query)
StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace zeroone

#endif  // ZEROONE_QUERY_PARSER_H_
