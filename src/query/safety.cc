#include "query/safety.h"

#include <optional>
#include <set>

namespace zeroone {

namespace {

// Negation normal form over the library's connectives: negations are pushed
// down to atoms, equalities, and (negated) existential blocks; ∀ and →
// are eliminated. This is the SRNF preprocessing of the classical
// safe-range test.
FormulaPtr Nnf(const FormulaPtr& f, bool negated);

using NaryFactory = FormulaPtr (*)(std::vector<FormulaPtr>);

FormulaPtr NnfChildren(const Formula& f, bool negated, NaryFactory combine) {
  std::vector<FormulaPtr> children;
  children.reserve(f.children().size());
  for (const FormulaPtr& child : f.children()) {
    children.push_back(Nnf(child, negated));
  }
  return combine(std::move(children));
}

constexpr NaryFactory kAndFactory =
    static_cast<NaryFactory>(&Formula::And);
constexpr NaryFactory kOrFactory = static_cast<NaryFactory>(&Formula::Or);

FormulaPtr Nnf(const FormulaPtr& f, bool negated) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return negated ? Formula::False() : Formula::True();
    case Formula::Kind::kFalse:
      return negated ? Formula::True() : Formula::False();
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return negated ? Formula::Not(f) : f;
    case Formula::Kind::kNot:
      return Nnf(f->children()[0], !negated);
    case Formula::Kind::kAnd:
      return NnfChildren(*f, negated, negated ? kOrFactory : kAndFactory);
    case Formula::Kind::kOr:
      return NnfChildren(*f, negated, negated ? kAndFactory : kOrFactory);
    case Formula::Kind::kImplies:
      // φ → ψ ≡ ¬φ ∨ ψ; negated: φ ∧ ¬ψ.
      if (negated) {
        return Formula::And(Nnf(f->children()[0], false),
                            Nnf(f->children()[1], true));
      }
      return Formula::Or(Nnf(f->children()[0], true),
                         Nnf(f->children()[1], false));
    case Formula::Kind::kExists: {
      // ∃x φ normalizes its body positively; under negation the whole
      // block stays wrapped: ¬∃x φ (the body is NOT negated — pushing
      // further would change the meaning).
      FormulaPtr block = Formula::Exists(f->bound_variable(),
                                         Nnf(f->children()[0], false));
      return negated ? Formula::Not(std::move(block)) : std::move(block);
    }
    case Formula::Kind::kForall: {
      // ∀x φ ≡ ¬∃x ¬φ; ¬∀x φ ≡ ∃x ¬φ. Either way the rewritten body is ¬φ.
      FormulaPtr block = Formula::Exists(f->bound_variable(),
                                         Nnf(f->children()[0], true));
      return negated ? std::move(block) : Formula::Not(std::move(block));
    }
  }
  return f;
}

// Range-restricted variables of an NNF formula; nullopt = the formula is
// not safe-range (some quantified variable unrestricted in its scope).
std::optional<std::set<std::size_t>> RangeRestricted(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return std::set<std::size_t>{};
    case Formula::Kind::kAtom: {
      std::set<std::size_t> vars;
      for (const Term& t : f.terms()) {
        if (t.is_variable()) vars.insert(t.variable_id());
      }
      return vars;
    }
    case Formula::Kind::kEquals: {
      std::set<std::size_t> vars;
      // x = c grounds x; x = y grounds neither on its own (handled by the
      // ∧ propagation below).
      if (f.left().is_variable() && f.right().is_value()) {
        vars.insert(f.left().variable_id());
      }
      if (f.right().is_variable() && f.left().is_value()) {
        vars.insert(f.right().variable_id());
      }
      return vars;
    }
    case Formula::Kind::kNot: {
      // Negated atom / equality / existential block: contributes no
      // restriction, but the inside must itself be safe.
      if (!RangeRestricted(*f.children()[0])) return std::nullopt;
      return std::set<std::size_t>{};
    }
    case Formula::Kind::kAnd: {
      std::set<std::size_t> restricted;
      for (const FormulaPtr& child : f.children()) {
        std::optional<std::set<std::size_t>> sub = RangeRestricted(*child);
        if (!sub) return std::nullopt;
        restricted.insert(sub->begin(), sub->end());
      }
      // Propagate restriction through x = y conjuncts to a fixpoint.
      bool changed = true;
      while (changed) {
        changed = false;
        for (const FormulaPtr& child : f.children()) {
          if (child->kind() != Formula::Kind::kEquals) continue;
          const Term& l = child->left();
          const Term& r = child->right();
          if (l.is_variable() && r.is_variable()) {
            bool has_l = restricted.count(l.variable_id()) != 0;
            bool has_r = restricted.count(r.variable_id()) != 0;
            if (has_l && !has_r) {
              restricted.insert(r.variable_id());
              changed = true;
            } else if (has_r && !has_l) {
              restricted.insert(l.variable_id());
              changed = true;
            }
          }
        }
      }
      return restricted;
    }
    case Formula::Kind::kOr: {
      std::optional<std::set<std::size_t>> result;
      for (const FormulaPtr& child : f.children()) {
        std::optional<std::set<std::size_t>> sub = RangeRestricted(*child);
        if (!sub) return std::nullopt;
        if (!result) {
          result = std::move(sub);
          continue;
        }
        std::set<std::size_t> intersection;
        for (std::size_t v : *sub) {
          if (result->count(v) != 0) intersection.insert(v);
        }
        result = std::move(intersection);
      }
      return result ? result : std::set<std::size_t>{};
    }
    case Formula::Kind::kExists: {
      std::optional<std::set<std::size_t>> sub =
          RangeRestricted(*f.children()[0]);
      if (!sub) return std::nullopt;
      if (sub->count(f.bound_variable()) == 0) return std::nullopt;
      sub->erase(f.bound_variable());
      return sub;
    }
    default:
      // kImplies/kForall cannot appear in NNF.
      return std::nullopt;
  }
}

}  // namespace

bool IsSafeRangeFormula(const Formula& formula) {
  // The NNF transform needs a shared_ptr; wrap without copying by building
  // from the public factories (formulas are immutable shared trees, so the
  // caller-supplied node is reachable only via the Query path; here, rebuild
  // through Nnf on a non-owning alias).
  FormulaPtr alias(&formula, [](const Formula*) {});
  FormulaPtr nnf = Nnf(alias, /*negated=*/false);
  std::optional<std::set<std::size_t>> restricted = RangeRestricted(*nnf);
  if (!restricted) return false;
  for (std::size_t v : formula.FreeVariables()) {
    if (restricted->count(v) == 0) return false;
  }
  return true;
}

bool IsSafeRange(const Query& query) {
  return IsSafeRangeFormula(*query.formula());
}

}  // namespace zeroone
