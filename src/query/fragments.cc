#include "query/fragments.h"

#include <algorithm>
#include <set>

namespace zeroone {

namespace {

bool AllChildren(const Formula& f, bool (*predicate)(const Formula&)) {
  return std::all_of(
      f.children().begin(), f.children().end(),
      [&](const FormulaPtr& child) { return predicate(*child); });
}

}  // namespace

bool IsConjunctive(const Formula& formula) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return true;
    case Formula::Kind::kAnd:
    case Formula::Kind::kExists:
      return AllChildren(formula, &IsConjunctive);
    default:
      return false;
  }
}

bool IsUnionOfConjunctive(const Formula& formula) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return true;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kExists:
      return AllChildren(formula, &IsUnionOfConjunctive);
    default:
      return false;
  }
}

namespace {

// Checks the guarded-universal rule: the formula is a chain
// ∀x₁ … ∀x_n (α → φ) where α is a relational atom whose variable terms are
// pairwise-distinct variables including every x_i, and φ ∈ Pos∀G.
bool IsGuardedUniversal(const Formula& formula) {
  std::set<std::size_t> quantified;
  const Formula* current = &formula;
  while (current->kind() == Formula::Kind::kForall) {
    quantified.insert(current->bound_variable());
    current = current->children()[0].get();
  }
  if (current->kind() != Formula::Kind::kImplies) return false;
  const Formula& guard = *current->children()[0];
  if (guard.kind() != Formula::Kind::kAtom) return false;
  // The guard must be an atom α over pairwise-distinct variables covering
  // the whole quantified tuple x̄ (it may additionally mention variables
  // bound further out, as is usual in guarded fragments).
  std::set<std::size_t> guard_variables;
  for (const Term& t : guard.terms()) {
    if (!t.is_variable()) return false;
    if (!guard_variables.insert(t.variable_id()).second) return false;
  }
  for (std::size_t v : quantified) {
    if (guard_variables.count(v) == 0) return false;
  }
  return IsPosForallGuarded(*current->children()[1]);
}

}  // namespace

bool IsPosForallGuarded(const Formula& formula) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return true;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kExists:
      return AllChildren(formula, &IsPosForallGuarded);
    case Formula::Kind::kForall:
      // Either a plain positive universal, or the start of a guarded chain.
      return IsPosForallGuarded(*formula.children()[0]) ||
             IsGuardedUniversal(formula);
    case Formula::Kind::kImplies:
      // Implications are only allowed under a ∀ chain as guards; a bare
      // implication is not in the fragment. (∀-chains are handled above.)
      return false;
    default:
      return false;
  }
}

namespace {

// DNF of a positive-existential formula as clause lists.
StatusOr<std::vector<ConjunctiveClause>> ToDnf(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return std::vector<ConjunctiveClause>{ConjunctiveClause{}};
    case Formula::Kind::kFalse:
      return std::vector<ConjunctiveClause>{};
    case Formula::Kind::kAtom: {
      ConjunctiveClause clause;
      clause.atoms.push_back(CQAtom{f.relation_name(), f.terms()});
      return std::vector<ConjunctiveClause>{std::move(clause)};
    }
    case Formula::Kind::kEquals: {
      ConjunctiveClause clause;
      clause.equalities.emplace_back(f.left(), f.right());
      return std::vector<ConjunctiveClause>{std::move(clause)};
    }
    case Formula::Kind::kExists:
      // Variable ids are unique; the quantifier can simply be stripped —
      // non-free variables are existential by convention.
      return ToDnf(*f.children()[0]);
    case Formula::Kind::kOr: {
      std::vector<ConjunctiveClause> result;
      for (const FormulaPtr& child : f.children()) {
        StatusOr<std::vector<ConjunctiveClause>> sub = ToDnf(*child);
        if (!sub.ok()) return sub.status();
        for (ConjunctiveClause& clause : sub.value()) {
          result.push_back(std::move(clause));
        }
      }
      return result;
    }
    case Formula::Kind::kAnd: {
      std::vector<ConjunctiveClause> result = {ConjunctiveClause{}};
      for (const FormulaPtr& child : f.children()) {
        StatusOr<std::vector<ConjunctiveClause>> sub = ToDnf(*child);
        if (!sub.ok()) return sub.status();
        std::vector<ConjunctiveClause> next;
        next.reserve(result.size() * sub->size());
        for (const ConjunctiveClause& left : result) {
          for (const ConjunctiveClause& right : *sub) {
            ConjunctiveClause merged = left;
            merged.atoms.insert(merged.atoms.end(), right.atoms.begin(),
                                right.atoms.end());
            merged.equalities.insert(merged.equalities.end(),
                                     right.equalities.begin(),
                                     right.equalities.end());
            next.push_back(std::move(merged));
          }
        }
        result = std::move(next);
      }
      return result;
    }
    default:
      return Status::Error(
          "NormalizeUcq: formula is not in the ∃,∧,∨ fragment (found " +
          std::to_string(static_cast<int>(f.kind())) + ")");
  }
}

}  // namespace

StatusOr<UcqNormalForm> NormalizeUcq(const Formula& formula) {
  StatusOr<std::vector<ConjunctiveClause>> dnf = ToDnf(formula);
  if (!dnf.ok()) return dnf.status();
  UcqNormalForm result;
  result.disjuncts = std::move(*dnf);
  return result;
}

}  // namespace zeroone
