#include "query/eval.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <unordered_set>

#include "common/cancel.h"
#include "data/valuation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "plan/cache.h"
#include "plan/compiler.h"
#include "plan/mode.h"
#include "plan/vm.h"

namespace zeroone {

namespace {

Value ResolveTerm(const Term& term, const Environment& env) {
  if (term.is_value()) return term.value();
  assert(term.variable_id() < env.size() && env[term.variable_id()] &&
         "unbound variable during evaluation");
  return *env[term.variable_id()];
}

struct EvalContext {
  const Database& db;
  const std::vector<Value>& domain;
  bool indexed;  // Probe positive atoms to restrict quantifier ranges.
};

// Finds a positive atom mentioning variable `var` that every satisfying
// extension of the current environment must satisfy: if no row of the
// atom's relation can match with var = v, the formula is false at v.
// Quantifiers crossed on the way down rebind their variable, so those
// variables must be treated as unbound when probing; they accumulate in
// `shadowed` along the successful path.
const Formula* FindRequiredAtom(const Formula& f, std::size_t var,
                                std::vector<std::size_t>* shadowed) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      for (const Term& t : f.terms()) {
        if (!t.is_value() && t.variable_id() == var) return &f;
      }
      return nullptr;
    case Formula::Kind::kAnd:
      for (const FormulaPtr& child : f.children()) {
        if (const Formula* a = FindRequiredAtom(*child, var, shadowed)) {
          return a;
        }
      }
      return nullptr;
    case Formula::Kind::kExists: {
      if (f.bound_variable() == var) return nullptr;
      shadowed->push_back(f.bound_variable());
      if (const Formula* a =
              FindRequiredAtom(*f.children()[0], var, shadowed)) {
        return a;
      }
      shadowed->pop_back();
      return nullptr;
    }
    default:
      return nullptr;
  }
}

// Finds an atom whose unmatchability at var = v makes `f` vacuously TRUE
// (the dual of FindRequiredAtom, used to skip domain values under ∀): a
// failed premise, a refuted negation, or such an atom inside ∀/∃/∨.
const Formula* FindVacuityAtom(const Formula& f, std::size_t var,
                               std::vector<std::size_t>* shadowed) {
  switch (f.kind()) {
    case Formula::Kind::kImplies:
    case Formula::Kind::kNot:
      return FindRequiredAtom(*f.children()[0], var, shadowed);
    case Formula::Kind::kForall:
    case Formula::Kind::kExists: {
      if (f.bound_variable() == var) return nullptr;
      shadowed->push_back(f.bound_variable());
      if (const Formula* a =
              FindVacuityAtom(*f.children()[0], var, shadowed)) {
        return a;
      }
      shadowed->pop_back();
      return nullptr;
    }
    case Formula::Kind::kOr:
      for (const FormulaPtr& child : f.children()) {
        if (const Formula* a = FindVacuityAtom(*child, var, shadowed)) {
          return a;
        }
      }
      return nullptr;
    default:
      return nullptr;
  }
}

std::uint64_t PackValue(Value v) {
  return (static_cast<std::uint64_t>(v.kind()) << 32) | v.id();
}

// Computes the subset of ctx.domain (in domain order) that variable `var`
// can take while `atom` still has a matching row, probing on columns whose
// terms are already fixed. Returns false to fall back to the full domain.
bool CollectCandidates(const Formula& atom, std::size_t var,
                       const std::vector<std::size_t>& shadowed,
                       const EvalContext& ctx, const Environment& env,
                       std::vector<Value>* out) {
  out->clear();
  if (!ctx.db.HasRelation(atom.relation_name())) return true;  // No rows.
  const Relation& rel = ctx.db.relation(atom.relation_name());
  if (atom.terms().size() != rel.arity() || rel.arity() == 0 ||
      rel.arity() > Relation::kMaxIndexedColumns) {
    return false;
  }
  Relation::Mask mask = 0;
  std::vector<Value> key;
  std::vector<std::size_t> var_columns;
  for (std::size_t i = 0; i < atom.terms().size(); ++i) {
    const Term& t = atom.terms()[i];
    if (t.is_value()) {
      mask |= Relation::Mask{1} << i;
      key.push_back(t.value());
      continue;
    }
    std::size_t id = t.variable_id();
    if (id == var) {
      var_columns.push_back(i);
    } else if (id < env.size() && env[id] &&
               std::find(shadowed.begin(), shadowed.end(), id) ==
                   shadowed.end()) {
      mask |= Relation::Mask{1} << i;
      key.push_back(*env[id]);
    }
    // Other unbound (or shadowed) variables are wildcards.
  }
  if (var_columns.empty()) return false;

  std::unordered_set<std::uint64_t> seen;
  auto consider = [&](Relation::Row row) {
    Value x = row[var_columns[0]];
    for (std::size_t c : var_columns) {
      if (row[c] != x) return;
    }
    seen.insert(PackValue(x));
  };
  if (mask != 0) {
    for (std::uint32_t pos : rel.Probe(mask, key)) consider(rel.row(pos));
  } else {
    for (std::size_t pos = 0; pos < rel.size(); ++pos) consider(rel.row(pos));
  }
  // Keep domain order so quantifier iteration stays deterministic and
  // identical to a filtered full-domain loop.
  for (Value v : ctx.domain) {
    if (seen.count(PackValue(v)) != 0) out->push_back(v);
  }
  return true;
}

bool Eval(const Formula& formula, const EvalContext& ctx, Environment* env) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom: {
      ZO_COUNTER_INC("eval.atom_probes");
      if (!ctx.db.HasRelation(formula.relation_name())) return false;
      const Relation& rel = ctx.db.relation(formula.relation_name());
      assert(formula.terms().size() == rel.arity() &&
             "atom arity mismatch");
      // Resolve into a small stack-backed buffer: membership probing is
      // allocation-free for the common short arities.
      Value stack_values[8];
      std::vector<Value> heap_values;
      Value* values = stack_values;
      if (formula.terms().size() > 8) {
        heap_values.resize(formula.terms().size());
        values = heap_values.data();
      }
      for (std::size_t i = 0; i < formula.terms().size(); ++i) {
        values[i] = ResolveTerm(formula.terms()[i], *env);
      }
      return rel.Contains(values);
    }
    case Formula::Kind::kEquals:
      return ResolveTerm(formula.left(), *env) ==
             ResolveTerm(formula.right(), *env);
    case Formula::Kind::kNot:
      return !Eval(*formula.children()[0], ctx, env);
    case Formula::Kind::kAnd:
      for (const FormulaPtr& child : formula.children()) {
        if (!Eval(*child, ctx, env)) return false;
      }
      return true;
    case Formula::Kind::kOr:
      for (const FormulaPtr& child : formula.children()) {
        if (Eval(*child, ctx, env)) return true;
      }
      return false;
    case Formula::Kind::kImplies:
      return !Eval(*formula.children()[0], ctx, env) ||
             Eval(*formula.children()[1], ctx, env);
    case Formula::Kind::kExists: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      // When the body requires a positive atom over `var`, only values
      // occurring in matching rows can witness the ∃ — probe for them
      // instead of sweeping the whole domain.
      const std::vector<Value>* range = &ctx.domain;
      std::vector<Value> candidates;
      if (ctx.indexed) {
        std::vector<std::size_t> shadowed;
        if (const Formula* atom =
                FindRequiredAtom(*formula.children()[0], var, &shadowed)) {
          if (CollectCandidates(*atom, var, shadowed, ctx, *env,
                                &candidates)) {
            range = &candidates;
          }
        }
      }
      bool result = false;
      for (Value v : *range) {
        (*env)[var] = v;
        if (Eval(*formula.children()[0], ctx, env)) {
          result = true;
          break;
        }
      }
      (*env)[var] = saved;
      return result;
    }
    case Formula::Kind::kForall: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      // Dually, when unmatched values make the body vacuously true, only
      // values occurring in matching rows can refute the ∀.
      const std::vector<Value>* range = &ctx.domain;
      std::vector<Value> candidates;
      if (ctx.indexed) {
        std::vector<std::size_t> shadowed;
        if (const Formula* atom =
                FindVacuityAtom(*formula.children()[0], var, &shadowed)) {
          if (CollectCandidates(*atom, var, shadowed, ctx, *env,
                                &candidates)) {
            range = &candidates;
          }
        }
      }
      bool result = true;
      for (Value v : *range) {
        (*env)[var] = v;
        if (!Eval(*formula.children()[0], ctx, env)) {
          result = false;
          break;
        }
      }
      (*env)[var] = saved;
      return result;
    }
  }
  return false;
}

// Fetches (or compiles) the plan for `query`. Caching happens only under a
// plan scope (installed by the svc layer around read commands): the scope
// key carries the session version, so a cached plan is only ever replayed
// against databases of the version it was compiled for. Without a scope,
// compilation is fresh per call — O(|formula|), cheap next to evaluation.
std::shared_ptr<const plan::CompiledQuery> PlanFor(const Query& query,
                                                   const Database& db,
                                                   bool enumerate) {
  const std::string* scope = plan::CurrentPlanScope();
  if (scope == nullptr) {
    return std::make_shared<plan::CompiledQuery>(plan::CompileFormulaQuery(
        *query.formula(), query.free_variables(), query.variable_count(),
        query.variable_names(), db, enumerate));
  }
  std::string key = *scope;
  key += '\x1f';
  key += enumerate ? 'e' : 'm';
  key += '\x1f';
  key += query.ToString();
  plan::PlanCache& cache = plan::PlanCache::Global();
  if (auto cached = cache.Get(key)) return cached;
  auto compiled = std::make_shared<plan::CompiledQuery>(
      plan::CompileFormulaQuery(*query.formula(), query.free_variables(),
                                query.variable_count(), query.variable_names(),
                                db, enumerate));
  cache.Put(key, compiled);
  return compiled;
}

}  // namespace

bool EvaluateFormula(const Formula& formula, const Database& db,
                     const std::vector<Value>& domain, Environment* env) {
  EvalContext ctx{db, domain, storage_mode() == StorageMode::kIndexed};
  return Eval(formula, ctx, env);
}

std::string ExplainQueryPlan(const Query& query, const Database& db) {
  // Always the enumerate-mode plan: that is what EvaluateQuery runs.
  return plan::CompileFormulaQuery(*query.formula(), query.free_variables(),
                                   query.variable_count(),
                                   query.variable_names(), db,
                                   /*enumerate=*/true)
      .explain;
}

bool EvaluateMembership(const Query& query, const Database& db,
                        const Tuple& tuple) {
  return EvaluateMembership(query, db, tuple, db.ActiveDomain());
}

bool EvaluateMembership(const Query& query, const Database& db,
                        const Tuple& tuple,
                        const std::vector<Value>& domain) {
  assert(tuple.arity() == query.arity() && "membership tuple arity mismatch");
  ZO_COUNTER_INC("eval.membership_checks");
  Environment env(query.variable_count());
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    std::size_t var = query.free_variables()[i];
    // Repeated output variables must agree.
    if (env[var] && *env[var] != tuple[i]) return false;
    env[var] = tuple[i];
  }
  if (plan::plan_mode() == plan::PlanMode::kCompiled) {
    auto compiled = PlanFor(query, db, /*enumerate=*/false);
    std::vector<Value> inputs;
    inputs.reserve(compiled->program.input_vars.size());
    for (std::size_t var : compiled->program.input_vars) {
      inputs.push_back(*env[var]);
    }
    return plan::ExecuteMembership(compiled->program, db, domain, inputs);
  }
  return EvaluateFormula(*query.formula(), db, domain, &env);
}

namespace {

// Enumerates assignments of `columns` free variables over the domain,
// collecting satisfying tuples.
void EnumerateAnswers(const Query& query, const Database& db,
                      const std::vector<Value>& domain, std::size_t column,
                      Environment* env, std::vector<Value>* current,
                      std::vector<Tuple>* out) {
  if (column == query.arity()) {
    ZO_COUNTER_INC("eval.tuple_probes");
    if (EvaluateFormula(*query.formula(), db, domain, env)) {
      out->push_back(Tuple(*current));
    }
    return;
  }
  std::size_t var = query.free_variables()[column];
  std::optional<Value> pre_bound = (*env)[var];
  if (pre_bound) {
    // A repeated output variable already bound by an earlier column.
    current->push_back(*pre_bound);
    EnumerateAnswers(query, db, domain, column + 1, env, current, out);
    current->pop_back();
    return;
  }
  for (Value v : domain) {
    (*env)[var] = v;
    current->push_back(v);
    EnumerateAnswers(query, db, domain, column + 1, env, current, out);
    current->pop_back();
  }
  (*env)[var] = std::nullopt;
}

}  // namespace

std::vector<Tuple> EvaluateQuery(const Query& query, const Database& db) {
  ZO_TRACE_SPAN("EvaluateQuery");
  ZO_COUNTER_INC("eval.queries_evaluated");
  std::vector<Value> domain = db.ActiveDomain();
  if (plan::plan_mode() == plan::PlanMode::kCompiled) {
    auto compiled = PlanFor(query, db, /*enumerate=*/true);
    std::vector<Tuple> answers;
    plan::ExecuteEnumerate(compiled->program, db, domain, &answers);
    return answers;
  }
  Environment env(query.variable_count());
  std::vector<Tuple> answers;
  if (query.is_boolean()) {
    if (EvaluateFormula(*query.formula(), db, domain, &env)) {
      answers.push_back(Tuple{});
    }
    return answers;
  }
  // The first output column's domain sweep is the parallel axis: morsels of
  // domain indices, each explored with a worker-private environment, results
  // landing in per-morsel slots concatenated in morsel order — byte-identical
  // to the serial sweep (docs/parallelism.md).
  par::ForPlan morsels = par::PlanMorsels(domain.size(), par::ForOptions{});
  if (morsels.workers > 1) {
    std::size_t var = query.free_variables()[0];
    std::vector<std::vector<Tuple>> slots(morsels.morsels);
    par::ParallelFor(morsels, [&](const par::Morsel& m, std::size_t) {
      Environment worker_env(query.variable_count());
      std::vector<Value> worker_current;
      worker_current.reserve(query.arity());
      for (std::size_t i = m.begin; i < m.end; ++i) {
        if (CancellationRequested()) return false;
        worker_env[var] = domain[i];
        worker_current.push_back(domain[i]);
        EnumerateAnswers(query, db, domain, 1, &worker_env, &worker_current,
                         &slots[m.index]);
        worker_current.pop_back();
      }
      return true;
    });
    // On abort the merge still runs: a cancelled computation returns
    // partial results by design and the token's installer discards them.
    for (std::vector<Tuple>& slot : slots) {
      answers.insert(answers.end(), std::make_move_iterator(slot.begin()),
                     std::make_move_iterator(slot.end()));
    }
    return answers;
  }
  std::vector<Value> current;
  current.reserve(query.arity());
  EnumerateAnswers(query, db, domain, 0, &env, &current, &answers);
  return answers;
}

FormulaPtr ApplyValuationToFormula(const FormulaPtr& formula,
                                   const Valuation& v) {
  const Formula& f = *formula;
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return formula;
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals: {
      std::vector<Term> terms;
      terms.reserve(f.terms().size());
      bool changed = false;
      for (const Term& t : f.terms()) {
        if (t.is_value() && t.value().is_null() && v.IsBound(t.value())) {
          terms.push_back(Term::Val(v.ValueOf(t.value())));
          changed = true;
        } else {
          terms.push_back(t);
        }
      }
      if (!changed) return formula;
      if (f.kind() == Formula::Kind::kEquals) {
        return Formula::Equals(terms[0], terms[1]);
      }
      return Formula::Atom(f.relation_name(), std::move(terms));
    }
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(f.children().size());
      bool changed = false;
      for (const FormulaPtr& child : f.children()) {
        FormulaPtr replaced = ApplyValuationToFormula(child, v);
        changed = changed || replaced != child;
        children.push_back(std::move(replaced));
      }
      if (!changed) return formula;
      switch (f.kind()) {
        case Formula::Kind::kNot:
          return Formula::Not(children[0]);
        case Formula::Kind::kAnd:
          return Formula::And(std::move(children));
        case Formula::Kind::kOr:
          return Formula::Or(std::move(children));
        case Formula::Kind::kImplies:
          return Formula::Implies(children[0], children[1]);
        case Formula::Kind::kExists:
          return Formula::Exists(f.bound_variable(), children[0]);
        case Formula::Kind::kForall:
          return Formula::Forall(f.bound_variable(), children[0]);
        default:
          return formula;
      }
    }
  }
}

std::vector<Tuple> NaiveEvaluate(const Query& query, const Database& db) {
  return EvaluateQuery(query, db);
}

bool NaiveMembership(const Query& query, const Database& db,
                     const Tuple& tuple) {
  return EvaluateMembership(query, db, tuple);
}

std::vector<Tuple> NaiveEvaluateViaBijection(const Query& query,
                                             const Database& db) {
  Valuation v = MakeBijectiveValuation(db);
  Database complete = v.Apply(db);
  std::vector<Tuple> raw = EvaluateQuery(query, complete);
  // Invert v on every component of every answer.
  std::map<Value, Value> inverse;
  for (const auto& [null, constant] : v.assignment()) {
    inverse[constant] = null;
  }
  std::vector<Tuple> answers;
  answers.reserve(raw.size());
  for (const Tuple& t : raw) {
    std::vector<Value> values;
    values.reserve(t.arity());
    for (Value value : t) {
      auto it = inverse.find(value);
      values.push_back(it == inverse.end() ? value : it->second);
    }
    answers.push_back(Tuple(std::move(values)));
  }
  return answers;
}

}  // namespace zeroone
