#include "query/eval.h"

#include <cassert>
#include <map>

#include "data/valuation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

namespace {

Value ResolveTerm(const Term& term, const Environment& env) {
  if (term.is_value()) return term.value();
  assert(term.variable_id() < env.size() && env[term.variable_id()] &&
         "unbound variable during evaluation");
  return *env[term.variable_id()];
}

}  // namespace

bool EvaluateFormula(const Formula& formula, const Database& db,
                     const std::vector<Value>& domain, Environment* env) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom: {
      ZO_COUNTER_INC("eval.atom_probes");
      if (!db.HasRelation(formula.relation_name())) return false;
      std::vector<Value> values;
      values.reserve(formula.terms().size());
      for (const Term& t : formula.terms()) {
        values.push_back(ResolveTerm(t, *env));
      }
      return db.relation(formula.relation_name()).Contains(Tuple(values));
    }
    case Formula::Kind::kEquals:
      return ResolveTerm(formula.left(), *env) ==
             ResolveTerm(formula.right(), *env);
    case Formula::Kind::kNot:
      return !EvaluateFormula(*formula.children()[0], db, domain, env);
    case Formula::Kind::kAnd:
      for (const FormulaPtr& child : formula.children()) {
        if (!EvaluateFormula(*child, db, domain, env)) return false;
      }
      return true;
    case Formula::Kind::kOr:
      for (const FormulaPtr& child : formula.children()) {
        if (EvaluateFormula(*child, db, domain, env)) return true;
      }
      return false;
    case Formula::Kind::kImplies:
      return !EvaluateFormula(*formula.children()[0], db, domain, env) ||
             EvaluateFormula(*formula.children()[1], db, domain, env);
    case Formula::Kind::kExists: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      bool result = false;
      for (Value v : domain) {
        (*env)[var] = v;
        if (EvaluateFormula(*formula.children()[0], db, domain, env)) {
          result = true;
          break;
        }
      }
      (*env)[var] = saved;
      return result;
    }
    case Formula::Kind::kForall: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      bool result = true;
      for (Value v : domain) {
        (*env)[var] = v;
        if (!EvaluateFormula(*formula.children()[0], db, domain, env)) {
          result = false;
          break;
        }
      }
      (*env)[var] = saved;
      return result;
    }
  }
  return false;
}

bool EvaluateMembership(const Query& query, const Database& db,
                        const Tuple& tuple) {
  assert(tuple.arity() == query.arity() && "membership tuple arity mismatch");
  ZO_COUNTER_INC("eval.membership_checks");
  std::vector<Value> domain = db.ActiveDomain();
  Environment env(query.variable_count());
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    std::size_t var = query.free_variables()[i];
    // Repeated output variables must agree.
    if (env[var] && *env[var] != tuple[i]) return false;
    env[var] = tuple[i];
  }
  return EvaluateFormula(*query.formula(), db, domain, &env);
}

namespace {

// Enumerates assignments of `columns` free variables over the domain,
// collecting satisfying tuples.
void EnumerateAnswers(const Query& query, const Database& db,
                      const std::vector<Value>& domain, std::size_t column,
                      Environment* env, std::vector<Value>* current,
                      std::vector<Tuple>* out) {
  if (column == query.arity()) {
    ZO_COUNTER_INC("eval.tuple_probes");
    if (EvaluateFormula(*query.formula(), db, domain, env)) {
      out->push_back(Tuple(*current));
    }
    return;
  }
  std::size_t var = query.free_variables()[column];
  std::optional<Value> pre_bound = (*env)[var];
  if (pre_bound) {
    // A repeated output variable already bound by an earlier column.
    current->push_back(*pre_bound);
    EnumerateAnswers(query, db, domain, column + 1, env, current, out);
    current->pop_back();
    return;
  }
  for (Value v : domain) {
    (*env)[var] = v;
    current->push_back(v);
    EnumerateAnswers(query, db, domain, column + 1, env, current, out);
    current->pop_back();
  }
  (*env)[var] = std::nullopt;
}

}  // namespace

std::vector<Tuple> EvaluateQuery(const Query& query, const Database& db) {
  ZO_TRACE_SPAN("EvaluateQuery");
  ZO_COUNTER_INC("eval.queries_evaluated");
  std::vector<Value> domain = db.ActiveDomain();
  Environment env(query.variable_count());
  std::vector<Tuple> answers;
  if (query.is_boolean()) {
    if (EvaluateFormula(*query.formula(), db, domain, &env)) {
      answers.push_back(Tuple{});
    }
    return answers;
  }
  std::vector<Value> current;
  current.reserve(query.arity());
  EnumerateAnswers(query, db, domain, 0, &env, &current, &answers);
  return answers;
}

FormulaPtr ApplyValuationToFormula(const FormulaPtr& formula,
                                   const Valuation& v) {
  const Formula& f = *formula;
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return formula;
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals: {
      std::vector<Term> terms;
      terms.reserve(f.terms().size());
      bool changed = false;
      for (const Term& t : f.terms()) {
        if (t.is_value() && t.value().is_null() && v.IsBound(t.value())) {
          terms.push_back(Term::Val(v.ValueOf(t.value())));
          changed = true;
        } else {
          terms.push_back(t);
        }
      }
      if (!changed) return formula;
      if (f.kind() == Formula::Kind::kEquals) {
        return Formula::Equals(terms[0], terms[1]);
      }
      return Formula::Atom(f.relation_name(), std::move(terms));
    }
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(f.children().size());
      bool changed = false;
      for (const FormulaPtr& child : f.children()) {
        FormulaPtr replaced = ApplyValuationToFormula(child, v);
        changed = changed || replaced != child;
        children.push_back(std::move(replaced));
      }
      if (!changed) return formula;
      switch (f.kind()) {
        case Formula::Kind::kNot:
          return Formula::Not(children[0]);
        case Formula::Kind::kAnd:
          return Formula::And(std::move(children));
        case Formula::Kind::kOr:
          return Formula::Or(std::move(children));
        case Formula::Kind::kImplies:
          return Formula::Implies(children[0], children[1]);
        case Formula::Kind::kExists:
          return Formula::Exists(f.bound_variable(), children[0]);
        case Formula::Kind::kForall:
          return Formula::Forall(f.bound_variable(), children[0]);
        default:
          return formula;
      }
    }
  }
}

std::vector<Tuple> NaiveEvaluate(const Query& query, const Database& db) {
  return EvaluateQuery(query, db);
}

bool NaiveMembership(const Query& query, const Database& db,
                     const Tuple& tuple) {
  return EvaluateMembership(query, db, tuple);
}

std::vector<Tuple> NaiveEvaluateViaBijection(const Query& query,
                                             const Database& db) {
  Valuation v = MakeBijectiveValuation(db);
  Database complete = v.Apply(db);
  std::vector<Tuple> raw = EvaluateQuery(query, complete);
  // Invert v on every component of every answer.
  std::map<Value, Value> inverse;
  for (const auto& [null, constant] : v.assignment()) {
    inverse[constant] = null;
  }
  std::vector<Tuple> answers;
  answers.reserve(raw.size());
  for (const Tuple& t : raw) {
    std::vector<Value> values;
    values.reserve(t.arity());
    for (Value value : t) {
      auto it = inverse.find(value);
      values.push_back(it == inverse.end() ? value : it->second);
    }
    answers.push_back(Tuple(std::move(values)));
  }
  return answers;
}

}  // namespace zeroone
