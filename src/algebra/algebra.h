#ifndef ZEROONE_ALGEBRA_ALGEBRA_H_
#define ZEROONE_ALGEBRA_ALGEBRA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Relational algebra (select / project / product / union / difference) over
// incomplete databases. The paper treats relational algebra and first-order
// calculus interchangeably; this module provides the algebraic surface and
// a certified bridge: every expression compiles to an equivalent
// first-order Query (ToQuery), so all measure and comparison machinery
// applies to algebra plans directly. Direct evaluation (Evaluate) is
// syntactic on values and therefore computes *naïve* answers on incomplete
// databases, exactly like the FO evaluator.
//
// Columns are positional (0-based); renaming is implicit in projection
// order, as usual for the positional algebra.
class RaExpr;
using RaExprPtr = std::shared_ptr<const RaExpr>;

// A selection predicate: column-column or column-constant (in)equality.
struct RaCondition {
  enum class Kind {
    kColumnEqualsColumn,
    kColumnEqualsValue,
    kColumnNotEqualsColumn,
    kColumnNotEqualsValue,
  };
  Kind kind;
  std::size_t left_column;
  std::size_t right_column = 0;  // For column-column kinds.
  Value value;                   // For column-value kinds.
};

class RaExpr {
 public:
  enum class Kind { kRelation, kSelect, kProject, kProduct, kUnion,
                    kDifference };

  virtual ~RaExpr() = default;

  Kind kind() const { return kind_; }
  // Output arity of the expression.
  std::size_t arity() const { return arity_; }

  // --- Factories ---
  // Base relation scan.
  static RaExprPtr Relation(std::string name, std::size_t arity);
  // σ_conditions(child); conditions are conjunctive.
  static RaExprPtr Select(RaExprPtr child, std::vector<RaCondition> conditions);
  // π_columns(child); columns may repeat and reorder.
  static RaExprPtr Project(RaExprPtr child, std::vector<std::size_t> columns);
  // left × right (columns concatenated).
  static RaExprPtr Product(RaExprPtr left, RaExprPtr right);
  // left ∪ right. Precondition: equal arities.
  static RaExprPtr Union(RaExprPtr left, RaExprPtr right);
  // left − right. Precondition: equal arities.
  static RaExprPtr Difference(RaExprPtr left, RaExprPtr right);
  // Convenience: equi-join left ⋈ right on pairs (left column, right
  // column), keeping all columns of both (a σ over ×).
  static RaExprPtr Join(RaExprPtr left, RaExprPtr right,
                        std::vector<std::pair<std::size_t, std::size_t>> on);

  // Direct evaluation over the database (naïve on incomplete inputs).
  // Results are sorted and deduplicated (set semantics).
  std::vector<Tuple> Evaluate(const Database& db) const;

  // Compiles to an equivalent first-order query with output variables in
  // column order. Round-trip guarantee: Evaluate(db) equals the evaluation
  // of ToQuery() on db restricted to adom-tuples; since algebra outputs are
  // always adom values, the two agree exactly.
  Query ToQuery() const;

  // "π_{0,2}(σ_{0=1}(R × S))".
  std::string ToString() const;

  // Accessors for structural inspection.
  const std::string& relation_name() const { return relation_name_; }
  const std::vector<RaCondition>& conditions() const { return conditions_; }
  const std::vector<std::size_t>& projection() const { return projection_; }
  const RaExprPtr& left() const { return children_[0]; }
  const RaExprPtr& right() const { return children_[1]; }

 protected:
  explicit RaExpr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  std::size_t arity_ = 0;
  std::string relation_name_;             // kRelation.
  std::vector<RaCondition> conditions_;   // kSelect.
  std::vector<std::size_t> projection_;   // kProject.
  std::vector<RaExprPtr> children_;       // 1 or 2 children otherwise.
};

}  // namespace zeroone

#endif  // ZEROONE_ALGEBRA_ALGEBRA_H_
