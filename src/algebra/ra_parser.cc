#include "algebra/ra_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace zeroone {

namespace {

class RaParser {
 public:
  RaParser(std::string_view text, const Schema& schema)
      : text_(text), schema_(schema) {}

  StatusOr<RaExprPtr> Parse() {
    StatusOr<RaExprPtr> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipWhitespace();
    if (position_ < text_.size()) {
      return Error("trailing input");
    }
    return expr;
  }

 private:
  void SkipWhitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  Status Error(const std::string& message) {
    return Status::Error("RA parse error at offset ", position_, ": ",
                         message);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    SkipWhitespace();
    if (text_.substr(position_, keyword.size()) != keyword) return false;
    // Keywords must not run into an identifier character.
    std::size_t end = position_ + keyword.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    position_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipWhitespace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> Identifier() {
    SkipWhitespace();
    std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '_')) {
      ++position_;
    }
    if (position_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, position_ - start));
  }

  StatusOr<std::size_t> Number() {
    SkipWhitespace();
    std::size_t start = position_;
    std::size_t value = 0;
    while (position_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[position_]))) {
      value = value * 10 + static_cast<std::size_t>(text_[position_] - '0');
      ++position_;
    }
    if (position_ == start) return Error("expected column number");
    return value;
  }

  StatusOr<RaExprPtr> ParseExpr() {
    StatusOr<RaExprPtr> left = ParseTerm();
    if (!left.ok()) return left;
    while (true) {
      bool is_union = ConsumeKeyword("union");
      bool is_minus = !is_union && ConsumeKeyword("minus");
      if (!is_union && !is_minus) break;
      StatusOr<RaExprPtr> right = ParseTerm();
      if (!right.ok()) return right;
      if ((*left)->arity() != (*right)->arity()) {
        return Error(is_union ? "union arity mismatch"
                              : "difference arity mismatch");
      }
      left = is_union ? RaExpr::Union(*left, *right)
                      : RaExpr::Difference(*left, *right);
    }
    return left;
  }

  StatusOr<RaExprPtr> ParseTerm() {
    StatusOr<RaExprPtr> left = ParseFactor();
    if (!left.ok()) return left;
    while (ConsumeKeyword("times")) {
      StatusOr<RaExprPtr> right = ParseFactor();
      if (!right.ok()) return right;
      left = RaExpr::Product(*left, *right);
    }
    return left;
  }

  StatusOr<RaCondition> ParseCondition(std::size_t arity) {
    ZO_ASSIGN_OR_RETURN(std::size_t left, Number());
    if (left >= arity) return Error("condition column out of range");
    bool not_equals = false;
    SkipWhitespace();
    if (ConsumeChar('!')) {
      not_equals = true;
    }
    if (!ConsumeChar('=')) return Error("expected '=' or '!=' in condition");
    RaCondition condition;
    condition.left_column = left;
    SkipWhitespace();
    char next = position_ < text_.size() ? text_[position_] : '\0';
    if (next == '\'') {
      ++position_;
      std::size_t start = position_;
      while (position_ < text_.size() && text_[position_] != '\'') {
        ++position_;
      }
      if (position_ == text_.size()) return Error("unterminated string");
      condition.value =
          Value::Constant(std::string(text_.substr(start, position_ - start)));
      ++position_;
      condition.kind = not_equals ? RaCondition::Kind::kColumnNotEqualsValue
                                  : RaCondition::Kind::kColumnEqualsValue;
      return condition;
    }
    if (next == '#') {
      ++position_;
      ZO_ASSIGN_OR_RETURN(std::size_t number, Number());
      condition.value = Value::Int(static_cast<std::int64_t>(number));
      condition.kind = not_equals ? RaCondition::Kind::kColumnNotEqualsValue
                                  : RaCondition::Kind::kColumnEqualsValue;
      return condition;
    }
    ZO_ASSIGN_OR_RETURN(std::size_t right, Number());
    if (right >= arity) return Error("condition column out of range");
    condition.right_column = right;
    condition.kind = not_equals ? RaCondition::Kind::kColumnNotEqualsColumn
                                : RaCondition::Kind::kColumnEqualsColumn;
    return condition;
  }

  StatusOr<RaExprPtr> ParseFactor() {
    if (ConsumeChar('(')) {
      StatusOr<RaExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!ConsumeChar(')')) return Error("expected ')'");
      return inner;
    }
    if (ConsumeKeyword("select")) {
      if (!ConsumeChar('(')) return Error("expected '(' after select");
      StatusOr<RaExprPtr> child = ParseExpr();
      if (!child.ok()) return child;
      std::vector<RaCondition> conditions;
      while (ConsumeChar(',')) {
        ZO_ASSIGN_OR_RETURN(RaCondition condition,
                            ParseCondition((*child)->arity()));
        conditions.push_back(condition);
      }
      if (conditions.empty()) return Error("select needs conditions");
      if (!ConsumeChar(')')) return Error("expected ')' closing select");
      return RaExpr::Select(*child, std::move(conditions));
    }
    if (ConsumeKeyword("project")) {
      if (!ConsumeChar('(')) return Error("expected '(' after project");
      StatusOr<RaExprPtr> child = ParseExpr();
      if (!child.ok()) return child;
      std::vector<std::size_t> columns;
      while (ConsumeChar(',')) {
        ZO_ASSIGN_OR_RETURN(std::size_t column, Number());
        if (column >= (*child)->arity()) {
          return Error("projection column out of range");
        }
        columns.push_back(column);
      }
      if (!ConsumeChar(')')) return Error("expected ')' closing project");
      return RaExpr::Project(*child, std::move(columns));
    }
    if (ConsumeKeyword("join")) {
      if (!ConsumeChar('(')) return Error("expected '(' after join");
      StatusOr<RaExprPtr> left = ParseExpr();
      if (!left.ok()) return left;
      if (!ConsumeChar(',')) return Error("expected ',' in join");
      StatusOr<RaExprPtr> right = ParseExpr();
      if (!right.ok()) return right;
      std::vector<std::pair<std::size_t, std::size_t>> on;
      while (ConsumeChar(',')) {
        ZO_ASSIGN_OR_RETURN(std::size_t l, Number());
        if (!ConsumeChar('=')) return Error("expected '=' in join condition");
        ZO_ASSIGN_OR_RETURN(std::size_t r, Number());
        if (l >= (*left)->arity() || r >= (*right)->arity()) {
          return Error("join column out of range");
        }
        on.emplace_back(l, r);
      }
      if (!ConsumeChar(')')) return Error("expected ')' closing join");
      return RaExpr::Join(*left, *right, std::move(on));
    }
    // A base relation.
    ZO_ASSIGN_OR_RETURN(std::string name, Identifier());
    if (!schema_.HasRelation(name)) {
      return Error(StrCat("unknown relation '", name, "'"));
    }
    return RaExpr::Relation(name, schema_.ArityOf(name));
  }

  std::string_view text_;
  const Schema& schema_;
  std::size_t position_ = 0;
};

}  // namespace

StatusOr<RaExprPtr> ParseRaExpr(std::string_view text, const Schema& schema) {
  RaParser parser(text, schema);
  return parser.Parse();
}

}  // namespace zeroone
