#include "algebra/algebra.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace zeroone {

namespace {
struct ConcreteRaExpr : RaExpr {
  explicit ConcreteRaExpr(Kind kind) : RaExpr(kind) {}
};

std::shared_ptr<ConcreteRaExpr> Make(RaExpr::Kind kind) {
  return std::make_shared<ConcreteRaExpr>(kind);
}

// Accessor for mutating the freshly built node before publishing.
struct RaBuilder {
  std::shared_ptr<ConcreteRaExpr> node;
};
}  // namespace

RaExprPtr RaExpr::Relation(std::string name, std::size_t arity) {
  auto node = Make(Kind::kRelation);
  node->relation_name_ = std::move(name);
  node->arity_ = arity;
  return node;
}

RaExprPtr RaExpr::Select(RaExprPtr child,
                         std::vector<RaCondition> conditions) {
  assert(child != nullptr);
  for (const RaCondition& c : conditions) {
    assert(c.left_column < child->arity() && "selection column out of range");
    if (c.kind == RaCondition::Kind::kColumnEqualsColumn ||
        c.kind == RaCondition::Kind::kColumnNotEqualsColumn) {
      assert(c.right_column < child->arity() &&
             "selection column out of range");
    }
    (void)c;
  }
  auto node = Make(Kind::kSelect);
  node->arity_ = child->arity();
  node->conditions_ = std::move(conditions);
  node->children_ = {std::move(child)};
  return node;
}

RaExprPtr RaExpr::Project(RaExprPtr child, std::vector<std::size_t> columns) {
  assert(child != nullptr);
  for (std::size_t c : columns) {
    assert(c < child->arity() && "projection column out of range");
    (void)c;
  }
  auto node = Make(Kind::kProject);
  node->arity_ = columns.size();
  node->projection_ = std::move(columns);
  node->children_ = {std::move(child)};
  return node;
}

RaExprPtr RaExpr::Product(RaExprPtr left, RaExprPtr right) {
  assert(left != nullptr && right != nullptr);
  auto node = Make(Kind::kProduct);
  node->arity_ = left->arity() + right->arity();
  node->children_ = {std::move(left), std::move(right)};
  return node;
}

RaExprPtr RaExpr::Union(RaExprPtr left, RaExprPtr right) {
  assert(left != nullptr && right != nullptr);
  assert(left->arity() == right->arity() && "union arity mismatch");
  auto node = Make(Kind::kUnion);
  node->arity_ = left->arity();
  node->children_ = {std::move(left), std::move(right)};
  return node;
}

RaExprPtr RaExpr::Difference(RaExprPtr left, RaExprPtr right) {
  assert(left != nullptr && right != nullptr);
  assert(left->arity() == right->arity() && "difference arity mismatch");
  auto node = Make(Kind::kDifference);
  node->arity_ = left->arity();
  node->children_ = {std::move(left), std::move(right)};
  return node;
}

RaExprPtr RaExpr::Join(RaExprPtr left, RaExprPtr right,
                       std::vector<std::pair<std::size_t, std::size_t>> on) {
  std::size_t left_arity = left->arity();
  std::vector<RaCondition> conditions;
  conditions.reserve(on.size());
  for (auto [l, r] : on) {
    RaCondition c;
    c.kind = RaCondition::Kind::kColumnEqualsColumn;
    c.left_column = l;
    c.right_column = left_arity + r;
    conditions.push_back(c);
  }
  return Select(Product(std::move(left), std::move(right)),
                std::move(conditions));
}

namespace {

bool ConditionHolds(const RaCondition& c, const Tuple& t) {
  switch (c.kind) {
    case RaCondition::Kind::kColumnEqualsColumn:
      return t[c.left_column] == t[c.right_column];
    case RaCondition::Kind::kColumnEqualsValue:
      return t[c.left_column] == c.value;
    case RaCondition::Kind::kColumnNotEqualsColumn:
      return t[c.left_column] != t[c.right_column];
    case RaCondition::Kind::kColumnNotEqualsValue:
      return t[c.left_column] != c.value;
  }
  return false;
}

}  // namespace

std::vector<Tuple> RaExpr::Evaluate(const Database& db) const {
  std::set<Tuple> result;
  switch (kind_) {
    case Kind::kRelation: {
      if (db.HasRelation(relation_name_)) {
        const zeroone::Relation& rel = db.relation(relation_name_);
        // The declared arity must match the instance.
        assert(rel.arity() == arity_ && "scan arity mismatch");
        for (Relation::Row row : rel) result.insert(row.ToTuple());
      }
      break;
    }
    case Kind::kSelect: {
      for (const Tuple& t : children_[0]->Evaluate(db)) {
        bool keep = true;
        for (const RaCondition& c : conditions_) {
          keep = keep && ConditionHolds(c, t);
        }
        if (keep) result.insert(t);
      }
      break;
    }
    case Kind::kProject: {
      for (const Tuple& t : children_[0]->Evaluate(db)) {
        std::vector<Value> values;
        values.reserve(projection_.size());
        for (std::size_t c : projection_) values.push_back(t[c]);
        result.insert(Tuple(std::move(values)));
      }
      break;
    }
    case Kind::kProduct: {
      std::vector<Tuple> left = children_[0]->Evaluate(db);
      std::vector<Tuple> right = children_[1]->Evaluate(db);
      for (const Tuple& l : left) {
        for (const Tuple& r : right) {
          std::vector<Value> values;
          values.reserve(l.arity() + r.arity());
          values.insert(values.end(), l.begin(), l.end());
          values.insert(values.end(), r.begin(), r.end());
          result.insert(Tuple(std::move(values)));
        }
      }
      break;
    }
    case Kind::kUnion: {
      for (const Tuple& t : children_[0]->Evaluate(db)) result.insert(t);
      for (const Tuple& t : children_[1]->Evaluate(db)) result.insert(t);
      break;
    }
    case Kind::kDifference: {
      std::vector<Tuple> right = children_[1]->Evaluate(db);
      std::set<Tuple> right_set(right.begin(), right.end());
      for (const Tuple& t : children_[0]->Evaluate(db)) {
        if (right_set.count(t) == 0) result.insert(t);
      }
      break;
    }
  }
  return std::vector<Tuple>(result.begin(), result.end());
}

namespace {

// Compilation to FO: returns a formula whose free variables are exactly
// `outputs` (fresh ids drawn from *next_var).
FormulaPtr Compile(const RaExpr& expr, std::vector<std::size_t>* outputs,
                   std::size_t* next_var);

std::vector<std::size_t> FreshVars(std::size_t count, std::size_t* next_var) {
  std::vector<std::size_t> vars;
  vars.reserve(count);
  for (std::size_t i = 0; i < count; ++i) vars.push_back((*next_var)++);
  return vars;
}

// φ with its own outputs, glued to the requested output variables:
// ∃ own ( φ ∧ ⋀ own_i = target_i ).
FormulaPtr GlueOutputs(FormulaPtr formula,
                       const std::vector<std::size_t>& own,
                       const std::vector<std::size_t>& target) {
  std::vector<FormulaPtr> conjuncts = {std::move(formula)};
  for (std::size_t i = 0; i < own.size(); ++i) {
    conjuncts.push_back(Formula::Equals(Term::Variable(own[i]),
                                        Term::Variable(target[i])));
  }
  return Formula::Exists(own, Formula::And(std::move(conjuncts)));
}

FormulaPtr Compile(const RaExpr& expr, std::vector<std::size_t>* outputs,
                   std::size_t* next_var) {
  switch (expr.kind()) {
    case RaExpr::Kind::kRelation: {
      *outputs = FreshVars(expr.arity(), next_var);
      std::vector<Term> terms;
      terms.reserve(outputs->size());
      for (std::size_t v : *outputs) terms.push_back(Term::Variable(v));
      return Formula::Atom(expr.relation_name(), std::move(terms));
    }
    case RaExpr::Kind::kSelect: {
      FormulaPtr child = Compile(*expr.left(), outputs, next_var);
      std::vector<FormulaPtr> conjuncts = {std::move(child)};
      for (const RaCondition& c : expr.conditions()) {
        Term left = Term::Variable((*outputs)[c.left_column]);
        Term right = c.kind == RaCondition::Kind::kColumnEqualsColumn ||
                             c.kind == RaCondition::Kind::kColumnNotEqualsColumn
                         ? Term::Variable((*outputs)[c.right_column])
                         : Term::Val(c.value);
        FormulaPtr equality = Formula::Equals(left, right);
        bool negated = c.kind == RaCondition::Kind::kColumnNotEqualsColumn ||
                       c.kind == RaCondition::Kind::kColumnNotEqualsValue;
        conjuncts.push_back(negated ? Formula::Not(std::move(equality))
                                    : std::move(equality));
      }
      return Formula::And(std::move(conjuncts));
    }
    case RaExpr::Kind::kProject: {
      std::vector<std::size_t> child_outputs;
      FormulaPtr child = Compile(*expr.left(), &child_outputs, next_var);
      // Output i is child column projection[i]; since columns may repeat,
      // glue fresh output variables to the child columns and quantify away
      // the child columns.
      std::vector<std::size_t> fresh = FreshVars(expr.arity(), next_var);
      std::vector<FormulaPtr> conjuncts = {std::move(child)};
      for (std::size_t i = 0; i < expr.projection().size(); ++i) {
        conjuncts.push_back(
            Formula::Equals(Term::Variable(fresh[i]),
                            Term::Variable(child_outputs[expr.projection()[i]])));
      }
      *outputs = fresh;
      return Formula::Exists(child_outputs,
                             Formula::And(std::move(conjuncts)));
    }
    case RaExpr::Kind::kProduct: {
      std::vector<std::size_t> left_outputs;
      std::vector<std::size_t> right_outputs;
      FormulaPtr left = Compile(*expr.left(), &left_outputs, next_var);
      FormulaPtr right = Compile(*expr.right(), &right_outputs, next_var);
      outputs->clear();
      outputs->insert(outputs->end(), left_outputs.begin(),
                      left_outputs.end());
      outputs->insert(outputs->end(), right_outputs.begin(),
                      right_outputs.end());
      return Formula::And(std::move(left), std::move(right));
    }
    case RaExpr::Kind::kUnion:
    case RaExpr::Kind::kDifference: {
      std::vector<std::size_t> left_outputs;
      std::vector<std::size_t> right_outputs;
      FormulaPtr left = Compile(*expr.left(), &left_outputs, next_var);
      FormulaPtr right = Compile(*expr.right(), &right_outputs, next_var);
      // Rebase both sides onto fresh shared output variables.
      std::vector<std::size_t> shared = FreshVars(expr.arity(), next_var);
      FormulaPtr left_glued = GlueOutputs(std::move(left), left_outputs,
                                          shared);
      FormulaPtr right_glued = GlueOutputs(std::move(right), right_outputs,
                                           shared);
      *outputs = shared;
      if (expr.kind() == RaExpr::Kind::kUnion) {
        return Formula::Or(std::move(left_glued), std::move(right_glued));
      }
      return Formula::And(std::move(left_glued),
                          Formula::Not(std::move(right_glued)));
    }
  }
  assert(false && "unreachable");
  return Formula::False();
}

}  // namespace

Query RaExpr::ToQuery() const {
  std::vector<std::size_t> outputs;
  std::size_t next_var = 0;
  FormulaPtr formula = Compile(*this, &outputs, &next_var);
  std::vector<std::string> names(next_var);
  for (std::size_t i = 0; i < next_var; ++i) {
    names[i] = "v" + std::to_string(i);
  }
  return Query("RA", std::move(outputs), std::move(formula),
               std::move(names));
}

std::string RaExpr::ToString() const {
  auto columns = [](const std::vector<std::size_t>& cs) {
    std::string out;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cs[i]);
    }
    return out;
  };
  switch (kind_) {
    case Kind::kRelation:
      return relation_name_;
    case Kind::kSelect: {
      std::string conditions;
      for (std::size_t i = 0; i < conditions_.size(); ++i) {
        const RaCondition& c = conditions_[i];
        if (i > 0) conditions += ",";
        conditions += std::to_string(c.left_column);
        bool negated = c.kind == RaCondition::Kind::kColumnNotEqualsColumn ||
                       c.kind == RaCondition::Kind::kColumnNotEqualsValue;
        conditions += negated ? "≠" : "=";
        if (c.kind == RaCondition::Kind::kColumnEqualsColumn ||
            c.kind == RaCondition::Kind::kColumnNotEqualsColumn) {
          conditions += std::to_string(c.right_column);
        } else {
          conditions += c.value.ToString();
        }
      }
      return "σ_{" + conditions + "}(" + children_[0]->ToString() + ")";
    }
    case Kind::kProject:
      return "π_{" + columns(projection_) + "}(" +
             children_[0]->ToString() + ")";
    case Kind::kProduct:
      return "(" + children_[0]->ToString() + " × " +
             children_[1]->ToString() + ")";
    case Kind::kUnion:
      return "(" + children_[0]->ToString() + " ∪ " +
             children_[1]->ToString() + ")";
    case Kind::kDifference:
      return "(" + children_[0]->ToString() + " − " +
             children_[1]->ToString() + ")";
  }
  return "?";
}

}  // namespace zeroone
