#ifndef ZEROONE_ALGEBRA_RA_PARSER_H_
#define ZEROONE_ALGEBRA_RA_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "algebra/algebra.h"
#include "data/database.h"

namespace zeroone {

// Textual syntax for relational algebra plans:
//
//   expr    := term { ('union' | 'minus') term }
//   term    := factor { 'times' factor }
//   factor  := relation
//            | 'select'  '(' expr ',' condition {',' condition} ')'
//            | 'project' '(' expr ',' number {',' number} ')'
//            | 'join'    '(' expr ',' expr ',' number '=' number
//                            {',' number '=' number} ')'
//            | '(' expr ')'
//   condition := number ('=' | '!=') (number' | value)
//
// Columns are 0-based numbers. In conditions, a bare number on the right
// denotes a *column*; to compare against a constant use a quoted value
// ('abc') or the prefix '#' for numeric constants (#42). Examples:
//
//   project(select(R times S, 1 = 2), 0, 3)
//   select(Orders, 1 = 'widget') minus Shipped
//   join(R, S, 1 = 0)
//
// Relation arities are resolved against the given schema, so the parser
// can validate column indices.
StatusOr<RaExprPtr> ParseRaExpr(std::string_view text, const Schema& schema);

}  // namespace zeroone

#endif  // ZEROONE_ALGEBRA_RA_PARSER_H_
