#include "data/homomorphism.h"

#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

namespace {

// One tuple of `from` viewed as a pattern to embed into `to`.
struct PatternTuple {
  const std::string* relation;
  const Tuple* tuple;
};

std::vector<PatternTuple> PatternsOf(const Database& db) {
  std::vector<PatternTuple> patterns;
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : rel) {
      patterns.push_back(PatternTuple{&name, &t});
    }
  }
  return patterns;
}

// Backtracking embedding of the patterns into `to`, extending `mapping` on
// nulls (constants must match exactly). Calls `on_match` per complete
// homomorphism; on_match returning false stops the search (returns true).
bool Search(const std::vector<PatternTuple>& patterns, std::size_t index,
            const Database& to, std::map<Value, Value>* mapping,
            const std::function<bool(const std::map<Value, Value>&)>& on_match) {
  if (index == patterns.size()) return !on_match(*mapping);
  const PatternTuple& pattern = patterns[index];
  if (!to.HasRelation(*pattern.relation)) return false;
  for (const Tuple& candidate : to.relation(*pattern.relation)) {
    ZO_COUNTER_INC("homomorphism.search_nodes");
    if (candidate.arity() != pattern.tuple->arity()) continue;
    std::vector<Value> newly_bound;
    bool ok = true;
    for (std::size_t i = 0; i < candidate.arity() && ok; ++i) {
      Value v = (*pattern.tuple)[i];
      if (v.is_constant()) {
        ok = v == candidate[i];
        continue;
      }
      auto it = mapping->find(v);
      if (it != mapping->end()) {
        ok = it->second == candidate[i];
      } else {
        mapping->emplace(v, candidate[i]);
        newly_bound.push_back(v);
      }
    }
    if (ok && Search(patterns, index + 1, to, mapping, on_match)) {
      for (Value v : newly_bound) mapping->erase(v);
      return true;
    }
    for (Value v : newly_bound) mapping->erase(v);
  }
  return false;
}

Database ApplyMapping(const Database& db,
                      const std::map<Value, Value>& mapping) {
  Database image(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation& out = image.mutable_relation(name);
    for (const Tuple& tuple : rel) {
      std::vector<Value> values;
      values.reserve(tuple.arity());
      for (Value v : tuple) {
        auto it = mapping.find(v);
        values.push_back(it == mapping.end() ? v : it->second);
      }
      out.Insert(Tuple(std::move(values)));
    }
  }
  return image;
}

}  // namespace

std::optional<std::map<Value, Value>> FindHomomorphism(const Database& from,
                                                       const Database& to) {
  ZO_TRACE_SPAN("FindHomomorphism");
  ZO_COUNTER_INC("homomorphism.searches");
  std::vector<PatternTuple> patterns = PatternsOf(from);
  std::map<Value, Value> mapping;
  std::optional<std::map<Value, Value>> found;
  Search(patterns, 0, to, &mapping,
         [&](const std::map<Value, Value>& h) {
           found = h;
           return false;  // First homomorphism suffices.
         });
  return found;
}

bool AreHomomorphicallyEquivalent(const Database& a, const Database& b) {
  return FindHomomorphism(a, b).has_value() &&
         FindHomomorphism(b, a).has_value();
}

Database ComputeCore(const Database& db) {
  ZO_TRACE_SPAN("ComputeCore");
  Database current = db;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    ZO_COUNTER_INC("homomorphism.core_folding_rounds");
    // Search for an endomorphism whose image is a proper sub-instance.
    std::vector<PatternTuple> patterns = PatternsOf(current);
    std::map<Value, Value> mapping;
    Database smaller;
    Search(patterns, 0, current, &mapping,
           [&](const std::map<Value, Value>& h) {
             Database image = ApplyMapping(current, h);
             if (image != current) {
               smaller = std::move(image);
               reduced = true;
               return false;  // Stop: fold and restart.
             }
             return true;  // An automorphism; keep searching.
           });
    if (reduced) current = std::move(smaller);
  }
  return current;
}

}  // namespace zeroone
