#include "data/homomorphism.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace zeroone {

namespace {

// One tuple of `from` viewed as a pattern to embed into `to`.
struct PatternTuple {
  const Relation* target;  // The same-name relation in `to`, if any.
  Relation::Row row;
};

std::vector<PatternTuple> PatternsOf(const Database& from,
                                     const Database& to) {
  std::vector<PatternTuple> patterns;
  for (const auto& [name, rel] : from.relations()) {
    const Relation* target =
        to.HasRelation(name) ? &to.relation(name) : nullptr;
    for (std::size_t i = 0; i < rel.size(); ++i) {
      patterns.push_back(PatternTuple{target, rel.row(i)});
    }
  }
  return patterns;
}

// Backtracking embedding of the tuples of `from` into `to`, extending a
// null mapping (constants must match exactly). The mapping is a flat array
// keyed by null id — nulls are densely interned, so this replaces the
// historical std::map<Value, Value> with O(1) unordered lookups.
//
// In indexed mode, patterns are chosen most-constrained-first (most columns
// already fixed by constants or bound nulls) and candidates come from a
// hash probe on those columns. In scan mode the search replays the
// historical algorithm exactly: static pattern order, full candidate scans.
class Searcher {
 public:
  using MatchFn = std::function<bool(const std::map<Value, Value>&)>;

  Searcher(const Database& from, const Database& to, const MatchFn& on_match)
      : patterns_(PatternsOf(from, to)),
        used_(patterns_.size(), 0),
        from_nulls_(from.Nulls()),
        on_match_(on_match),
        indexed_(storage_mode() == StorageMode::kIndexed) {
    std::uint32_t slots = 0;
    for (Value null : from_nulls_) slots = std::max(slots, null.id() + 1);
    bound_.assign(slots, 0);
    image_.resize(slots);
  }

  // Per-worker clone for the parallel root sweep: copies the (all-unbound)
  // search state, substituting the worker's wrapped match callback.
  Searcher(const Searcher& other, const MatchFn& on_match)
      : patterns_(other.patterns_),
        used_(other.used_),
        from_nulls_(other.from_nulls_),
        on_match_(on_match),
        indexed_(other.indexed_),
        bound_(other.bound_),
        image_(other.image_) {}

  // Runs the search; calls on_match per complete homomorphism. on_match
  // returning false stops the search; Run then returns true.
  //
  // The root level (depth 0) is the parallel axis: its candidate rows are
  // materialized once and swept in morsels, each worker running the full
  // backtracking search under its fixed root candidate. First-match
  // semantics stay deterministic via a minimal-stop-index protocol —
  // on_match results are serialized under a mutex, a match at candidate
  // index i that asks to stop publishes i as the stop bound, matches at
  // indices >= the bound are suppressed, and lower indices keep exploring
  // (and may lower the bound further). The surviving stop is the one the
  // serial left-to-right sweep would have reached first, so FindHomomorphism
  // and ComputeCore return byte-identical results at any thread count; the
  // published bound doubles as the early-exit broadcast that drains the
  // remaining morsels. docs/parallelism.md has the full argument.
  bool Run() {
    if (patterns_.empty()) return SearchStep(0);
    std::size_t root = indexed_ ? PickMostConstrained() : 0;
    const PatternTuple& pattern = patterns_[root];
    if (pattern.target == nullptr) return false;
    const Relation& target = *pattern.target;
    if (target.arity() != pattern.row.arity()) return false;

    // Root candidate positions, mirroring SearchStep's probe-or-scan (at
    // depth 0 only constants can be fixed).
    Relation::Mask mask = 0;
    std::vector<Value> key;
    if (indexed_ && target.arity() > 0 &&
        target.arity() <= Relation::kMaxIndexedColumns) {
      for (std::size_t i = 0; i < pattern.row.arity(); ++i) {
        Value v = pattern.row[i];
        if (v.is_constant()) {
          mask |= Relation::Mask{1} << i;
          key.push_back(v);
        }
      }
    }
    std::vector<std::uint32_t> positions;
    if (mask != 0) {
      Relation::RowIdSpan span = target.Probe(mask, key);
      positions.assign(span.begin(), span.end());
    } else {
      positions.resize(target.size());
      std::iota(positions.begin(), positions.end(), 0);
    }

    par::ForPlan morsels =
        par::PlanMorsels(positions.size(), par::ForOptions{});
    if (morsels.workers <= 1) return SearchStep(0);

    std::mutex mutex;
    // First candidate index whose match stopped the search; indices at or
    // beyond it are settled and need no further exploration.
    std::atomic<std::size_t> stop_before{positions.size()};
    bool stopped = false;
    std::vector<MatchFn> wrappers(morsels.workers);
    std::vector<std::unique_ptr<Searcher>> workers(morsels.workers);
    std::vector<std::size_t> current(morsels.workers, 0);
    par::ParallelFor(morsels, [&](const par::Morsel& m, std::size_t w) {
      if (workers[w] == nullptr) {
        wrappers[w] = [&, w](const std::map<Value, Value>& h) {
          std::lock_guard<std::mutex> lock(mutex);
          if (current[w] >= stop_before.load(std::memory_order_relaxed)) {
            return false;  // A lower index already stopped the search.
          }
          bool keep = on_match_(h);
          if (!keep) {
            stop_before.store(current[w], std::memory_order_release);
            stopped = true;
          }
          return keep;
        };
        workers[w] = std::unique_ptr<Searcher>(
            new Searcher(*this, wrappers[w]));
      }
      for (std::size_t i = m.begin; i < m.end; ++i) {
        if (CancellationRequested()) return false;
        // Morsel indices ascend, so the first settled index drains the
        // rest of the morsel too.
        if (i >= stop_before.load(std::memory_order_acquire)) break;
        current[w] = i;
        workers[w]->RunRooted(root, target.row(positions[i]));
      }
      return true;
    });
    return stopped;
  }

 private:
  // Runs the search with pattern `root` pre-assigned to `candidate` (the
  // parallel driver's per-root-candidate entry). Returns true iff on_match
  // requested a stop within this subtree.
  bool RunRooted(std::size_t root, Relation::Row candidate) {
    used_[root] = 1;
    bool stop = TryCandidate(patterns_[root], candidate, 0);
    used_[root] = 0;
    return stop;
  }

  bool Bound(Value null) const { return bound_[null.id()] != 0; }

  // The unused pattern with the most columns already fixed (constants or
  // bound nulls); ties break toward the original order.
  std::size_t PickMostConstrained() const {
    std::size_t best = patterns_.size();
    std::size_t best_fixed = 0;
    for (std::size_t p = 0; p < patterns_.size(); ++p) {
      if (used_[p]) continue;
      std::size_t fixed = 0;
      for (Value v : patterns_[p].row) {
        if (v.is_constant() || Bound(v)) ++fixed;
      }
      if (best == patterns_.size() || fixed > best_fixed) {
        best = p;
        best_fixed = fixed;
      }
    }
    return best;
  }

  // Tries one candidate row for `pattern`; recurses on success. Returns
  // true iff the whole search should stop.
  bool TryCandidate(const PatternTuple& pattern, Relation::Row candidate,
                    std::size_t depth) {
    ZO_COUNTER_INC("homomorphism.search_nodes");
    // Deterministic fault inside the search (the standing datalog/hom fault
    // coverage item): cancels the current token, which stops every worker's
    // search and drives the caller's discard path.
    if (ZO_FAULT_POINT("hom.search.cancel")) {
      if (CancelToken* token = CurrentCancelToken()) token->Cancel();
    }
    if (CancellationRequested()) return true;  // Stop; caller discards.
    std::vector<Value> newly_bound;
    bool ok = true;
    for (std::size_t i = 0; i < candidate.arity() && ok; ++i) {
      Value v = pattern.row[i];
      if (v.is_constant()) {
        ok = v == candidate[i];
        continue;
      }
      if (Bound(v)) {
        ok = image_[v.id()] == candidate[i];
      } else {
        bound_[v.id()] = 1;
        image_[v.id()] = candidate[i];
        newly_bound.push_back(v);
      }
    }
    bool stop = ok && SearchStep(depth + 1);
    for (Value v : newly_bound) bound_[v.id()] = 0;
    return stop;
  }

  bool SearchStep(std::size_t depth) {
    if (depth == patterns_.size()) {
      std::map<Value, Value> mapping;
      for (Value null : from_nulls_) {
        if (Bound(null)) mapping.emplace(null, image_[null.id()]);
      }
      return !on_match_(mapping);
    }
    std::size_t p = indexed_ ? PickMostConstrained() : depth;
    const PatternTuple& pattern = patterns_[p];
    if (pattern.target == nullptr) return false;
    const Relation& target = *pattern.target;
    if (target.arity() != pattern.row.arity()) return false;

    used_[p] = 1;
    bool stop = false;
    Relation::Mask mask = 0;
    std::vector<Value> key;
    if (indexed_ && target.arity() > 0 &&
        target.arity() <= Relation::kMaxIndexedColumns) {
      for (std::size_t i = 0; i < pattern.row.arity(); ++i) {
        Value v = pattern.row[i];
        if (v.is_constant()) {
          mask |= Relation::Mask{1} << i;
          key.push_back(v);
        } else if (Bound(v)) {
          mask |= Relation::Mask{1} << i;
          key.push_back(image_[v.id()]);
        }
      }
    }
    if (mask != 0) {
      for (std::uint32_t pos : target.Probe(mask, key)) {
        if (TryCandidate(pattern, target.row(pos), depth)) {
          stop = true;
          break;
        }
      }
    } else {
      for (std::size_t pos = 0; pos < target.size(); ++pos) {
        if (TryCandidate(pattern, target.row(pos), depth)) {
          stop = true;
          break;
        }
      }
    }
    used_[p] = 0;
    return stop;
  }

  const std::vector<PatternTuple> patterns_;
  std::vector<char> used_;
  const std::vector<Value> from_nulls_;
  const MatchFn& on_match_;
  const bool indexed_;
  // Flat mapping keyed by null id: image_[id] is meaningful iff bound_[id].
  std::vector<char> bound_;
  std::vector<Value> image_;
};

Database ApplyMapping(const Database& db,
                      const std::map<Value, Value>& mapping) {
  Database image(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        auto it = mapping.find(tuple[i]);
        values[i] = it == mapping.end() ? tuple[i] : it->second;
      }
      out.AddRow(values.data());
    }
    image.mutable_relation(name) = std::move(out).Build();
  }
  return image;
}

}  // namespace

std::optional<std::map<Value, Value>> FindHomomorphism(const Database& from,
                                                       const Database& to) {
  ZO_TRACE_SPAN("FindHomomorphism");
  ZO_COUNTER_INC("homomorphism.searches");
  std::optional<std::map<Value, Value>> found;
  Searcher::MatchFn on_match = [&](const std::map<Value, Value>& h) {
    found = h;
    return false;  // First homomorphism suffices.
  };
  Searcher(from, to, on_match).Run();
  return found;
}

bool AreHomomorphicallyEquivalent(const Database& a, const Database& b) {
  return FindHomomorphism(a, b).has_value() &&
         FindHomomorphism(b, a).has_value();
}

Database ComputeCore(const Database& db) {
  ZO_TRACE_SPAN("ComputeCore");
  Database current = db;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    ZO_COUNTER_INC("homomorphism.core_folding_rounds");
    // Search for an endomorphism whose image is a proper sub-instance.
    Database smaller;
    Searcher::MatchFn on_match = [&](const std::map<Value, Value>& h) {
      Database image = ApplyMapping(current, h);
      if (image != current) {
        smaller = std::move(image);
        reduced = true;
        return false;  // Stop: fold and restart.
      }
      return true;  // An automorphism; keep searching.
    };
    Searcher(current, current, on_match).Run();
    if (reduced) current = std::move(smaller);
  }
  return current;
}

}  // namespace zeroone
