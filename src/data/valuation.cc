#include "data/valuation.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

#include "common/cancel.h"
#include "fault/fault.h"

namespace zeroone {

void Valuation::Bind(Value null, Value constant) {
  assert(null.is_null() && "valuation domain must be nulls");
  assert(constant.is_constant() && "valuation range must be constants");
  assignment_[null] = constant;
}

bool Valuation::IsBound(Value null) const {
  return assignment_.count(null) != 0;
}

Value Valuation::ValueOf(Value null) const {
  auto it = assignment_.find(null);
  assert(it != assignment_.end() && "null not bound by valuation");
  return it->second;
}

Value Valuation::Apply(Value value) const {
  if (!value.is_null()) return value;
  auto it = assignment_.find(value);
  return it == assignment_.end() ? value : it->second;
}

Tuple Valuation::Apply(const Tuple& tuple) const {
  std::vector<Value> values;
  values.reserve(tuple.arity());
  for (Value v : tuple) values.push_back(Apply(v));
  return Tuple(std::move(values));
}

Database Valuation::Apply(const Database& db) const {
  Database result(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = Apply(tuple[i]);
      }
      out.AddRow(values.data());
    }
    result.mutable_relation(name) = std::move(out).Build();
  }
  return result;
}

std::vector<Value> Valuation::Range() const {
  std::set<Value> range;
  for (const auto& [null, constant] : assignment_) range.insert(constant);
  return std::vector<Value>(range.begin(), range.end());
}

bool Valuation::IsBijectiveAvoiding(const std::vector<Value>& forbidden) const {
  std::set<Value> seen;
  for (const auto& [null, constant] : assignment_) {
    if (!seen.insert(constant).second) return false;  // Not injective.
    if (std::find(forbidden.begin(), forbidden.end(), constant) !=
        forbidden.end()) {
      return false;
    }
  }
  return true;
}

std::string Valuation::ToString() const {
  std::string result = "{";
  bool first = true;
  for (const auto& [null, constant] : assignment_) {
    if (!first) result += ", ";
    first = false;
    result += null.ToString() + " ↦ " + constant.ToString();
  }
  result += "}";
  return result;
}

std::ostream& operator<<(std::ostream& os, const Valuation& valuation) {
  return os << valuation.ToString();
}

Valuation MakeBijectiveValuation(const Database& db) {
  Valuation v;
  for (Value null : db.Nulls()) v.Bind(null, Value::FreshConstant());
  return v;
}

bool ForEachValuationUntil(
    const std::vector<Value>& nulls, const std::vector<Value>& domain,
    const std::function<bool(const Valuation&)>& visitor) {
  if (nulls.empty()) {
    return visitor(Valuation());
  }
  assert(!domain.empty() && "cannot valuate nulls over an empty domain");
  // Odometer over domain indices, least significant digit first.
  std::vector<std::size_t> indices(nulls.size(), 0);
  Valuation valuation;
  for (std::size_t i = 0; i < nulls.size(); ++i) {
    valuation.Bind(nulls[i], domain[0]);
  }
  while (true) {
    // Cooperative cancellation: a cancelled enumeration stops early and
    // reports false; the token's installer discards the partial result.
    if (CancellationRequested()) return false;
    if (ZO_FAULT_POINT("core.valuation.cancel")) {
      // Simulated mid-enumeration failure: cancel through the installed
      // token so the existing discard-partial-result machinery fires (the
      // serving layer answers DEADLINE_EXCEEDED). Without a token this is
      // a plain early stop, which every caller already tolerates.
      if (CancelToken* token = CurrentCancelToken()) token->Cancel();
      return false;
    }
    if (!visitor(valuation)) return false;
    std::size_t position = 0;
    while (position < indices.size()) {
      if (++indices[position] < domain.size()) {
        valuation.Bind(nulls[position], domain[indices[position]]);
        break;
      }
      indices[position] = 0;
      valuation.Bind(nulls[position], domain[0]);
      ++position;
    }
    if (position == indices.size()) return true;  // Odometer wrapped.
  }
}

void ForEachValuation(const std::vector<Value>& nulls,
                      const std::vector<Value>& domain,
                      const std::function<void(const Valuation&)>& visitor) {
  ForEachValuationUntil(nulls, domain, [&](const Valuation& v) {
    visitor(v);
    return true;
  });
}

}  // namespace zeroone
