#ifndef ZEROONE_DATA_VALUATION_H_
#define ZEROONE_DATA_VALUATION_H_

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/tuple.h"
#include "data/value.h"

namespace zeroone {

// A valuation v : Null(D) → Const assigning constant values to nulls
// (Section 2). Applying a valuation to tuples and databases replaces each
// null ⊥ in its domain by v(⊥); nulls outside the domain are left in place
// (the paper's v(D) always has total domain, but partial application is
// needed by the Theorem 8 algorithm, where v′ is defined only on D′).
class Valuation {
 public:
  Valuation() = default;

  // Binds v(null) = constant. Precondition: null.is_null() and
  // constant.is_constant(). Rebinding an already-bound null overwrites.
  void Bind(Value null, Value constant);

  bool IsBound(Value null) const;
  // Precondition: IsBound(null).
  Value ValueOf(Value null) const;

  std::size_t size() const { return assignment_.size(); }
  const std::map<Value, Value>& assignment() const { return assignment_; }

  // v(x): the bound constant for a bound null; x itself otherwise
  // (constants map to themselves).
  Value Apply(Value value) const;
  Tuple Apply(const Tuple& tuple) const;
  Database Apply(const Database& db) const;

  // range(v): the distinct constants in the image, in deterministic order.
  std::vector<Value> Range() const;

  // True iff v is injective and its range avoids all of `forbidden`
  // (Definition 2: C-bijective when `forbidden` is Const(D) ∪ C).
  bool IsBijectiveAvoiding(const std::vector<Value>& forbidden) const;

  // "{⊥1 ↦ a, ⊥2 ↦ b}".
  std::string ToString() const;

  friend bool operator==(const Valuation& a, const Valuation& b) {
    return a.assignment_ == b.assignment_;
  }
  friend bool operator<(const Valuation& a, const Valuation& b) {
    return a.assignment_ < b.assignment_;
  }

 private:
  std::map<Value, Value> assignment_;
};

std::ostream& operator<<(std::ostream& os, const Valuation& valuation);

// Constructs a C-bijective valuation for D (Definition 2): assigns to each
// null of D a globally fresh constant, so the range is automatically
// disjoint from Const(D) and any C. Used to implement naïve evaluation
// (Definition 3).
Valuation MakeBijectiveValuation(const Database& db);

// Enumerates V^k(D) restricted to the given nulls: every total map from
// `nulls` into `domain` (|domain|^|nulls| valuations). The visited object is
// reused between calls; copy it if kept. Enumeration order is the odometer
// order over `domain` positions, deterministic.
void ForEachValuation(const std::vector<Value>& nulls,
                      const std::vector<Value>& domain,
                      const std::function<void(const Valuation&)>& visitor);

// Like ForEachValuation but stops early when the visitor returns false.
// Returns false iff some visitor call returned false.
bool ForEachValuationUntil(const std::vector<Value>& nulls,
                           const std::vector<Value>& domain,
                           const std::function<bool(const Valuation&)>& visitor);

}  // namespace zeroone

#endif  // ZEROONE_DATA_VALUATION_H_
