#ifndef ZEROONE_DATA_RELATION_H_
#define ZEROONE_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/tuple.h"

namespace zeroone {

// Which storage strategy the evaluators use on top of Relation. kIndexed is
// the production path (hash probes on bound columns); kScan preserves the
// original full-scan algorithms and exists purely as a differential-testing
// reference. Selected once from the ZEROONE_STORAGE environment variable
// ("scan" picks the reference path), overridable in-process for tests.
enum class StorageMode { kIndexed, kScan };

// The process-wide storage mode (env default, or the last SetStorageMode).
StorageMode storage_mode();
// Overrides the storage mode; used by differential tests and benches that
// compare both paths inside one process. Not thread-safe against concurrent
// evaluation — call between evaluations only.
void SetStorageMode(StorageMode mode);

// Cheap cardinality statistics of one relation, used by the query planner
// (src/plan) to cost join and atom orders. `distinct_per_column[c]` is the
// exact number of distinct values in column c (cheap to maintain at our
// scales; a sketch could replace it without changing the interface).
struct RelationStats {
  std::size_t rows = 0;
  std::vector<std::size_t> distinct_per_column;
};

// A (possibly incomplete) relation instance: a finite set of k-ary tuples
// over Const ∪ Null.
//
// Storage layout: tuples live in one contiguous arity-strided Value arena
// (row r occupies arena_[r*arity, (r+1)*arity)), appended in insertion
// order and never moved. A maintained permutation `sorted_` lists row ids
// in lexicographic content order, so iteration, ToString, operator== and
// operator< are deterministic and identical to the historical
// sorted-vector-of-Tuple representation. A Relation is a set in the
// mathematical sense: duplicate inserts are dropped.
//
// Probe API: evaluators ask for the rows matching fixed values on a set of
// columns via Probe(mask, key). Hash indexes are built lazily per column
// mask, cached, and invalidated by any mutation. Building is guarded by a
// mutex so concurrent read-only evaluations (the svc layer runs queries on
// one session under a shared lock) may race to build the same index safely;
// mutations require exclusive ownership, as with any non-const method.
class Relation {
 public:
  // Bitmask of bound columns: bit i set means column i is fixed. Indexable
  // arities are capped at 64 columns; evaluators fall back to scans beyond
  // that (no workload in this repo comes close).
  using Mask = std::uint64_t;
  static constexpr std::size_t kMaxIndexedColumns = 64;

  // A borrowed, non-owning view of one row in the arena. Valid until the
  // next mutation of (or assignment to) the owning Relation. Deliberately
  // not implicitly convertible to Tuple: materializing is a copy and must
  // be visible (ToTuple) at the call site.
  class Row {
   public:
    Row() = default;
    Row(const Value* data, std::size_t arity) : data_(data), arity_(arity) {}

    std::size_t arity() const { return arity_; }
    std::size_t size() const { return arity_; }
    Value operator[](std::size_t i) const { return data_[i]; }
    const Value* data() const { return data_; }
    const Value* begin() const { return data_; }
    const Value* end() const { return data_ + arity_; }

    Tuple ToTuple() const {
      return Tuple(std::vector<Value>(data_, data_ + arity_));
    }
    // "(a, b, ⊥1)", matching Tuple::ToString.
    std::string ToString() const;

    // Content comparison (same semantics as comparing the Tuples).
    friend bool operator==(Row a, Row b) {
      if (a.arity_ != b.arity_) return false;
      for (std::size_t i = 0; i < a.arity_; ++i) {
        if (a.data_[i] != b.data_[i]) return false;
      }
      return true;
    }
    friend bool operator!=(Row a, Row b) { return !(a == b); }
    friend bool operator<(Row a, Row b);

   private:
    const Value* data_ = nullptr;
    std::size_t arity_ = 0;
  };

  // Forward iterator over rows in sorted (deterministic) order.
  class const_iterator {
   public:
    using value_type = Row;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const Relation* rel, std::size_t pos)
        : rel_(rel), pos_(pos) {}

    Row operator*() const { return rel_->row(pos_); }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++pos_;
      return old;
    }
    friend bool operator==(const_iterator a, const_iterator b) {
      return a.rel_ == b.rel_ && a.pos_ == b.pos_;
    }
    friend bool operator!=(const_iterator a, const_iterator b) {
      return !(a == b);
    }

   private:
    const Relation* rel_ = nullptr;
    std::size_t pos_ = 0;
  };

  // The row ids (ascending sorted positions, usable with row()) matching a
  // probe. Borrowed from the index; valid until the next mutation.
  class RowIdSpan {
   public:
    RowIdSpan() = default;
    RowIdSpan(const std::uint32_t* data, std::size_t count)
        : data_(data), count_(count) {}

    const std::uint32_t* begin() const { return data_; }
    const std::uint32_t* end() const { return data_ + count_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

   private:
    const std::uint32_t* data_ = nullptr;
    std::size_t count_ = 0;
  };

  // Accumulates rows and produces a sorted, deduplicated Relation with one
  // sort at Build time. Use for bulk loads (I/O, snapshots, valuation
  // images, chase rebuilds) instead of per-tuple Insert.
  class Builder {
   public:
    Builder(std::string name, std::size_t arity)
        : name_(std::move(name)), arity_(arity) {}

    void Add(const Tuple& tuple);
    void Add(std::initializer_list<Value> values);
    // Appends `arity()` values starting at `values`.
    void AddRow(const Value* values);
    std::size_t arity() const { return arity_; }

    Relation Build() &&;

   private:
    std::string name_;
    std::size_t arity_;
    std::size_t rows_ = 0;
    std::vector<Value> arena_;
  };

  // Constructors are out of line: inline definitions would instantiate the
  // index map's destructor against the incomplete Index type.
  Relation();
  Relation(std::string name, std::size_t arity);

  ~Relation();

  // Copies carry the data but not the cached indexes (rebuilt lazily).
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const std::string& name() const { return name_; }
  std::size_t arity() const { return arity_; }
  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  // Inserts a tuple (idempotent). Precondition: tuple.arity() == arity().
  void Insert(const Tuple& tuple);
  void Insert(std::initializer_list<Value> values);
  // Inserts the row of `arity()` values starting at `values`. The pointer
  // may alias this relation's own arena.
  void InsertRow(const Value* values);
  // Bulk insert: append everything, then sort + dedup once. Equivalent to
  // inserting each tuple individually, without the quadratic memmove cost.
  void InsertBatch(const std::vector<Tuple>& tuples);
  // Bulk insert of every row of `other` (same arity required).
  void InsertBatch(const Relation& other);

  bool Contains(const Tuple& tuple) const;
  // Allocation-free membership probe over `arity()` values.
  bool Contains(const Value* values) const;

  // The i-th row in sorted (iteration) order, 0 <= i < size().
  Row row(std::size_t i) const;
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  // Materializes all rows as Tuples, in iteration order.
  std::vector<Tuple> Tuples() const;

  // Rows whose columns selected by `mask` equal `key`, where `key` lists
  // the fixed values in ascending column order. Builds (and caches) a hash
  // index for `mask` on first use; any mutation invalidates all indexes.
  // Preconditions: mask != 0, mask only covers existing columns, and
  // key.size() == popcount(mask).
  RowIdSpan Probe(Mask mask, const std::vector<Value>& key) const;

  // The mask selecting exactly `columns` (each < arity, < 64).
  static Mask MaskOfColumns(const std::vector<std::size_t>& columns);

  // Cardinality statistics for the planner. Computed lazily, cached in the
  // arena beside the hash indexes, and invalidated by the same mutations
  // that invalidate them, so repeated planning against an unchanged
  // relation is a mutex acquisition plus a small copy.
  RelationStats Stats() const;

  // "R = {(1, ⊥1), (2, 2)}".
  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b);
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }
  // Lexicographic on (name, arity, tuple sequence); enables ordered sets of
  // relations and databases.
  friend bool operator<(const Relation& a, const Relation& b);

 private:
  struct Index;

  // First sorted position whose row compares >= the given values.
  std::size_t LowerBound(const Value* values) const;
  // Pointer to the start of arena row `id` (an arena row id, not a sorted
  // position).
  const Value* RowData(std::uint32_t id) const {
    return arena_.data() + static_cast<std::size_t>(id) * arity_;
  }
  void InvalidateIndexes();
  // Merges `rows` sorted, deduplicated, not-yet-present rows (back to back
  // in `fresh`) into the arena and the sorted permutation in one pass.
  void MergeFreshRows(const std::vector<Value>& fresh, std::size_t rows);
  // Sorts + dedups arena rows in place and resets sorted_ to the identity
  // permutation. Shared by InsertBatch and Builder::Build.
  static void Compact(std::size_t arity, std::vector<Value>& arena,
                      std::size_t rows, std::vector<std::uint32_t>& sorted);

  std::string name_;
  std::size_t arity_ = 0;
  // Row r (an arena id) occupies arena_[r*arity_, (r+1)*arity_). For 0-ary
  // relations the arena stays empty; sorted_ alone carries the row count.
  std::vector<Value> arena_;
  // Permutation of arena row ids in lexicographic content order. Size of
  // this vector == number of rows.
  std::vector<std::uint32_t> sorted_;
  // Lazily built per-mask hash indexes. The mutex serializes concurrent
  // lazy builds from const readers; mutations (which clear the cache) are
  // already exclusive by the usual const-correctness contract.
  mutable std::mutex index_mutex_;
  mutable std::map<Mask, std::unique_ptr<Index>> indexes_;
  // Lazily computed Stats() snapshot; shares the index cache's lifecycle.
  mutable std::shared_ptr<const RelationStats> stats_;
};

std::ostream& operator<<(std::ostream& os, const Relation& relation);

}  // namespace zeroone

#endif  // ZEROONE_DATA_RELATION_H_
