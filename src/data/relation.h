#ifndef ZEROONE_DATA_RELATION_H_
#define ZEROONE_DATA_RELATION_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/tuple.h"

namespace zeroone {

// A (possibly incomplete) relation instance: a finite set of k-ary tuples
// over Const ∪ Null. Tuples are kept sorted and deduplicated, so a Relation
// is a set in the mathematical sense and iteration order is deterministic.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Inserts a tuple (idempotent). Precondition: tuple.arity() == arity().
  void Insert(const Tuple& tuple);
  void Insert(std::initializer_list<Value> values) { Insert(Tuple(values)); }

  bool Contains(const Tuple& tuple) const;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  // "R = {(1, ⊥1), (2, 2)}".
  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.name_ == b.name_ && a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }
  // Lexicographic on (name, arity, tuples); enables ordered sets of
  // relations and databases.
  friend bool operator<(const Relation& a, const Relation& b) {
    if (a.name_ != b.name_) return a.name_ < b.name_;
    if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
    return a.tuples_ < b.tuples_;
  }

 private:
  std::string name_;
  std::size_t arity_ = 0;
  std::vector<Tuple> tuples_;  // Invariant: sorted, no duplicates.
};

std::ostream& operator<<(std::ostream& os, const Relation& relation);

}  // namespace zeroone

#endif  // ZEROONE_DATA_RELATION_H_
