#ifndef ZEROONE_DATA_TUPLE_H_
#define ZEROONE_DATA_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/value.h"

namespace zeroone {

// A database tuple over Const ∪ Null. The empty tuple () is the single
// 0-ary tuple and doubles as `true` for Boolean queries (Section 2).
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  std::size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Value operator[](std::size_t i) const { return values_[i]; }
  Value& operator[](std::size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  void push_back(Value v) { values_.push_back(v); }

  // True if no component is a null.
  bool IsComplete() const;
  // The nulls occurring in the tuple, deduplicated, in first-occurrence order.
  std::vector<Value> Nulls() const;

  // "(a, b, ⊥1)"; the empty tuple prints as "()".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

}  // namespace zeroone

#endif  // ZEROONE_DATA_TUPLE_H_
