#include "data/database.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

namespace zeroone {

void Schema::AddRelation(const std::string& name, std::size_t arity) {
  auto [it, inserted] = arities_.emplace(name, arity);
  assert((inserted || it->second == arity) &&
         "relation redeclared with a different arity");
  (void)it;
  (void)inserted;
}

bool Schema::HasRelation(const std::string& name) const {
  return arities_.count(name) != 0;
}

std::size_t Schema::ArityOf(const std::string& name) const {
  auto it = arities_.find(name);
  assert(it != arities_.end() && "unknown relation");
  return it->second;
}

std::vector<std::string> Schema::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(arities_.size());
  for (const auto& [name, arity] : arities_) names.push_back(name);
  return names;
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  for (const std::string& name : schema_.RelationNames()) {
    relations_.emplace(name, Relation(name, schema_.ArityOf(name)));
  }
}

Relation& Database::AddRelation(const std::string& name, std::size_t arity) {
  schema_.AddRelation(name, arity);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Relation(name, arity)).first;
  }
  return it->second;
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) != 0;
}

const Relation& Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  assert(it != relations_.end() && "unknown relation");
  return it->second;
}

Relation& Database::mutable_relation(const std::string& name) {
  auto it = relations_.find(name);
  assert(it != relations_.end() && "unknown relation");
  return it->second;
}

std::size_t Database::TupleCount() const {
  std::size_t count = 0;
  for (const auto& [name, rel] : relations_) count += rel.size();
  return count;
}

namespace {
std::vector<Value> CollectValues(const Database& db,
                                 Value::Kind kind_filter) {
  std::set<Value> seen;
  std::vector<Value> result;
  for (const auto& [name, rel] : db.relations()) {
    for (Relation::Row tuple : rel) {
      for (Value v : tuple) {
        if (v.kind() != kind_filter) continue;
        if (seen.insert(v).second) result.push_back(v);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}
}  // namespace

std::vector<Value> Database::Constants() const {
  return CollectValues(*this, Value::Kind::kConstant);
}

std::vector<Value> Database::Nulls() const {
  return CollectValues(*this, Value::Kind::kNull);
}

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> domain = Constants();
  std::vector<Value> nulls = Nulls();
  domain.insert(domain.end(), nulls.begin(), nulls.end());
  return domain;
}

bool Database::IsComplete() const { return Nulls().empty(); }

std::string Database::ToString() const {
  std::string result;
  for (const auto& [name, rel] : relations_) {
    if (!result.empty()) result += "\n";
    result += rel.ToString();
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Database& db) {
  return os << db.ToString();
}

}  // namespace zeroone
