#ifndef ZEROONE_DATA_IO_H_
#define ZEROONE_DATA_IO_H_

#include <string_view>

#include "common/status.h"
#include "data/database.h"
#include "data/tuple.h"

namespace zeroone {

// Text format for incomplete databases, one relation per statement:
//
//   R(2) = { (1, _1), (2, 2) }
//   U(1) = { (1), (2), (3) }
//   S(2) = {}
//
// Values: numbers and bare identifiers are constants; `_label` (or the
// unicode form ⊥label) is the marked null with that label; single-quoted
// strings are constants with arbitrary characters. Whitespace and newlines
// are insignificant; `#` starts a comment until end of line.
StatusOr<Database> ParseDatabase(std::string_view text);

// Parses a single tuple like "(c1, _1)" with the same value syntax.
StatusOr<Tuple> ParseTuple(std::string_view text);

// Serializes a database in the ParseDatabase format (round-trips).
std::string FormatDatabase(const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_DATA_IO_H_
