#ifndef ZEROONE_DATA_DATABASE_H_
#define ZEROONE_DATA_DATABASE_H_

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "data/relation.h"

namespace zeroone {

// A relational schema: relation names with associated arities.
class Schema {
 public:
  Schema() = default;

  void AddRelation(const std::string& name, std::size_t arity);
  bool HasRelation(const std::string& name) const;
  // Precondition: HasRelation(name).
  std::size_t ArityOf(const std::string& name) const;
  // Relation names in lexicographic order.
  std::vector<std::string> RelationNames() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.arities_ == b.arities_;
  }

 private:
  std::map<std::string, std::size_t> arities_;
};

// An incomplete relational database instance: one (possibly incomplete)
// relation per schema symbol. Relations are held in name order, so database
// equality and printing are deterministic.
class Database {
 public:
  Database() = default;
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  // Declares a relation (adding it to the schema if absent) and returns a
  // mutable reference to it for populating.
  Relation& AddRelation(const std::string& name, std::size_t arity);

  bool HasRelation(const std::string& name) const;
  // Precondition: HasRelation(name).
  const Relation& relation(const std::string& name) const;
  Relation& mutable_relation(const std::string& name);

  // Relations in name order.
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  // Total number of tuples across relations.
  std::size_t TupleCount() const;

  // Const(D): constants occurring in the database, deduplicated, in
  // deterministic (interning) order.
  std::vector<Value> Constants() const;
  // Null(D): nulls occurring in the database, deduplicated, deterministic.
  std::vector<Value> Nulls() const;
  // adom(D) = Const(D) ∪ Null(D).
  std::vector<Value> ActiveDomain() const;
  // True iff the database has no nulls.
  bool IsComplete() const;

  std::string ToString() const;

  friend bool operator==(const Database& a, const Database& b) {
    return a.relations_ == b.relations_;
  }
  friend bool operator!=(const Database& a, const Database& b) {
    return !(a == b);
  }
  // Lexicographic over name-ordered relations; used to store complete
  // databases v(D) in ordered sets when counting distinct outcomes
  // (the alternative measure m^k of Theorem 2).
  friend bool operator<(const Database& a, const Database& b) {
    return a.relations_ < b.relations_;
  }

 private:
  Schema schema_;
  std::map<std::string, Relation> relations_;
};

std::ostream& operator<<(std::ostream& os, const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_DATA_DATABASE_H_
