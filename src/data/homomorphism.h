#ifndef ZEROONE_DATA_HOMOMORPHISM_H_
#define ZEROONE_DATA_HOMOMORPHISM_H_

#include <map>
#include <optional>

#include "data/database.h"

namespace zeroone {

// Homomorphisms between incomplete databases: maps h fixing constants and
// sending nulls to values (constants or nulls) with h(D) ⊆ D′ tuple-wise.
// Homomorphisms are the backbone of naive-table theory: UCQ naive answers
// are preserved under them (the fact the Theorem 8 algorithm leans on), and
// the *core* — the smallest homomorphically-equivalent sub-instance — is
// the canonical "best" data-exchange solution whose identification is
// DP-complete (Fagin–Kolaitis–Popa, cited in the paper's Preliminaries as
// prior database use of the class DP). Sizes here are small, so exact
// backtracking search is appropriate.

// A homomorphism from `from` to `to`, if one exists: a map defined on
// Null(from) (constants implicitly fixed) with h(from) ⊆ to.
std::optional<std::map<Value, Value>> FindHomomorphism(const Database& from,
                                                       const Database& to);

// Homomorphic equivalence: maps in both directions.
bool AreHomomorphicallyEquivalent(const Database& a, const Database& b);

// The core of the database: a minimal induced sub-instance C ⊆ D with a
// homomorphism D → C (unique up to isomorphism). Computed by greedily
// searching for proper retractions. Complete databases are their own core.
Database ComputeCore(const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_DATA_HOMOMORPHISM_H_
