#ifndef ZEROONE_DATA_ISOMORPHISM_H_
#define ZEROONE_DATA_ISOMORPHISM_H_

#include "data/database.h"

namespace zeroone {

// Null-renaming isomorphism: two incomplete databases are isomorphic if
// some bijection between their nulls (constants fixed pointwise) maps one
// onto the other. This is the equivalence under which the chase result is
// unique ("every sequence of chase steps results in the same instance, up
// to renaming of nulls", Section 4.4), and the right notion of equality for
// chase outputs, normalized instances, and generated workloads.
//
// Decision procedure: backtracking search over null bijections with
// signature pruning (nulls can only map to nulls with the same occurrence
// profile). Exponential in the worst case — graph-isomorphism-hard in
// general — but instant on the instance sizes this library manipulates.
bool AreIsomorphic(const Database& a, const Database& b);

// True if every null occurs at most once in the database — the Codd-null
// (SQL-style) special case of the marked-null model (Section 6 "SQL
// nulls"). Codd databases are exactly those whose isomorphism type is
// determined by the null *positions* alone.
bool HasOnlyCoddNulls(const Database& db);

// Replaces every null occurrence with a globally fresh null, yielding the
// Codd-null weakening of the database: repeated-null correlations are
// forgotten. Useful to quantify (see bench/bench_ablation) how much of the
// measure/comparison structure is lost by SQL's simpler null model.
Database CoddWeakening(const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_DATA_ISOMORPHISM_H_
