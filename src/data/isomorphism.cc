#include "data/isomorphism.h"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <set>
#include <vector>

namespace zeroone {

namespace {

// Occurrence signature of a null: sorted list of (relation, position,
// occurrence count) triples — a cheap isomorphism invariant.
using Signature = std::vector<std::tuple<std::string, std::size_t, std::size_t>>;

std::map<Value, Signature> SignaturesOf(const Database& db) {
  std::map<Value, std::map<std::pair<std::string, std::size_t>, std::size_t>>
      raw;
  for (const auto& [name, rel] : db.relations()) {
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < tuple.arity(); ++i) {
        if (tuple[i].is_null()) {
          ++raw[tuple[i]][{name, i}];
        }
      }
    }
  }
  std::map<Value, Signature> result;
  for (const auto& [null, occurrences] : raw) {
    Signature signature;
    for (const auto& [where, count] : occurrences) {
      signature.emplace_back(where.first, where.second, count);
    }
    result.emplace(null, std::move(signature));
  }
  return result;
}

// Applies a null→null mapping to the database.
Database RenameNulls(const Database& db, const std::map<Value, Value>& map) {
  Database result(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        auto it = map.find(tuple[i]);
        values[i] = it == map.end() ? tuple[i] : it->second;
      }
      out.AddRow(values.data());
    }
    result.mutable_relation(name) = std::move(out).Build();
  }
  return result;
}

bool Backtrack(const Database& a, const Database& b,
               const std::vector<Value>& a_nulls,
               const std::vector<std::vector<Value>>& candidates,
               std::size_t index, std::map<Value, Value>* mapping,
               std::set<Value>* used) {
  if (index == a_nulls.size()) {
    return RenameNulls(a, *mapping) == b;
  }
  Value null = a_nulls[index];
  for (Value candidate : candidates[index]) {
    if (used->count(candidate) != 0) continue;
    (*mapping)[null] = candidate;
    used->insert(candidate);
    if (Backtrack(a, b, a_nulls, candidates, index + 1, mapping, used)) {
      return true;
    }
    used->erase(candidate);
    mapping->erase(null);
  }
  return false;
}

}  // namespace

bool AreIsomorphic(const Database& a, const Database& b) {
  if (a.schema().RelationNames() != b.schema().RelationNames()) return false;
  for (const auto& [name, rel] : a.relations()) {
    if (rel.size() != b.relation(name).size() ||
        rel.arity() != b.relation(name).arity()) {
      return false;
    }
  }
  std::vector<Value> a_nulls = a.Nulls();
  std::vector<Value> b_nulls = b.Nulls();
  if (a_nulls.size() != b_nulls.size()) return false;
  if (a_nulls.empty()) return a == b;

  // Signature pruning: a null of `a` can only map to nulls of `b` with the
  // identical occurrence profile.
  std::map<Value, Signature> a_signatures = SignaturesOf(a);
  std::map<Value, Signature> b_signatures = SignaturesOf(b);
  std::vector<std::vector<Value>> candidates;
  candidates.reserve(a_nulls.size());
  for (Value null : a_nulls) {
    std::vector<Value> compatible;
    for (Value target : b_nulls) {
      if (a_signatures[null] == b_signatures[target]) {
        compatible.push_back(target);
      }
    }
    if (compatible.empty()) return false;
    candidates.push_back(std::move(compatible));
  }
  std::map<Value, Value> mapping;
  std::set<Value> used;
  return Backtrack(a, b, a_nulls, candidates, 0, &mapping, &used);
}

bool HasOnlyCoddNulls(const Database& db) {
  std::set<Value> seen;
  for (const auto& [name, rel] : db.relations()) {
    for (Relation::Row tuple : rel) {
      for (Value v : tuple) {
        if (!v.is_null()) continue;
        if (!seen.insert(v).second) return false;
      }
    }
  }
  return true;
}

Database CoddWeakening(const Database& db) {
  Database result(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = tuple[i].is_null() ? Value::FreshNull() : tuple[i];
      }
      out.AddRow(values.data());
    }
    result.mutable_relation(name) = std::move(out).Build();
  }
  return result;
}

}  // namespace zeroone
