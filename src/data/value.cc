#include "data/value.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace zeroone {

namespace {

// Process-wide intern table for one kind of value. Thread-safe; names are
// never removed, so ids are stable for the process lifetime.
class InternTable {
 public:
  std::uint32_t Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Interns prefix+counter for the first counter value whose name is unused.
  std::uint32_t InternFresh(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (true) {
      std::string candidate = prefix + std::to_string(fresh_counter_++);
      if (ids_.find(candidate) == ids_.end()) {
        std::uint32_t id = static_cast<std::uint32_t>(names_.size());
        names_.push_back(candidate);
        ids_.emplace(names_.back(), id);
        return id;
      }
    }
  }

  const std::string& Name(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < names_.size());
    return names_[id];
  }

 private:
  mutable std::mutex mutex_;
  // Deque so that Name() references stay valid as the table grows.
  std::deque<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::uint64_t fresh_counter_ = 1;
};

InternTable& ConstantTable() {
  static InternTable& table = *new InternTable();
  return table;
}

InternTable& NullTable() {
  static InternTable& table = *new InternTable();
  return table;
}

}  // namespace

Value Value::Constant(std::string_view name) {
  return Value(Kind::kConstant, ConstantTable().Intern(name));
}

Value Value::Int(std::int64_t value) {
  return Constant(std::to_string(value));
}

Value Value::Null(std::string_view label) {
  return Value(Kind::kNull, NullTable().Intern(label));
}

Value Value::FreshNull() {
  return Value(Kind::kNull, NullTable().InternFresh("n"));
}

Value Value::FreshConstant() {
  return Value(Kind::kConstant, ConstantTable().InternFresh("@"));
}

const std::string& Value::name() const {
  return kind_ == Kind::kConstant ? ConstantTable().Name(id_)
                                  : NullTable().Name(id_);
}

std::string Value::ToString() const {
  if (kind_ == Kind::kConstant) return name();
  return "⊥" + name();
}

std::ostream& operator<<(std::ostream& os, Value value) {
  return os << value.ToString();
}

std::vector<Value> MakeConstantEnumeration(const std::vector<Value>& required,
                                           std::size_t k) {
  std::vector<Value> enumeration;
  enumeration.reserve(k);
  for (Value v : required) {
    assert(v.is_constant() && "enumeration prefix must be constants");
    bool duplicate = false;
    for (Value seen : enumeration) {
      if (seen == v) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) enumeration.push_back(v);
  }
  assert(enumeration.size() <= k &&
         "k must be at least the number of required constants");
  while (enumeration.size() < k) {
    enumeration.push_back(Value::FreshConstant());
  }
  return enumeration;
}

}  // namespace zeroone
