#ifndef ZEROONE_DATA_VALUE_H_
#define ZEROONE_DATA_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace zeroone {

// A database element: either a constant from the countably infinite set
// Const, or a marked (labeled) null from Null, following the standard model
// of incompleteness (Section 2 of the paper). Values are interned: a Value
// is a cheap (kind, id) pair; names live in a process-wide table. Two
// constants are equal iff they have the same name; two nulls are equal iff
// they have the same label (this is what makes nulls "marked": repeated
// occurrences of ⊥1 denote the same unknown value).
class Value {
 public:
  enum class Kind : std::uint8_t { kConstant = 0, kNull = 1 };

  // Constructs the constant named "0" — prefer the factories below.
  Value() = default;

  // The constant with the given name (interning it on first use).
  static Value Constant(std::string_view name);
  // The constant whose name is the decimal form of `value`.
  static Value Int(std::int64_t value);
  // The null with the given label (without the ⊥ sigil), e.g. Null("1") is
  // the null printed as ⊥1.
  static Value Null(std::string_view label);
  // A null with a globally fresh, never previously used label.
  static Value FreshNull();
  // A constant with a globally fresh name (used to extend enumerations of
  // Const and to implement bijective valuations).
  static Value FreshConstant();

  Kind kind() const { return kind_; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Dense id within its kind; ids are assigned in interning order.
  std::uint32_t id() const { return id_; }

  // Display name: the constant's name, or "⊥" + label for nulls.
  std::string ToString() const;
  // The raw interned name (constant name or null label, without sigil).
  const std::string& name() const;

  friend bool operator==(Value a, Value b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Value a, Value b) { return !(a == b); }
  // Total order: constants before nulls, then by interning order. Used only
  // for deterministic container ordering, never for query semantics.
  friend bool operator<(Value a, Value b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

 private:
  Value(Kind kind, std::uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_ = Kind::kConstant;
  std::uint32_t id_ = 0;
};

std::ostream& operator<<(std::ostream& os, Value value);

// Builds an enumeration c₁, …, c_k of k distinct constants whose prefix is
// the given `required` constants (deduplicated, order preserved), extended
// with globally fresh constants. This realizes the paper's convention that
// the enumeration of Const is irrelevant once {c₁,…,c_k} ⊇ C ∪ Const(D):
// measures are computed over exactly such enumerations.
// Precondition: k >= number of distinct required constants.
std::vector<Value> MakeConstantEnumeration(const std::vector<Value>& required,
                                           std::size_t k);

}  // namespace zeroone

#endif  // ZEROONE_DATA_VALUE_H_
