#include "data/tuple.h"

#include <algorithm>
#include <ostream>

namespace zeroone {

bool Tuple::IsComplete() const {
  return std::all_of(values_.begin(), values_.end(),
                     [](Value v) { return v.is_constant(); });
}

std::vector<Value> Tuple::Nulls() const {
  std::vector<Value> nulls;
  for (Value v : values_) {
    if (!v.is_null()) continue;
    if (std::find(nulls.begin(), nulls.end(), v) == nulls.end()) {
      nulls.push_back(v);
    }
  }
  return nulls;
}

std::string Tuple::ToString() const {
  std::string result = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) result += ", ";
    result += values_[i].ToString();
  }
  result += ")";
  return result;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace zeroone
