#include "data/io.h"

#include <cctype>
#include <string>
#include <vector>

namespace zeroone {

namespace {

// Minimal cursor-based scanner shared by the database and tuple parsers.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipWhitespaceAndComments() {
    while (position_ < text_.size()) {
      char c = text_[position_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++position_;
      } else if (c == '#') {
        while (position_ < text_.size() && text_[position_] != '\n') {
          ++position_;
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return position_ >= text_.size();
  }

  bool Consume(char expected) {
    SkipWhitespaceAndComments();
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWhitespaceAndComments();
    return position_ < text_.size() ? text_[position_] : '\0';
  }

  Status Error(const std::string& message) const {
    return Status::Error("database parse error at offset ", position_, ": ",
                         message);
  }

  // Identifier or number token: [A-Za-z0-9_-]+ (no leading scan of sign).
  StatusOr<std::string> Word() {
    SkipWhitespaceAndComments();
    std::size_t start = position_;
    while (position_ < text_.size()) {
      char c = text_[position_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        ++position_;
      } else {
        break;
      }
    }
    if (position_ == start) return Error("expected identifier or number");
    return std::string(text_.substr(start, position_ - start));
  }

  StatusOr<Value> ParseValue() {
    SkipWhitespaceAndComments();
    if (position_ >= text_.size()) return Error("expected value");
    char c = text_[position_];
    if (c == '\'') {
      ++position_;
      std::size_t start = position_;
      while (position_ < text_.size() && text_[position_] != '\'') {
        ++position_;
      }
      if (position_ == text_.size()) return Error("unterminated string");
      std::string name(text_.substr(start, position_ - start));
      ++position_;
      return Value::Constant(name);
    }
    // Unicode null sigil ⊥ (UTF-8 bytes E2 8A A5).
    if (position_ + 2 < text_.size() &&
        static_cast<unsigned char>(text_[position_]) == 0xE2 &&
        static_cast<unsigned char>(text_[position_ + 1]) == 0x8A &&
        static_cast<unsigned char>(text_[position_ + 2]) == 0xA5) {
      position_ += 3;
      ZO_ASSIGN_OR_RETURN(std::string label, Word());
      return Value::Null(label);
    }
    if (c == '_') {
      ++position_;
      ZO_ASSIGN_OR_RETURN(std::string label, Word());
      return Value::Null(label);
    }
    ZO_ASSIGN_OR_RETURN(std::string word, Word());
    return Value::Constant(word);
  }

  StatusOr<Tuple> ParseTupleBody() {
    if (!Consume('(')) return Error("expected '('");
    std::vector<Value> values;
    if (Peek() != ')') {
      while (true) {
        ZO_ASSIGN_OR_RETURN(Value value, ParseValue());
        values.push_back(value);
        if (Consume(',')) continue;
        break;
      }
    }
    if (!Consume(')')) return Error("expected ')' closing tuple");
    return Tuple(std::move(values));
  }

 private:
  std::string_view text_;
  std::size_t position_ = 0;
};

}  // namespace

StatusOr<Database> ParseDatabase(std::string_view text) {
  Scanner scanner(text);
  Database db;
  while (!scanner.AtEnd()) {
    ZO_ASSIGN_OR_RETURN(std::string name, scanner.Word());
    if (!scanner.Consume('(')) {
      return Status::Error("database parse error: expected '(' after '",
                           name, "'");
    }
    ZO_ASSIGN_OR_RETURN(std::string arity_text, scanner.Word());
    std::size_t arity = 0;
    for (char c : arity_text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Status::Error("database parse error: bad arity '", arity_text,
                             "'");
      }
      arity = arity * 10 + static_cast<std::size_t>(c - '0');
    }
    if (!scanner.Consume(')') || !scanner.Consume('=') ||
        !scanner.Consume('{')) {
      return Status::Error(
          "database parse error: expected '(arity) = {' after relation name");
    }
    Relation& relation = db.AddRelation(name, arity);
    if (scanner.Peek() != '}') {
      // Collect the whole block and bulk-insert it: one sort + dedup
      // instead of a per-tuple O(n) sorted insert.
      std::vector<Tuple> batch;
      while (true) {
        ZO_ASSIGN_OR_RETURN(Tuple tuple, scanner.ParseTupleBody());
        if (tuple.arity() != arity) {
          return Status::Error("database parse error: tuple ",
                               tuple.ToString(), " has arity ",
                               tuple.arity(), ", expected ", arity);
        }
        batch.push_back(std::move(tuple));
        if (scanner.Consume(',')) continue;
        break;
      }
      relation.InsertBatch(batch);
    }
    if (!scanner.Consume('}')) {
      return Status::Error("database parse error: expected '}'");
    }
  }
  return db;
}

StatusOr<Tuple> ParseTuple(std::string_view text) {
  Scanner scanner(text);
  StatusOr<Tuple> tuple = scanner.ParseTupleBody();
  if (!tuple.ok()) return tuple;
  if (!scanner.AtEnd()) {
    return Status::Error("tuple parse error: trailing input");
  }
  return tuple;
}

namespace {

// A constant re-parses bare only if it is a nonempty [A-Za-z0-9_-]+ word
// that does not start with '_' (which would read back as a null label).
bool ConstantNeedsQuoting(const std::string& name) {
  if (name.empty() || name[0] == '_') return true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FormatDatabase(const Database& db) {
  std::string out;
  for (const auto& [name, relation] : db.relations()) {
    out += name + "(" + std::to_string(relation.arity()) + ") = {";
    bool first = true;
    for (Relation::Row tuple : relation) {
      if (!first) out += ",";
      first = false;
      out += " (";
      for (std::size_t i = 0; i < tuple.arity(); ++i) {
        if (i > 0) out += ", ";
        Value v = tuple[i];
        if (v.is_null()) {
          out += "_" + v.name();
        } else if (ConstantNeedsQuoting(v.name())) {
          out += "'" + v.name() + "'";
        } else {
          out += v.name();
        }
      }
      out += ")";
    }
    out += first ? "}" : " }";
    out += "\n";
  }
  return out;
}

}  // namespace zeroone
