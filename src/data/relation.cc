#include "data/relation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <ostream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace zeroone {

namespace {

StorageMode DefaultStorageMode() {
  const char* env = std::getenv("ZEROONE_STORAGE");
  if (env != nullptr && std::string_view(env) == "scan") {
    return StorageMode::kScan;
  }
  return StorageMode::kIndexed;
}

StorageMode& MutableStorageMode() {
  static StorageMode mode = DefaultStorageMode();
  return mode;
}

// Lexicographic comparison of two rows of the same arity.
bool RowLess(const Value* a, const Value* b, std::size_t arity) {
  for (std::size_t i = 0; i < arity; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return false;
}

bool RowEq(const Value* a, const Value* b, std::size_t arity) {
  for (std::size_t i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// FNV-1a over the (kind, id) pairs of a probe key.
struct KeyHash {
  std::size_t operator()(const std::vector<Value>& key) const {
    std::uint64_t h = 1469598103934665603ull;
    for (Value v : key) {
      h ^= static_cast<std::uint64_t>(v.kind());
      h *= 1099511628211ull;
      h ^= static_cast<std::uint64_t>(v.id());
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

StorageMode storage_mode() { return MutableStorageMode(); }

void SetStorageMode(StorageMode mode) { MutableStorageMode() = mode; }

struct Relation::Index {
  // Bucket values are ascending sorted positions (not arena ids), built by
  // walking the relation in iteration order, so probe results enumerate
  // rows in the same deterministic order a full scan would.
  std::unordered_map<std::vector<Value>, std::vector<std::uint32_t>, KeyHash>
      buckets;
};

Relation::Relation() = default;

Relation::Relation(std::string name, std::size_t arity)
    : name_(std::move(name)), arity_(arity) {}

Relation::~Relation() = default;

Relation::Relation(const Relation& other)
    : name_(other.name_),
      arity_(other.arity_),
      arena_(other.arena_),
      sorted_(other.sorted_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  arity_ = other.arity_;
  arena_ = other.arena_;
  sorted_ = other.sorted_;
  InvalidateIndexes();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      arity_(other.arity_),
      arena_(std::move(other.arena_)),
      sorted_(std::move(other.sorted_)) {
  other.arena_.clear();
  other.sorted_.clear();
  other.InvalidateIndexes();
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  arity_ = other.arity_;
  arena_ = std::move(other.arena_);
  sorted_ = std::move(other.sorted_);
  other.arena_.clear();
  other.sorted_.clear();
  other.InvalidateIndexes();
  InvalidateIndexes();
  return *this;
}

std::size_t Relation::LowerBound(const Value* values) const {
  std::size_t lo = 0;
  std::size_t hi = sorted_.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (RowLess(RowData(sorted_[mid]), values, arity_)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Relation::Insert(const Tuple& tuple) {
  assert(tuple.arity() == arity_ && "tuple arity mismatch");
  InsertRow(tuple.values().data());
}

void Relation::Insert(std::initializer_list<Value> values) {
  assert(values.size() == arity_ && "tuple arity mismatch");
  InsertRow(values.begin());
}

void Relation::InsertRow(const Value* values) {
  std::size_t pos = LowerBound(values);
  if (pos < sorted_.size() && RowEq(RowData(sorted_[pos]), values, arity_)) {
    return;
  }
  // `values` may point into our own arena (self-insertion of a row view);
  // appending could reallocate out from under it, so copy first if so.
  if (arity_ > 0 && values >= arena_.data() &&
      values < arena_.data() + arena_.size()) {
    std::vector<Value> copy(values, values + arity_);
    arena_.insert(arena_.end(), copy.begin(), copy.end());
  } else {
    arena_.insert(arena_.end(), values, values + arity_);
  }
  auto id = static_cast<std::uint32_t>(sorted_.size());
  sorted_.insert(sorted_.begin() + static_cast<std::ptrdiff_t>(pos), id);
  InvalidateIndexes();
}

void Relation::Compact(std::size_t arity, std::vector<Value>& arena,
                       std::size_t rows, std::vector<std::uint32_t>& sorted) {
  std::vector<std::uint32_t> order(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  const Value* base = arena.data();
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return RowLess(base + static_cast<std::size_t>(a) * arity,
                             base + static_cast<std::size_t>(b) * arity,
                             arity);
            });
  // Rewrite the arena in sorted order, dropping duplicates, so arena ids
  // coincide with sorted positions after a bulk load.
  std::vector<Value> compacted;
  compacted.reserve(arena.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const Value* row = base + static_cast<std::size_t>(order[i]) * arity;
    if (kept > 0 &&
        RowEq(compacted.data() + (kept - 1) * arity, row, arity)) {
      continue;
    }
    compacted.insert(compacted.end(), row, row + arity);
    ++kept;
  }
  if (arity == 0) kept = rows > 0 ? 1 : 0;
  arena = std::move(compacted);
  sorted.resize(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    sorted[i] = static_cast<std::uint32_t>(i);
  }
}

void Relation::MergeFreshRows(const std::vector<Value>& fresh,
                              std::size_t rows) {
  if (rows == 0) return;
  // Invariant: the arena holds exactly sorted_.size() rows (duplicates are
  // never stored), so new arena ids start at sorted_.size().
  auto first_id = static_cast<std::uint32_t>(sorted_.size());
  arena_.insert(arena_.end(), fresh.begin(), fresh.end());
  std::vector<std::uint32_t> merged;
  merged.reserve(sorted_.size() + rows);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sorted_.size() && j < rows) {
    // No equality case: fresh rows are not present in the relation.
    if (RowLess(RowData(first_id + static_cast<std::uint32_t>(j)),
                RowData(sorted_[i]), arity_)) {
      merged.push_back(first_id + static_cast<std::uint32_t>(j));
      ++j;
    } else {
      merged.push_back(sorted_[i]);
      ++i;
    }
  }
  for (; i < sorted_.size(); ++i) merged.push_back(sorted_[i]);
  for (; j < rows; ++j) {
    merged.push_back(first_id + static_cast<std::uint32_t>(j));
  }
  sorted_ = std::move(merged);
  InvalidateIndexes();
}

void Relation::InsertBatch(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return;
  if (arity_ == 0) {
    if (!sorted_.empty()) return;
    sorted_.push_back(0);
    InvalidateIndexes();
    return;
  }
  // Sort + dedup the batch alone, drop rows already present, then merge
  // the survivors into the sorted permutation in one linear pass. This
  // keeps bulk loads O(k log k) in the batch and semi-naive delta merges
  // linear in the relation instead of re-sorting it every round.
  std::vector<Value> batch;
  batch.reserve(tuples.size() * arity_);
  std::size_t rows = 0;
  for (const Tuple& t : tuples) {
    assert(t.arity() == arity_ && "tuple arity mismatch");
    batch.insert(batch.end(), t.begin(), t.end());
    ++rows;
  }
  std::vector<std::uint32_t> batch_sorted;
  Compact(arity_, batch, rows, batch_sorted);
  std::vector<Value> fresh;
  fresh.reserve(batch.size());
  std::size_t fresh_rows = 0;
  for (std::size_t r = 0; r < batch_sorted.size(); ++r) {
    const Value* row = batch.data() + r * arity_;
    if (Contains(row)) continue;
    fresh.insert(fresh.end(), row, row + arity_);
    ++fresh_rows;
  }
  MergeFreshRows(fresh, fresh_rows);
}

void Relation::InsertBatch(const Relation& other) {
  assert(other.arity_ == arity_ && "relation arity mismatch");
  if (other.empty()) return;
  if (arity_ == 0) {
    if (!sorted_.empty()) return;
    sorted_.push_back(0);
    InvalidateIndexes();
    return;
  }
  // `other` already iterates sorted and deduplicated; keep its absent rows.
  std::vector<Value> fresh;
  fresh.reserve(other.arena_.size());
  std::size_t fresh_rows = 0;
  for (std::uint32_t id : other.sorted_) {
    const Value* row = other.RowData(id);
    if (Contains(row)) continue;
    fresh.insert(fresh.end(), row, row + arity_);
    ++fresh_rows;
  }
  MergeFreshRows(fresh, fresh_rows);
}

bool Relation::Contains(const Tuple& tuple) const {
  assert(tuple.arity() == arity_ && "tuple arity mismatch");
  return Contains(tuple.values().data());
}

bool Relation::Contains(const Value* values) const {
  std::size_t pos = LowerBound(values);
  return pos < sorted_.size() && RowEq(RowData(sorted_[pos]), values, arity_);
}

Relation::Row Relation::row(std::size_t i) const {
  assert(i < sorted_.size() && "row index out of range");
  return Row(RowData(sorted_[i]), arity_);
}

std::vector<Tuple> Relation::Tuples() const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.push_back(row(i).ToTuple());
  }
  return out;
}

Relation::Mask Relation::MaskOfColumns(const std::vector<std::size_t>& cols) {
  Mask mask = 0;
  for (std::size_t c : cols) {
    assert(c < kMaxIndexedColumns && "column beyond indexable range");
    mask |= Mask{1} << c;
  }
  return mask;
}

Relation::RowIdSpan Relation::Probe(Mask mask,
                                    const std::vector<Value>& key) const {
  assert(mask != 0 && "probe mask must select at least one column");
  assert(arity_ <= kMaxIndexedColumns && "arity beyond indexable range");
  assert((arity_ >= 64 || (mask >> arity_) == 0) &&
         "mask selects nonexistent columns");
  assert(static_cast<std::size_t>(std::popcount(mask)) == key.size() &&
         "probe key width must match the mask");

  std::lock_guard<std::mutex> lock(index_mutex_);
  auto it = indexes_.find(mask);
  if (it == indexes_.end()) {
    auto index = std::make_unique<Index>();
    std::vector<Value> row_key(key.size());
    for (std::size_t pos = 0; pos < sorted_.size(); ++pos) {
      const Value* row = RowData(sorted_[pos]);
      std::size_t k = 0;
      for (Mask bits = mask; bits != 0; bits &= bits - 1) {
        row_key[k++] = row[std::countr_zero(bits)];
      }
      index->buckets[row_key].push_back(static_cast<std::uint32_t>(pos));
    }
    it = indexes_.emplace(mask, std::move(index)).first;
    ZO_COUNTER_INC("relation.index.builds");
  }
  auto bucket = it->second->buckets.find(key);
  if (bucket == it->second->buckets.end()) {
    ZO_COUNTER_INC("relation.index.probe_misses");
    return RowIdSpan();
  }
  ZO_COUNTER_INC("relation.index.probe_hits");
  return RowIdSpan(bucket->second.data(), bucket->second.size());
}

void Relation::InvalidateIndexes() {
  std::lock_guard<std::mutex> lock(index_mutex_);
  indexes_.clear();
  stats_.reset();
}

RelationStats Relation::Stats() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (stats_ == nullptr) {
    auto stats = std::make_shared<RelationStats>();
    stats->rows = sorted_.size();
    stats->distinct_per_column.assign(arity_, 0);
    std::unordered_set<std::uint64_t> seen;
    for (std::size_t c = 0; c < arity_; ++c) {
      seen.clear();
      for (std::uint32_t id : sorted_) {
        Value v = RowData(id)[c];
        seen.insert((static_cast<std::uint64_t>(v.kind()) << 32) | v.id());
      }
      stats->distinct_per_column[c] = seen.size();
    }
    stats_ = std::move(stats);
    ZO_COUNTER_INC("relation.stats.builds");
  }
  return *stats_;
}

std::string Relation::Row::ToString() const {
  return ToTuple().ToString();
}

bool operator<(Relation::Row a, Relation::Row b) {
  // Matches Tuple::operator< (std::vector lexicographic comparison).
  std::size_t n = a.arity_ < b.arity_ ? a.arity_ : b.arity_;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.data_[i] < b.data_[i]) return true;
    if (b.data_[i] < a.data_[i]) return false;
  }
  return a.arity_ < b.arity_;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.name_ != b.name_ || a.arity_ != b.arity_ ||
      a.sorted_.size() != b.sorted_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.sorted_.size(); ++i) {
    if (!RowEq(a.RowData(a.sorted_[i]), b.RowData(b.sorted_[i]), a.arity_)) {
      return false;
    }
  }
  return true;
}

bool operator<(const Relation& a, const Relation& b) {
  if (a.name_ != b.name_) return a.name_ < b.name_;
  if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
  // Lexicographic on the sorted tuple sequence, as with the historical
  // std::vector<Tuple> comparison.
  std::size_t n = std::min(a.sorted_.size(), b.sorted_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Value* ra = a.RowData(a.sorted_[i]);
    const Value* rb = b.RowData(b.sorted_[i]);
    if (RowLess(ra, rb, a.arity_)) return true;
    if (RowLess(rb, ra, a.arity_)) return false;
  }
  return a.sorted_.size() < b.sorted_.size();
}

std::string Relation::ToString() const {
  std::string result = name_ + " = {";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i > 0) result += ", ";
    result += row(i).ToString();
  }
  result += "}";
  return result;
}

void Relation::Builder::Add(const Tuple& tuple) {
  assert(tuple.arity() == arity_ && "tuple arity mismatch");
  arena_.insert(arena_.end(), tuple.begin(), tuple.end());
  ++rows_;
}

void Relation::Builder::Add(std::initializer_list<Value> values) {
  assert(values.size() == arity_ && "tuple arity mismatch");
  arena_.insert(arena_.end(), values.begin(), values.end());
  ++rows_;
}

void Relation::Builder::AddRow(const Value* values) {
  arena_.insert(arena_.end(), values, values + arity_);
  ++rows_;
}

Relation Relation::Builder::Build() && {
  Relation out(std::move(name_), arity_);
  out.arena_ = std::move(arena_);
  Compact(arity_, out.arena_, rows_, out.sorted_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Relation& relation) {
  return os << relation.ToString();
}

}  // namespace zeroone
