#include "data/relation.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace zeroone {

void Relation::Insert(const Tuple& tuple) {
  assert(tuple.arity() == arity_ && "tuple arity mismatch");
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), tuple);
  if (it != tuples_.end() && *it == tuple) return;
  tuples_.insert(it, tuple);
}

bool Relation::Contains(const Tuple& tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

std::string Relation::ToString() const {
  std::string result = name_ + " = {";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) result += ", ";
    result += tuples_[i].ToString();
  }
  result += "}";
  return result;
}

std::ostream& operator<<(std::ostream& os, const Relation& relation) {
  return os << relation.ToString();
}

}  // namespace zeroone
