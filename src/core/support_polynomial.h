#ifndef ZEROONE_CORE_SUPPORT_POLYNOMIAL_H_
#define ZEROONE_CORE_SUPPORT_POLYNOMIAL_H_

#include <vector>

#include "common/polynomial.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// The partition-polynomial algorithm from the proof of Theorem 3.
//
// A valuation v of the m nulls of D induces a kernel partition ρ = ker(v).
// Fix A = C ∪ Const(D) with a = |A|. For a valuation with kernel ρ, let σ
// be the restriction of the induced block-assignment to A (an injective
// partial map from blocks to A); the remaining f "free" blocks take
// pairwise-distinct values outside A. Genericity implies the truth of the
// (Boolean) query on v(D) depends only on (ρ, σ), and the number of
// valuations with range ⊆ {c₁..c_k} realizing a given (ρ, σ) is the falling
// factorial (k−a)(k−a−1)···(k−a−f+1). Hence
//
//   |Supp^k(Q(ā), D)| = Σ_{(ρ,σ) : witnessed} (k−a)_f,
//
// an integer polynomial in k, exact for every k ≥ a. The polynomial is
// *unique*: any two valid prefixes A yield the same polynomial because both
// agree with the counting function at infinitely many k.
//
// Cost: Bell(m) partitions × O((a+1)^t) assignments × one query evaluation
// each — the FP^#P algorithm of Proposition 5, and exponentially cheaper
// than the k^m enumeration of support.h for any fixed k range.

// |Supp^k(Q, D, ā)| as a polynomial in k (valid for k ≥ returned
// `valid_from`). `extra_prefix` adds constants to A (useful to evaluate
// several related queries over one common prefix; the polynomial itself is
// unaffected).
struct SupportPolynomial {
  Polynomial count;       // |Supp^k| as a function of k.
  std::size_t valid_from; // Exact for all k >= valid_from (= |A|).
};
SupportPolynomial ComputeSupportPolynomial(
    const Query& query, const Database& db, const Tuple& tuple,
    const std::vector<Value>& extra_prefix = {});

// |V^k(D)| = k^m as a polynomial.
Polynomial TotalCountPolynomial(const Database& db);

// µ(Q, D, ā) computed as lim P(k)/k^m — an implementation of the measure
// straight from its definition, independent of Theorem 1's shortcut. Used
// to validate the 0–1 law itself.
Rational MuViaPolynomial(const Query& query, const Database& db,
                         const Tuple& tuple);

}  // namespace zeroone

#endif  // ZEROONE_CORE_SUPPORT_POLYNOMIAL_H_
