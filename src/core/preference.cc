#include "core/preference.h"

#include <map>
#include <set>

#include "core/support.h"
#include "data/valuation.h"
#include "query/eval.h"

namespace zeroone {

namespace {

// Validated, instance-aligned preference tables: tables[i] holds the
// (constant, weight) list for instance.nulls[i] (possibly empty).
struct AlignedPreferences {
  std::vector<std::vector<std::pair<Value, Rational>>> tables;
  std::vector<Rational> fallback_mass;  // 1 − Σ weights per null.
};

StatusOr<AlignedPreferences> Align(const SupportInstance& instance,
                                   const std::vector<NullPreference>& prefs) {
  std::map<Value, const NullPreference*> by_null;
  for (const NullPreference& pref : prefs) {
    if (!pref.null.is_null()) {
      return Status::Error("preference key " + pref.null.ToString() +
                           " is not a null");
    }
    if (!by_null.emplace(pref.null, &pref).second) {
      return Status::Error("duplicate preference table for " +
                           pref.null.ToString());
    }
    std::set<Value> seen;
    Rational mass(0);
    for (const auto& [constant, weight] : pref.weights) {
      if (!constant.is_constant()) {
        return Status::Error("preferred value " + constant.ToString() +
                             " is not a constant");
      }
      if (!seen.insert(constant).second) {
        return Status::Error("duplicate preferred constant " +
                             constant.ToString());
      }
      if (weight < Rational(0) || weight > Rational(1)) {
        return Status::Error("preference weight out of [0,1]");
      }
      mass += weight;
    }
    if (mass > Rational(1)) {
      return Status::Error("preference table mass exceeds 1 for " +
                           pref.null.ToString());
    }
  }
  AlignedPreferences aligned;
  aligned.tables.resize(instance.nulls.size());
  aligned.fallback_mass.assign(instance.nulls.size(), Rational(1));
  for (std::size_t i = 0; i < instance.nulls.size(); ++i) {
    auto it = by_null.find(instance.nulls[i]);
    if (it == by_null.end()) continue;
    aligned.tables[i] = it->second->weights;
    Rational mass(0);
    for (const auto& [constant, weight] : it->second->weights) mass += weight;
    aligned.fallback_mass[i] = Rational(1) - mass;
  }
  return aligned;
}

bool Witnesses(const SupportInstance& instance, const Valuation& v,
               const Database& db, bool formula_has_nulls) {
  Database valuated = v.Apply(db);
  Tuple valuated_tuple = v.Apply(instance.tuple);
  if (!formula_has_nulls) {
    return EvaluateMembership(instance.query, valuated, valuated_tuple);
  }
  Query substituted(instance.query.name(), instance.query.free_variables(),
                    ApplyValuationToFormula(instance.query.formula(), v),
                    instance.query.variable_names());
  return EvaluateMembership(substituted, valuated, valuated_tuple);
}

// Recursive enumeration for the limit: each null takes a preferred
// constant or a dedicated fresh constant; accumulate Π weights on witnessed
// branches.
void SumLimit(const SupportInstance& instance, const Database& db,
              const AlignedPreferences& aligned,
              const std::vector<Value>& fresh, bool formula_has_nulls,
              std::size_t index, Valuation* v, const Rational& weight,
              Rational* total) {
  if (weight.is_zero()) return;
  if (index == instance.nulls.size()) {
    if (Witnesses(instance, *v, db, formula_has_nulls)) *total += weight;
    return;
  }
  Value null = instance.nulls[index];
  for (const auto& [constant, w] : aligned.tables[index]) {
    v->Bind(null, constant);
    SumLimit(instance, db, aligned, fresh, formula_has_nulls, index + 1, v,
             weight * w, total);
  }
  // Generic branch: a fresh constant unique to this null.
  v->Bind(null, fresh[index]);
  SumLimit(instance, db, aligned, fresh, formula_has_nulls, index + 1, v,
           weight * aligned.fallback_mass[index], total);
}

}  // namespace

StatusOr<Rational> PreferenceMuLimit(
    const Query& query, const Database& db, const Tuple& tuple,
    const std::vector<NullPreference>& prefs) {
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  StatusOr<AlignedPreferences> aligned = Align(instance, prefs);
  if (!aligned.ok()) return aligned.status();
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();
  std::vector<Value> fresh;
  fresh.reserve(instance.nulls.size());
  for (std::size_t i = 0; i < instance.nulls.size(); ++i) {
    fresh.push_back(Value::FreshConstant());
  }
  Valuation v;
  Rational total(0);
  SumLimit(instance, db, *aligned, fresh, formula_has_nulls, 0, &v,
           Rational(1), &total);
  return total;
}

StatusOr<Rational> PreferenceMuK(const Query& query, const Database& db,
                                 const Tuple& tuple,
                                 const std::vector<NullPreference>& prefs,
                                 std::size_t k) {
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  StatusOr<AlignedPreferences> aligned = Align(instance, prefs);
  if (!aligned.ok()) return aligned.status();
  // The enumeration must include A and every preferred constant.
  std::vector<Value> prefix = instance.prefix;
  for (const auto& table : aligned->tables) {
    for (const auto& [constant, weight] : table) {
      bool seen = false;
      for (Value existing : prefix) seen = seen || existing == constant;
      if (!seen) prefix.push_back(constant);
    }
  }
  if (k < prefix.size() + 1) {
    return Status::Error(
        "PreferenceMuK: k must cover A, all preferred constants, and at "
        "least one fallback constant");
  }
  std::vector<Value> domain = MakeConstantEnumeration(prefix, k);
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();

  // Per-null per-domain-value probabilities.
  std::vector<std::map<Value, Rational>> preferred(instance.nulls.size());
  std::vector<Rational> fallback_each(instance.nulls.size(), Rational(0));
  for (std::size_t i = 0; i < instance.nulls.size(); ++i) {
    for (const auto& [constant, weight] : aligned->tables[i]) {
      preferred[i][constant] = weight;
    }
    std::size_t fallback_count = k - aligned->tables[i].size();
    fallback_each[i] =
        aligned->fallback_mass[i] /
        Rational(static_cast<std::int64_t>(fallback_count));
  }

  Rational total(0);
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    Rational weight(1);
    for (std::size_t i = 0; i < instance.nulls.size(); ++i) {
      Value value = v.ValueOf(instance.nulls[i]);
      auto it = preferred[i].find(value);
      weight *= it != preferred[i].end() ? it->second : fallback_each[i];
      if (weight.is_zero()) break;
    }
    if (weight.is_zero()) return;
    if (Witnesses(instance, v, db, formula_has_nulls)) total += weight;
  });
  return total;
}

}  // namespace zeroone
