#include "core/support_polynomial.h"

#include <cassert>

#include "core/generic_instance.h"
#include "core/support.h"
#include "obs/trace.h"

namespace zeroone {

SupportPolynomial ComputeSupportPolynomial(
    const Query& query, const Database& db, const Tuple& tuple,
    const std::vector<Value>& extra_prefix) {
  ZO_TRACE_SPAN("ComputeSupportPolynomial");
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  for (Value v : extra_prefix) {
    bool seen = false;
    for (Value existing : instance.prefix) seen = seen || existing == v;
    if (!seen) {
      assert(v.is_constant() && "extra prefix values must be constants");
      instance.prefix.push_back(v);
    }
  }
  GenericSupportPolynomial generic =
      ComputeGenericSupportPolynomial(ToGenericInstance(instance), db);
  return SupportPolynomial{std::move(generic.count), generic.valid_from};
}

Polynomial TotalCountPolynomial(const Database& db) {
  return Polynomial::Monomial(Rational(1),
                              static_cast<unsigned>(db.Nulls().size()));
}

Rational MuViaPolynomial(const Query& query, const Database& db,
                         const Tuple& tuple) {
  SupportPolynomial support = ComputeSupportPolynomial(query, db, tuple);
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  Polynomial total = Polynomial::Monomial(
      Rational(1), static_cast<unsigned>(instance.nulls.size()));
  return LimitOfRatio(support.count, total);
}

}  // namespace zeroone
