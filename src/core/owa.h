#ifndef ZEROONE_CORE_OWA_H_
#define ZEROONE_CORE_OWA_H_

#include <cstddef>

#include "common/status.h"
#include "common/rational.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Open-world semantics measure (Section 3.4). Under OWA,
// [[D]]_owa = { v(D) ∪ D″ : v a valuation, D″ finite and complete }, and
// owa-m^k(Q,D) is the fraction of databases in the restriction of [[D]]_owa
// to active domains within {c₁..c_k} that satisfy the Boolean query Q.
// Equivalently: the fraction, among all complete databases E over
// {c₁..c_k} with v(D) ⊆ E for some valuation v into {c₁..c_k}, of those
// satisfying Q.
//
// Proposition 2 shows this measure severs the link with naïve evaluation:
// for D with a single empty unary relation U, owa-m^k(¬∃x U(x), D) = 2^−k
// → 0 although the naïve evaluation is true.
//
// The computation enumerates all complete databases over {c₁..c_k} —
// doubly exponential in k and relation arities — so it is guarded: the
// total number of potential tuples Σ_R k^arity(R) must stay ≤ max_cells
// (default 22, i.e. ≤ 2^22 candidate databases).
StatusOr<Rational> OwaMK(const Query& query, const Database& db,
                         std::size_t k, std::size_t max_cells = 22);

}  // namespace zeroone

#endif  // ZEROONE_CORE_OWA_H_
