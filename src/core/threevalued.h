#ifndef ZEROONE_CORE_THREEVALUED_H_
#define ZEROONE_CORE_THREEVALUED_H_

#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Three-valued (Kleene / SQL-style) evaluation over incomplete databases —
// the certain-answer approximation scheme whose quality Section 6 of the
// paper proposes to measure with the µ framework (cf. Libkin, "SQL's
// three-valued logic and certain answers", TODS 2016, reference [32]).
//
// Truth values: an atom R(t̄) is true when t̄ is syntactically in R, false
// when no tuple of R can ever equal t̄ under any valuation (some constant
// position disagrees), and unknown otherwise. Equality t₁ = t₂ is true on
// identical values (including the same marked null — this is where the
// marked-null model is sharper than SQL's), false on distinct constants,
// unknown when a null meets anything else. Connectives follow Kleene's
// strong tables; quantifiers take max (∃) / min (∀) over the active domain.
//
// Soundness (the approximation guarantee): evaluation to *true* implies the
// tuple is a certain answer, and evaluation to *false* implies it is
// certainly not an answer — verified against the exact exponential
// certainty check in tests. The scheme is incomplete: certain answers can
// evaluate to unknown, and bench/bench_approximation measures how many, as
// a function of null density (the "quality of approximation" question).

enum class TruthValue { kFalse = 0, kUnknown = 1, kTrue = 2 };

const char* ToString(TruthValue value);

// Evaluates the query on ā under 3-valued semantics.
TruthValue ThreeValuedMembership(const Query& query, const Database& db,
                                 const Tuple& tuple);

// The sound under-approximation of certain answers: all tuples over
// adom(D)^arity that evaluate to true.
std::vector<Tuple> ThreeValuedCertainApproximation(const Query& query,
                                                   const Database& db);

// The sound over-approximation of possible answers: all tuples that do not
// evaluate to false.
std::vector<Tuple> ThreeValuedPossibleApproximation(const Query& query,
                                                    const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CORE_THREEVALUED_H_
