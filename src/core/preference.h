#ifndef ZEROONE_CORE_PREFERENCE_H_
#define ZEROONE_CORE_PREFERENCE_H_

#include <vector>

#include "common/rational.h"
#include "common/status.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Preference-weighted measures — an implementation of the paper's Section 6
// directions "Preferences" and "Other distributions".
//
// The plain measure treats every constant as equally likely a value for a
// null. Here, each null may instead carry side information: a finite table
// of *preferred* constants with probabilities (e.g. likely diagnoses for a
// patient's unknown disease). A null draws from its preference table with
// the stated probabilities, and with the remaining mass 1 − W it falls back
// to the uniform choice over the rest of {c₁..c_k}, independently of other
// nulls. The weighted measure is again a limit over k:
//
//   pref-µ(Q,D,ā) = lim_k Pr_{v ~ weighted^k} [ v(ā) ∈ Q(v(D)) ].
//
// Structure of the limit: as k → ∞, the fallback values behave like fresh,
// pairwise-distinct constants outside all preference tables (collision
// probabilities vanish at rate 1/k). Genericity then makes the limit a
// finite sum over the choices "which preferred constant, if any, each null
// takes":
//
//   pref-µ = Σ_{σ : Null ⇀ preferred} Π_{⊥∈dom σ} w_⊥(σ(⊥))
//              · Π_{⊥∉dom σ} (1 − W_⊥) · [ v_σ(ā) ∈ Q(v_σ(D)) ],
//
// where v_σ maps assigned nulls to their chosen constants and the rest to
// pairwise-distinct fresh constants. The 0–1 law no longer holds — the
// limit is a polynomial in the weights — but it *degenerates to it*: with
// empty preference tables the sum has one term and pref-µ = µ ∈ {0,1}.
//
// This generalizes the conditional-measure picture too: preference tables
// are the "soft" analogue of inclusion constraints (a hard IND is the
// special case of a table with total mass 1 concentrated on the target
// column, cf. Section 4's example).

// A preference table for a single null: constants with probabilities.
struct NullPreference {
  Value null;
  // Pairs (constant, probability); probabilities must be in [0,1] with sum
  // at most 1; the remainder is the "generic" fallback mass.
  std::vector<std::pair<Value, Rational>> weights;
};

// The exact limit pref-µ(Q,D,ā) under the given preferences (nulls without
// a table are fully generic). Fails if a table is malformed (weight out of
// range, duplicate constants, mass > 1, non-null key).
StatusOr<Rational> PreferenceMuLimit(const Query& query, const Database& db,
                                     const Tuple& tuple,
                                     const std::vector<NullPreference>& prefs);

// Finite-k weighted measure, by exhaustive enumeration of V^k(D) with the
// product distribution described above (each null: preferred constant c
// with probability w(c); any specific non-preferred constant of the
// enumeration with probability (1−W)/(k−|table|)). Ground truth for the
// limit; exponential in the number of nulls. Requires k large enough that
// the enumeration contains all preferred constants plus one fallback.
StatusOr<Rational> PreferenceMuK(const Query& query, const Database& db,
                                 const Tuple& tuple,
                                 const std::vector<NullPreference>& prefs,
                                 std::size_t k);

}  // namespace zeroone

#endif  // ZEROONE_CORE_PREFERENCE_H_
