#ifndef ZEROONE_CORE_MEASURE_H_
#define ZEROONE_CORE_MEASURE_H_

#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// The asymptotic measure µ(Q, D, ā) and the classical notions it refines.
//
// By Theorem 1 (the 0–1 law), for a generic query the limit
// µ(Q,D,ā) = lim_k µ^k(Q,D,ā) always exists, is 0 or 1, and equals 1 exactly
// when ā ∈ Q^naive(D). MuLimit therefore runs naïve evaluation — this is the
// cheap path; the exact finite-k machinery in support.h and the closed-form
// polynomial method in support_polynomial.h are used to *validate* this
// equality empirically in tests and benches.

// µ(Q, D, ā) ∈ {0, 1}.
int MuLimit(const Query& query, const Database& db, const Tuple& tuple);
int MuLimit(const Query& query, const Database& db);  // Boolean queries.

// ā is an almost certainly true answer (Definition 4): µ(Q,D,ā) = 1.
bool AlmostCertainlyTrue(const Query& query, const Database& db,
                         const Tuple& tuple);
// µ(Q,D,ā) = 0.
bool AlmostCertainlyFalse(const Query& query, const Database& db,
                          const Tuple& tuple);

// All almost-certainly-true answers — by Theorem 1, exactly Q^naive(D).
std::vector<Tuple> AlmostCertainAnswers(const Query& query,
                                        const Database& db);

// Certain answers with nulls (Section 2): ā with v(ā) ∈ Q(v(D)) for *every*
// valuation v. Decided exactly by checking all valuations with range in
// Const(D) ∪ C ∪ {m fresh constants}; genericity makes this restriction
// complete (the same argument as in the proof of Theorem 8 applies to any
// generic query and to violations). Exponential in the number of nulls.
bool IsCertainAnswer(const Query& query, const Database& db,
                     const Tuple& tuple);

// (Q, D): all certain answers over the active domain. Uses
// (Q,D) ⊆ Q^naive(D) (Corollary 1) to restrict candidates to naïve answers.
std::vector<Tuple> CertainAnswers(const Query& query, const Database& db);

// ā is a possible answer: Supp(Q,D,ā) ≠ ∅, decided with the same bounded
// range.
bool IsPossibleAnswer(const Query& query, const Database& db,
                      const Tuple& tuple);

// All possible answers over the active domain.
std::vector<Tuple> PossibleAnswers(const Query& query, const Database& db);

// All tuples over adom(D) of the given arity — the candidate space for
// query answers (queries return subsets of adom(D)^m). Exposed for the
// comparison machinery (Section 5), whose Best(Q,D) ranges over this space.
std::vector<Tuple> AllTuplesOverAdom(const Database& db, std::size_t arity);

}  // namespace zeroone

#endif  // ZEROONE_CORE_MEASURE_H_
