#ifndef ZEROONE_CORE_CONDITIONAL_H_
#define ZEROONE_CORE_CONDITIONAL_H_

#include <vector>

#include "common/polynomial.h"
#include "common/rational.h"
#include "constraints/constraint.h"
#include "constraints/fd.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Conditional measures under constraints (Section 4).
//
// µ(Q|Σ,D,ā) = lim_k |Supp^k(Σ ∧ Q(ā), D)| / |Supp^k(Σ, D)| — by Theorem 3
// the limit always exists and is a rational in [0,1]; by convention it is 0
// when Σ is unsatisfiable in D. Computed exactly with the
// partition-polynomial method: the limit is the ratio of leading
// coefficients (Proposition 5's FP^#P upper bound, exact here).

// Full diagnostic result of the exact computation.
struct ConditionalMeasure {
  Rational value;            // µ(Q|Σ,D,ā).
  Polynomial numerator;      // |Supp^k(Σ ∧ Q(ā), D)| as a polynomial in k.
  Polynomial denominator;    // |Supp^k(Σ, D)| as a polynomial in k.
  bool sigma_satisfiable = false;  // Σ satisfiable in D (denominator ≠ 0).
};

// Exact µ(Q|Σ,D,ā) where Σ is given as a Boolean query (use
// ConstraintSetQuery to compile a ConstraintSet).
ConditionalMeasure ComputeConditionalMu(const Query& query, const Query& sigma,
                                        const Database& db,
                                        const Tuple& tuple);

// Convenience overloads.
ConditionalMeasure ComputeConditionalMu(const Query& query,
                                        const ConstraintSet& constraints,
                                        const Database& db,
                                        const Tuple& tuple);
Rational ConditionalMu(const Query& query, const ConstraintSet& constraints,
                       const Database& db, const Tuple& tuple);
Rational ConditionalMu(const Query& query, const ConstraintSet& constraints,
                       const Database& db);  // Boolean Q.

// Finite-k conditional measure µ^k(Q|Σ,D,ā) by exhaustive enumeration
// (ground truth for tests; exponential). Returns 0 when Supp^k(Σ,D) = ∅,
// matching the paper's convention.
Rational ConditionalMuK(const Query& query, const Query& sigma,
                        const Database& db, const Tuple& tuple,
                        std::size_t k);

// µ(Σ → Q, D, ā): the measure of the implication, which Proposition 3 shows
// carries little information (it is 1 when µ(Σ,D) = 0, else µ(Q,D,ā)).
// Computed by Theorem 1 (naïve evaluation of ¬Σ ∨ Q).
int ImplicationMuLimit(const Query& query, const Query& sigma,
                       const Database& db, const Tuple& tuple);

// Theorem 5: for FD-only Σ, µ(Q|Σ,D,ā) = µ(Q, chase_Σ(D), ā) — so the
// conditional measure obeys a 0–1 law and is computable in polynomial time.
// Nulls in ā are first mapped through the chase's null mapping. Returns 0
// when the chase fails (Σ unsatisfiable in D, matching the convention).
int ConditionalMuViaChase(const Query& query,
                          const std::vector<FunctionalDependency>& fds,
                          const Database& db, const Tuple& tuple);

}  // namespace zeroone

#endif  // ZEROONE_CORE_CONDITIONAL_H_
