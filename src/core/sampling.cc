#include "core/sampling.h"

#include <cassert>
#include <cmath>
#include <random>

#include "core/support.h"

namespace zeroone {

MuEstimate EstimateMuK(const Query& query, const Database& db,
                       const Tuple& tuple, std::size_t k,
                       std::size_t samples, std::uint64_t seed) {
  assert(samples >= 1);
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  GenericInstance generic = ToGenericInstance(instance);
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, domain.size() - 1);
  MuEstimate result;
  result.samples = samples;
  for (std::size_t s = 0; s < samples; ++s) {
    Valuation v;
    for (Value null : instance.nulls) v.Bind(null, domain[pick(rng)]);
    if (generic.witness(v, v.Apply(db))) ++result.witnesses;
  }
  result.estimate =
      static_cast<double>(result.witnesses) / static_cast<double>(samples);
  // Hoeffding 95% half-width: sqrt(ln(2/0.05) / (2n)).
  result.confidence95 =
      std::sqrt(std::log(2.0 / 0.05) / (2.0 * static_cast<double>(samples)));
  return result;
}

}  // namespace zeroone
