#ifndef ZEROONE_CORE_UCQ_COMPARE_H_
#define ZEROONE_CORE_UCQ_COMPARE_H_

#include <vector>

#include "common/status.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Polynomial-time (data complexity) answer comparison for unions of
// conjunctive queries — Theorem 8. Naïve evaluation does not help here (the
// paper's R = {(1,⊥),(⊥,2)} example); instead Sep(Q,D,ā,b̄) is decided by a
// small-witness search:
//
// Sep(Q,D,ā,b̄) holds iff for some disjunct Q_i of Q there is an assignment
// of Q_i's atoms to tuples of D that unifies with ā on the free variables
// (a union-find over nulls, constants, and clause variables; two distinct
// constants in a class refute the assignment), such that the *most general*
// valuation v′ consistent with that unification — forced classes get their
// constants, every other null class a distinct fresh constant — satisfies
// v′(b̄) ∉ Q^naive(v′(D)).
//
// Choosing the most general v′ is complete: UCQs are preserved under the
// homomorphisms that specialize fresh constants, so if any valuation with
// the same forced unifications avoids membership of b̄, the most general
// one does. This mirrors the (∗) ⇔ (∗∗) characterization in the paper's
// proof (the subset D′ of ≤ p+k tuples is exactly the image of the atom
// assignment plus the tuples covering ā's components).
//
// Cost: Σ_i |D|^{p_i} assignments (with backtracking pruning) times a
// naïve-membership check — polynomial for a fixed query, versus the
// exponential-in-#nulls search needed for general FO (Theorem 6).
//
// All functions fail with an error status if the query is not a UCQ.

// Sep(Q,D,ā,b̄).
StatusOr<bool> UcqSeparates(const Query& query, const Database& db,
                            const Tuple& a, const Tuple& b);

// ā ⊴_{Q,D} b̄.
StatusOr<bool> UcqWeaklyDominated(const Query& query, const Database& db,
                                  const Tuple& a, const Tuple& b);

// ā ◁_{Q,D} b̄.
StatusOr<bool> UcqStrictlyDominated(const Query& query, const Database& db,
                                    const Tuple& a, const Tuple& b);

// Best(Q,D) restricted to the given candidates.
StatusOr<std::vector<Tuple>> UcqBestAnswersAmong(
    const Query& query, const Database& db,
    const std::vector<Tuple>& candidates);

// Best(Q,D) over adom(D)^arity.
StatusOr<std::vector<Tuple>> UcqBestAnswers(const Query& query,
                                            const Database& db);

// Best_µ(Q,D): best answers that are almost certainly true (Prop. 8's
// polynomial-time case).
StatusOr<std::vector<Tuple>> UcqBestMuAnswers(const Query& query,
                                              const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CORE_UCQ_COMPARE_H_
