#ifndef ZEROONE_CORE_SUPPORT_H_
#define ZEROONE_CORE_SUPPORT_H_

#include <cstddef>
#include <vector>

#include "common/bigint.h"
#include "common/rational.h"
#include "core/generic_instance.h"
#include "data/database.h"
#include "data/valuation.h"
#include "query/query.h"

namespace zeroone {

// Exact finite-k support computations by explicit enumeration of V^k(D)
// (Section 3.2). These are exponential in the number of nulls (k^m
// valuations) and serve as ground truth: the closed-form algorithms in
// support_polynomial.h are cross-validated against them in tests and
// benches.
//
// The enumeration {c₁, …, c_k} of Const is chosen to start with
// A = C ∪ Const(D) (query constants, then database constants), extended by
// fresh constants — the paper shows the asymptotics are independent of this
// choice, and with this choice µ^k is already enumeration-independent for
// every k ≥ |A|.

// The evaluation context shared by the finite-k measures.
struct SupportInstance {
  Query query;
  Tuple tuple;                // Arity query.arity(); may contain nulls.
  std::vector<Value> nulls;   // Null(D) ∪ nulls of ā ∪ nulls of Q's formula.
  std::vector<Value> prefix;  // A = C ∪ Const(D), deduplicated.
};

// Builds the instance for the tuple ā and query Q over D.
// Precondition: tuple.arity() == query.arity().
SupportInstance MakeSupportInstance(const Query& query, const Database& db,
                                    const Tuple& tuple);

// Lowers the first-order instance to the formalism-agnostic form of
// core/generic_instance.h (nulls + prefix + witness closure). The returned
// object owns copies of everything it needs, so it outlives the input.
GenericInstance ToGenericInstance(const SupportInstance& instance);

// |Supp^k(Q, D, ā)| and |V^k(D)| = k^m for the given k.
// Precondition: k >= instance.prefix.size() (so that A ⊆ {c₁..c_k}) and
// k >= 1 when there are nulls.
struct SupportCount {
  BigInt support;
  BigInt total;
};
SupportCount CountSupport(const SupportInstance& instance, const Database& db,
                          std::size_t k);

// µ^k(Q, D, ā) = |Supp^k(Q,D,ā)| / |V^k(D)|.
Rational MuK(const Query& query, const Database& db, const Tuple& tuple,
             std::size_t k);

// Boolean-query convenience: µ^k(Q, D).
Rational MuK(const Query& query, const Database& db, std::size_t k);

// µ^k computed with the sharded parallel counter (bit-identical to MuK;
// see CountGenericSupportParallel). Useful when k^m is large enough to
// matter but still enumerable.
Rational MuKParallel(const Query& query, const Database& db,
                     const Tuple& tuple, std::size_t k, std::size_t threads);

// The bijective variant used in the proof of Theorem 1: the proportion of
// C-bijective valuations with range in {c₁..c_k} whose application makes
// v(ā) ∈ Q(v(D)), among all valuations in V^k(D). Both counts are returned:
// the ratio support/total is µ^k_bij relative to all of V^k, and
// support/bijective is the proportion within the bijective valuations.
struct BijectiveSupportCount {
  BigInt support;    // C-bijective valuations witnessing the query.
  BigInt bijective;  // All C-bijective valuations in V^k(D).
  BigInt total;      // |V^k(D)|.
};
BijectiveSupportCount CountBijectiveSupport(const SupportInstance& instance,
                                            const Database& db,
                                            std::size_t k);

// The alternative measure m^k of Theorem 2 (equation (1)): counts distinct
// complete databases v(D) instead of valuations. The numerator counts
// {v(D) : v ∈ Supp^k(Q,D,ā)}, the denominator {v(D) : v ∈ V^k(D)}.
Rational MK(const Query& query, const Database& db, const Tuple& tuple,
            std::size_t k);
Rational MK(const Query& query, const Database& db, std::size_t k);

// The isomorphism-type variant of the measure, after the ν^k of the
// paper's 0–1-law preliminaries (Section 2): counts *isomorphism types* of
// the outcomes v(D) — two outcomes identified when a bijection of constants
// fixing A = C ∪ Const(D) maps one onto the other — rather than the
// outcomes themselves. In Fagin's logical setting ν and µ share limits; in
// this setting they do NOT, and the paper's remark after Theorem 1 explains
// why: "at some point the number of isomorphism types stabilizes". Indeed
// ν^k becomes *constant* once k ≥ |A| + m (every type is already realized),
// so ν is a type-level measure that can be any rational even without
// constraints — a concrete illustration of how the combinatorics here
// differ from classical 0–1 laws. Cost: a canonization factor of t! per
// outcome, t = #non-A constants used.
Rational NuK(const Query& query, const Database& db, const Tuple& tuple,
             std::size_t k);
Rational NuK(const Query& query, const Database& db, std::size_t k);

}  // namespace zeroone

#endif  // ZEROONE_CORE_SUPPORT_H_
