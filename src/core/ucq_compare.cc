#include "core/ucq_compare.h"

#include <cassert>
#include <map>
#include <optional>

#include "core/measure.h"
#include "data/valuation.h"
#include "query/fragments.h"
#include "query/matcher.h"

namespace zeroone {

namespace {

// Union-find over unification items (clause variables, nulls, constants)
// with class-constant annotations and an undo stack for backtracking.
class Unifier {
 public:
  // Items are encoded as (kind, id): kind 0 = clause variable, 1 = value.
  struct Item {
    int kind;
    std::size_t variable_id;
    Value value;

    static Item Var(std::size_t id) { return {0, id, Value()}; }
    static Item Val(Value v) { return {1, 0, v}; }

    friend bool operator<(const Item& a, const Item& b) {
      if (a.kind != b.kind) return a.kind < b.kind;
      if (a.kind == 0) return a.variable_id < b.variable_id;
      return a.value < b.value;
    }
  };

  std::size_t NodeOf(const Item& item) {
    auto it = index_.find(item);
    if (it != index_.end()) return it->second;
    std::size_t node = parent_.size();
    index_.emplace(item, node);
    parent_.push_back(node);
    constant_.emplace_back();
    null_.emplace_back();
    if (item.kind == 1) {
      if (item.value.is_constant()) {
        constant_[node] = item.value;
      } else {
        null_[node] = item.value;
      }
    }
    // Item creation is permanent (items exist regardless of match state);
    // only unions are undone.
    return node;
  }

  std::size_t Find(std::size_t node) const {
    while (parent_[node] != node) node = parent_[node];
    return node;
  }

  // Unifies two items. Returns false (and records nothing new that is not
  // undoable) when the classes hold distinct constants.
  bool Unify(const Item& a, const Item& b) {
    std::size_t ra = Find(NodeOf(a));
    std::size_t rb = Find(NodeOf(b));
    if (ra == rb) return true;
    if (constant_[ra] && constant_[rb] && *constant_[ra] != *constant_[rb]) {
      return false;
    }
    // Attach ra under rb; migrate annotations to the new root.
    undo_.push_back({ra, rb, constant_[rb], null_[rb]});
    parent_[ra] = rb;
    if (!constant_[rb]) constant_[rb] = constant_[ra];
    if (!null_[rb]) null_[rb] = null_[ra];
    return true;
  }

  std::size_t Mark() const { return undo_.size(); }

  void RollbackTo(std::size_t mark) {
    while (undo_.size() > mark) {
      const UndoRecord& record = undo_.back();
      parent_[record.child] = record.child;
      constant_[record.parent] = record.parent_constant;
      null_[record.parent] = record.parent_null;
      undo_.pop_back();
    }
  }

  // The constant forced on the item's class, if any.
  std::optional<Value> ForcedConstant(const Item& item) {
    return constant_[Find(NodeOf(item))];
  }

  // Root node of an item's class, for grouping.
  std::size_t RootOf(const Item& item) { return Find(NodeOf(item)); }

 private:
  struct UndoRecord {
    std::size_t child;
    std::size_t parent;
    std::optional<Value> parent_constant;
    std::optional<Value> parent_null;
  };

  std::map<Item, std::size_t> index_;
  std::vector<std::size_t> parent_;
  std::vector<std::optional<Value>> constant_;
  std::vector<std::optional<Value>> null_;
  std::vector<UndoRecord> undo_;
};

Unifier::Item TermItem(const Term& term) {
  return term.is_variable() ? Unifier::Item::Var(term.variable_id())
                            : Unifier::Item::Val(term.value());
}

// Shared context for one UcqSeparates call.
struct SeparationContext {
  const Database* db;
  UcqNormalForm ucq;
  std::vector<std::size_t> free_variables;
  Tuple a;
  Tuple b;
  std::vector<Value> fresh_pool;  // Fresh constants for free null classes.
};

// Builds the most-general valuation for the current unification state:
// every null whose class is pinned to a constant maps there; the remaining
// null classes get pairwise-distinct fresh constants.
Valuation MostGeneralValuation(Unifier* unifier,
                               const std::vector<Value>& nulls,
                               const std::vector<Value>& fresh_pool) {
  Valuation v;
  std::map<std::size_t, Value> class_fresh;
  std::size_t next_fresh = 0;
  for (Value null : nulls) {
    std::size_t root = unifier->RootOf(Unifier::Item::Val(null));
    std::optional<Value> forced =
        unifier->ForcedConstant(Unifier::Item::Val(null));
    if (forced) {
      v.Bind(null, *forced);
      continue;
    }
    auto it = class_fresh.find(root);
    if (it == class_fresh.end()) {
      assert(next_fresh < fresh_pool.size());
      it = class_fresh.emplace(root, fresh_pool[next_fresh++]).first;
    }
    v.Bind(null, it->second);
  }
  return v;
}

// Collects the nulls currently in the unifier's domain that came from the
// matched tuples and ā (i.e. the domain of v′).
template <typename Values>
void CollectNulls(const Values& tuple, std::vector<Value>* nulls) {
  for (Value v : tuple) {
    if (v.is_null()) {
      bool seen = false;
      for (Value existing : *nulls) seen = seen || existing == v;
      if (!seen) nulls->push_back(v);
    }
  }
}

// Recursive assignment of clause atoms to database tuples.
bool MatchAtoms(const SeparationContext& context,
                const ConjunctiveClause& clause, std::size_t atom_index,
                Unifier* unifier, std::vector<Value>* domain_nulls) {
  if (atom_index == clause.atoms.size()) {
    // Full assignment: build v′ and test v′(b̄) ∉ Q^naive(v′(D)).
    Valuation v = MostGeneralValuation(unifier, *domain_nulls,
                                       context.fresh_pool);
    Database valuated = v.Apply(*context.db);
    Tuple b_image = v.Apply(context.b);
    return !UcqMembership(context.ucq, context.free_variables, valuated,
                          b_image);
  }
  const CQAtom& atom = clause.atoms[atom_index];
  if (!context.db->HasRelation(atom.relation)) return false;
  const Relation& relation = context.db->relation(atom.relation);
  for (Relation::Row tuple : relation) {
    if (tuple.arity() != atom.terms.size()) continue;
    std::size_t mark = unifier->Mark();
    std::size_t nulls_before = domain_nulls->size();
    bool consistent = true;
    for (std::size_t i = 0; i < atom.terms.size() && consistent; ++i) {
      consistent = unifier->Unify(TermItem(atom.terms[i]),
                                  Unifier::Item::Val(tuple[i]));
    }
    if (consistent) {
      CollectNulls(tuple, domain_nulls);
      if (MatchAtoms(context, clause, atom_index + 1, unifier, domain_nulls)) {
        return true;
      }
    }
    unifier->RollbackTo(mark);
    domain_nulls->resize(nulls_before);
  }
  return false;
}

StatusOr<SeparationContext> MakeContext(const Query& query, const Database& db,
                                        const Tuple& a, const Tuple& b) {
  if (a.arity() != query.arity() || b.arity() != query.arity()) {
    return Status::Error("UcqSeparates: tuple arity mismatch");
  }
  StatusOr<UcqNormalForm> ucq = NormalizeUcq(*query.formula());
  if (!ucq.ok()) return ucq.status();
  SeparationContext context;
  context.db = &db;
  context.ucq = std::move(*ucq);
  context.free_variables = query.free_variables();
  context.a = a;
  context.b = b;
  // Upper bound on free null classes: nulls of D plus nulls of ā.
  std::size_t pool_size = db.Nulls().size() + a.Nulls().size();
  for (std::size_t i = 0; i < pool_size; ++i) {
    context.fresh_pool.push_back(Value::FreshConstant());
  }
  return context;
}

}  // namespace

StatusOr<bool> UcqSeparates(const Query& query, const Database& db,
                            const Tuple& a, const Tuple& b) {
  StatusOr<SeparationContext> context = MakeContext(query, db, a, b);
  if (!context.ok()) return context.status();
  for (const ConjunctiveClause& clause : context->ucq.disjuncts) {
    Unifier unifier;
    // Pin the free variables to ā's components and apply the clause's
    // equality atoms.
    bool consistent = true;
    for (std::size_t i = 0;
         i < context->free_variables.size() && consistent; ++i) {
      consistent = unifier.Unify(
          Unifier::Item::Var(context->free_variables[i]),
          Unifier::Item::Val(context->a[i]));
    }
    for (const auto& [l, r] : clause.equalities) {
      if (!consistent) break;
      consistent = unifier.Unify(TermItem(l), TermItem(r));
    }
    if (!consistent) continue;
    std::vector<Value> domain_nulls;
    CollectNulls(context->a, &domain_nulls);
    // Nulls pulled in by equality terms also belong to v′'s domain.
    for (const auto& [l, r] : clause.equalities) {
      for (const Term* t : {&l, &r}) {
        if (t->is_value() && t->value().is_null()) {
          CollectNulls(Tuple{t->value()}, &domain_nulls);
        }
      }
    }
    if (MatchAtoms(*context, clause, 0, &unifier, &domain_nulls)) {
      return true;
    }
  }
  return false;
}

StatusOr<bool> UcqWeaklyDominated(const Query& query, const Database& db,
                                  const Tuple& a, const Tuple& b) {
  StatusOr<bool> sep = UcqSeparates(query, db, a, b);
  if (!sep.ok()) return sep;
  return !*sep;
}

StatusOr<bool> UcqStrictlyDominated(const Query& query, const Database& db,
                                    const Tuple& a, const Tuple& b) {
  StatusOr<bool> ab = UcqSeparates(query, db, a, b);
  if (!ab.ok()) return ab;
  if (*ab) return false;
  return UcqSeparates(query, db, b, a);
}

StatusOr<std::vector<Tuple>> UcqBestAnswersAmong(
    const Query& query, const Database& db,
    const std::vector<Tuple>& candidates) {
  // Precompute the pairwise Sep matrix; best = not strictly dominated.
  std::vector<std::vector<bool>> sep(candidates.size(),
                                     std::vector<bool>(candidates.size()));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) {
        sep[i][j] = false;
        continue;
      }
      StatusOr<bool> s = UcqSeparates(query, db, candidates[i], candidates[j]);
      if (!s.ok()) return s.status();
      sep[i][j] = *s;
    }
  }
  std::vector<Tuple> best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      // i ◁ j ⇔ ¬Sep(i,j) ∧ Sep(j,i).
      dominated = !sep[i][j] && sep[j][i];
    }
    if (!dominated) best.push_back(candidates[i]);
  }
  return best;
}

StatusOr<std::vector<Tuple>> UcqBestAnswers(const Query& query,
                                            const Database& db) {
  return UcqBestAnswersAmong(query, db,
                             AllTuplesOverAdom(db, query.arity()));
}

StatusOr<std::vector<Tuple>> UcqBestMuAnswers(const Query& query,
                                              const Database& db) {
  StatusOr<std::vector<Tuple>> best = UcqBestAnswers(query, db);
  if (!best.ok()) return best;
  std::vector<Tuple> result;
  for (const Tuple& t : *best) {
    StatusOr<bool> member = UcqMembership(query, db, t);
    if (!member.ok()) return member.status();
    if (*member) result.push_back(t);
  }
  return result;
}

}  // namespace zeroone
