#include "core/threevalued.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "core/measure.h"

namespace zeroone {

namespace {

TruthValue Negate(TruthValue v) {
  switch (v) {
    case TruthValue::kTrue:
      return TruthValue::kFalse;
    case TruthValue::kFalse:
      return TruthValue::kTrue;
    case TruthValue::kUnknown:
      return TruthValue::kUnknown;
  }
  return TruthValue::kUnknown;
}

TruthValue MinTv(TruthValue a, TruthValue b) { return std::min(a, b); }
TruthValue MaxTv(TruthValue a, TruthValue b) { return std::max(a, b); }

using Environment = std::vector<std::optional<Value>>;

Value ResolveTerm(const Term& term, const Environment& env) {
  if (term.is_value()) return term.value();
  assert(term.variable_id() < env.size() && env[term.variable_id()] &&
         "unbound variable in 3-valued evaluation");
  return *env[term.variable_id()];
}

// t₁ = t₂ under Kleene semantics with marked nulls.
TruthValue EqualsTv(Value a, Value b) {
  if (a == b) return TruthValue::kTrue;  // Same constant or same null.
  if (a.is_constant() && b.is_constant()) return TruthValue::kFalse;
  return TruthValue::kUnknown;  // A null against anything different.
}

// R(t̄): true on syntactic membership; unknown when some tuple unifies
// (componentwise equal-or-possibly-equal); false otherwise.
TruthValue AtomTv(const Formula& atom, const Database& db,
                  const Environment& env) {
  if (!db.HasRelation(atom.relation_name())) return TruthValue::kFalse;
  std::vector<Value> values;
  values.reserve(atom.terms().size());
  for (const Term& t : atom.terms()) values.push_back(ResolveTerm(t, env));
  const Relation& relation = db.relation(atom.relation_name());
  assert(values.size() == relation.arity() && "atom arity mismatch");
  if (relation.Contains(values.data())) return TruthValue::kTrue;
  for (Relation::Row candidate : relation) {
    bool possibly_equal = true;
    for (std::size_t i = 0; i < values.size() && possibly_equal; ++i) {
      possibly_equal = EqualsTv(values[i], candidate[i]) !=
                       TruthValue::kFalse;
    }
    if (possibly_equal) return TruthValue::kUnknown;
  }
  return TruthValue::kFalse;
}

TruthValue Eval3(const Formula& formula, const Database& db,
                 const std::vector<Value>& domain, Environment* env) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
      return TruthValue::kTrue;
    case Formula::Kind::kFalse:
      return TruthValue::kFalse;
    case Formula::Kind::kAtom:
      return AtomTv(formula, db, *env);
    case Formula::Kind::kEquals:
      return EqualsTv(ResolveTerm(formula.left(), *env),
                      ResolveTerm(formula.right(), *env));
    case Formula::Kind::kNot:
      return Negate(Eval3(*formula.children()[0], db, domain, env));
    case Formula::Kind::kAnd: {
      TruthValue result = TruthValue::kTrue;
      for (const FormulaPtr& child : formula.children()) {
        result = MinTv(result, Eval3(*child, db, domain, env));
        if (result == TruthValue::kFalse) break;
      }
      return result;
    }
    case Formula::Kind::kOr: {
      TruthValue result = TruthValue::kFalse;
      for (const FormulaPtr& child : formula.children()) {
        result = MaxTv(result, Eval3(*child, db, domain, env));
        if (result == TruthValue::kTrue) break;
      }
      return result;
    }
    case Formula::Kind::kImplies:
      return MaxTv(Negate(Eval3(*formula.children()[0], db, domain, env)),
                   Eval3(*formula.children()[1], db, domain, env));
    case Formula::Kind::kExists: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      TruthValue result = TruthValue::kFalse;
      for (Value v : domain) {
        (*env)[var] = v;
        result =
            MaxTv(result, Eval3(*formula.children()[0], db, domain, env));
        if (result == TruthValue::kTrue) break;
      }
      (*env)[var] = saved;
      return result;
    }
    case Formula::Kind::kForall: {
      std::size_t var = formula.bound_variable();
      if (var >= env->size()) env->resize(var + 1);
      std::optional<Value> saved = (*env)[var];
      TruthValue result = TruthValue::kTrue;
      for (Value v : domain) {
        (*env)[var] = v;
        result =
            MinTv(result, Eval3(*formula.children()[0], db, domain, env));
        if (result == TruthValue::kFalse) break;
      }
      (*env)[var] = saved;
      return result;
    }
  }
  return TruthValue::kUnknown;
}

}  // namespace

const char* ToString(TruthValue value) {
  switch (value) {
    case TruthValue::kTrue:
      return "true";
    case TruthValue::kFalse:
      return "false";
    case TruthValue::kUnknown:
      return "unknown";
  }
  return "?";
}

TruthValue ThreeValuedMembership(const Query& query, const Database& db,
                                 const Tuple& tuple) {
  assert(tuple.arity() == query.arity());
  std::vector<Value> domain = db.ActiveDomain();
  Environment env(query.variable_count());
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    std::size_t var = query.free_variables()[i];
    if (env[var] && *env[var] != tuple[i]) {
      // Repeated output variable bound to two different values: under the
      // 3-valued reading this is the conjunction of the equalities.
      TruthValue consistency = EqualsTv(*env[var], tuple[i]);
      if (consistency == TruthValue::kFalse) return TruthValue::kFalse;
      // Possibly equal: conservative answer is unknown.
      return TruthValue::kUnknown;
    }
    env[var] = tuple[i];
  }
  return Eval3(*query.formula(), db, domain, &env);
}

std::vector<Tuple> ThreeValuedCertainApproximation(const Query& query,
                                                   const Database& db) {
  std::vector<Tuple> result;
  for (const Tuple& candidate : AllTuplesOverAdom(db, query.arity())) {
    if (ThreeValuedMembership(query, db, candidate) == TruthValue::kTrue) {
      result.push_back(candidate);
    }
  }
  return result;
}

std::vector<Tuple> ThreeValuedPossibleApproximation(const Query& query,
                                                    const Database& db) {
  std::vector<Tuple> result;
  for (const Tuple& candidate : AllTuplesOverAdom(db, query.arity())) {
    if (ThreeValuedMembership(query, db, candidate) != TruthValue::kFalse) {
      result.push_back(candidate);
    }
  }
  return result;
}

}  // namespace zeroone
