#ifndef ZEROONE_CORE_COMPARISON_H_
#define ZEROONE_CORE_COMPARISON_H_

#include <cstddef>
#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Qualitative comparison of answers by support inclusion (Section 5):
//
//   ā ⊴_{Q,D} b̄  ⇔  Supp(Q,D,ā) ⊆ Supp(Q,D,b̄)
//   ā ◁_{Q,D} b̄  ⇔  Supp(Q,D,ā) ⊂ Supp(Q,D,b̄)
//   Best(Q,D)    =  tuples with ⊆-maximal support.
//
// All decisions reduce to Sep(Q,D,ā,b̄): "Supp(ā) − Supp(b̄) ≠ ∅". For
// generic queries it suffices to search valuations whose range lies in
// A ∪ A_m, where A = C ∪ Const(D) (plus any constants of the compared
// tuples) and A_m is a set of m fresh constants, m being the number of
// relevant nulls: composing any separating valuation with a suitable
// bijection fixing A lands its range in A ∪ A_m without changing either
// membership (the argument in the proof of Theorem 8, which only uses
// genericity). The search is exponential in m — matching the
// coNP/DP-completeness of Theorem 6 — and exact.

// Sep(Q,D,ā,b̄): does some valuation witness ā but not b̄?
bool Separates(const Query& query, const Database& db, const Tuple& a,
               const Tuple& b);

// ā ⊴_{Q,D} b̄ (b̄ has at least as much support).
bool WeaklyDominated(const Query& query, const Database& db, const Tuple& a,
                     const Tuple& b);

// ā ◁_{Q,D} b̄ (b̄ has strictly more support).
bool StrictlyDominated(const Query& query, const Database& db, const Tuple& a,
                       const Tuple& b);

// The support table over the shared bounded valuation space: for each
// candidate tuple, which valuations witness it. Computing it once makes all
// pairwise comparisons bitset-subset checks — the "parallel NP oracle
// calls" of Theorem 7's P^NP[log n] algorithm, materialized.
struct SupportTable {
  std::vector<Tuple> candidates;
  // support[i][j] == true iff valuation j witnesses candidates[i].
  std::vector<std::vector<bool>> support;
  std::size_t valuation_count = 0;
};
SupportTable ComputeSupportTable(const Query& query, const Database& db,
                                 const std::vector<Tuple>& candidates);

// Best(Q,D) restricted to the given candidates: those ā with no b̄ among
// the candidates such that ā ◁ b̄.
std::vector<Tuple> BestAnswersAmong(const Query& query, const Database& db,
                                    const std::vector<Tuple>& candidates);

// Best(Q,D) over all tuples of adom(D)^arity.
std::vector<Tuple> BestAnswers(const Query& query, const Database& db);

// Best_µ(Q,D) (Section 5.2): best answers that are also almost certainly
// true (µ(Q,D,ā) = 1).
std::vector<Tuple> BestMuAnswers(const Query& query, const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CORE_COMPARISON_H_
