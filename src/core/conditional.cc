#include "core/conditional.h"

#include <cassert>

#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "query/eval.h"

namespace zeroone {

namespace {

// Σ ∧ Q(ā) as a single Boolean query. Both inputs are closed after
// substitution, so sharing variable ids is harmless (each quantifier scopes
// its own occurrences).
Query ConjoinWithSigma(const Query& query, const Query& sigma,
                       const Tuple& tuple) {
  assert(sigma.is_boolean() && "constraints must form a Boolean query");
  Query substituted = query.is_boolean() ? query : query.Substitute(tuple);
  FormulaPtr conjunction =
      Formula::And(sigma.formula(), substituted.formula());
  return Query(sigma.name() + "&" + substituted.name(), {}, conjunction,
               substituted.variable_names());
}

}  // namespace

ConditionalMeasure ComputeConditionalMu(const Query& query, const Query& sigma,
                                        const Database& db,
                                        const Tuple& tuple) {
  ConditionalMeasure result;
  Query conjunction = ConjoinWithSigma(query, sigma, tuple);
  // Use a shared prefix A so both polynomials are computed over the same
  // enumeration (the polynomials themselves are prefix-independent).
  std::vector<Value> shared_prefix = conjunction.GenericityConstants();
  result.numerator =
      ComputeSupportPolynomial(conjunction, db, Tuple{}, shared_prefix).count;
  result.denominator =
      ComputeSupportPolynomial(sigma, db, Tuple{}, shared_prefix).count;
  // Both counts must range over the same valuation space. If ā mentions
  // nulls outside Null(D) (not the usual adom(D) case), the numerator space
  // has e extra nulls; Σ does not constrain them, so the denominator count
  // over the joint space is |Supp^k(Σ,D)| · k^e.
  std::size_t numerator_nulls =
      MakeSupportInstance(conjunction, db, Tuple{}).nulls.size();
  std::size_t sigma_nulls = MakeSupportInstance(sigma, db, Tuple{}).nulls.size();
  assert(numerator_nulls >= sigma_nulls);
  if (numerator_nulls > sigma_nulls) {
    result.denominator *= Polynomial::Monomial(
        Rational(1), static_cast<unsigned>(numerator_nulls - sigma_nulls));
  }
  result.sigma_satisfiable = !result.denominator.is_zero();
  if (!result.sigma_satisfiable) {
    result.value = Rational(0);  // Paper convention for unsatisfiable Σ.
    return result;
  }
  result.value = LimitOfRatio(result.numerator, result.denominator);
  return result;
}

ConditionalMeasure ComputeConditionalMu(const Query& query,
                                        const ConstraintSet& constraints,
                                        const Database& db,
                                        const Tuple& tuple) {
  return ComputeConditionalMu(query, ConstraintSetQuery(constraints), db,
                              tuple);
}

Rational ConditionalMu(const Query& query, const ConstraintSet& constraints,
                       const Database& db, const Tuple& tuple) {
  return ComputeConditionalMu(query, constraints, db, tuple).value;
}

Rational ConditionalMu(const Query& query, const ConstraintSet& constraints,
                       const Database& db) {
  return ConditionalMu(query, constraints, db, Tuple{});
}

Rational ConditionalMuK(const Query& query, const Query& sigma,
                        const Database& db, const Tuple& tuple,
                        std::size_t k) {
  Query conjunction = ConjoinWithSigma(query, sigma, tuple);
  // Evaluate both counts over the same enumeration: extend the conjunction
  // instance's prefix (which includes both queries' constants).
  SupportInstance conjunction_instance =
      MakeSupportInstance(conjunction, db, Tuple{});
  SupportInstance sigma_instance = MakeSupportInstance(sigma, db, Tuple{});
  sigma_instance.prefix = conjunction_instance.prefix;
  sigma_instance.nulls = conjunction_instance.nulls;
  SupportCount numerator = CountSupport(conjunction_instance, db, k);
  SupportCount denominator = CountSupport(sigma_instance, db, k);
  if (denominator.support.is_zero()) return Rational(0);
  return Rational(numerator.support, denominator.support);
}

int ImplicationMuLimit(const Query& query, const Query& sigma,
                       const Database& db, const Tuple& tuple) {
  Query substituted = query.is_boolean() ? query : query.Substitute(tuple);
  Query implication(
      "implies", {},
      Formula::Implies(sigma.formula(), substituted.formula()),
      substituted.variable_names());
  return MuLimit(implication, db, Tuple{});
}

int ConditionalMuViaChase(const Query& query,
                          const std::vector<FunctionalDependency>& fds,
                          const Database& db, const Tuple& tuple) {
  ChaseResult chase = ChaseFds(fds, db);
  if (!chase.success) return 0;
  // Map the tuple's nulls through the chase (Theorem 5 is stated for
  // constant tuples; the natural extension maps merged/renamed nulls to
  // their representatives).
  std::vector<Value> mapped;
  mapped.reserve(tuple.arity());
  for (Value v : tuple) {
    auto it = chase.null_mapping.find(v);
    mapped.push_back(it == chase.null_mapping.end() ? v : it->second);
  }
  return MuLimit(query, chase.database, Tuple(std::move(mapped)));
}

}  // namespace zeroone
