#include "core/support.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/eval.h"

namespace zeroone {

namespace {

// Deduplicating append preserving order.
void AppendUnique(std::vector<Value>* out, const std::vector<Value>& values) {
  for (Value v : values) {
    bool seen = false;
    for (Value existing : *out) {
      if (existing == v) {
        seen = true;
        break;
      }
    }
    if (!seen) out->push_back(v);
  }
}

// v(ā) ∈ Q(v(D)): evaluates the instance under one valuation. Handles the
// rare case of nulls inside the query formula (a pre-substituted query) by
// rewriting the formula under v.
bool WitnessedBy(const SupportInstance& instance, const Valuation& v,
                 const Database& valuated_db, bool formula_has_nulls) {
  Tuple valuated_tuple = v.Apply(instance.tuple);
  if (!formula_has_nulls) {
    return EvaluateMembership(instance.query, valuated_db, valuated_tuple);
  }
  Query valuated(instance.query.name(), instance.query.free_variables(),
                 ApplyValuationToFormula(instance.query.formula(), v),
                 instance.query.variable_names());
  return EvaluateMembership(valuated, valuated_db, valuated_tuple);
}

}  // namespace

SupportInstance MakeSupportInstance(const Query& query, const Database& db,
                                    const Tuple& tuple) {
  assert(tuple.arity() == query.arity() && "tuple arity mismatch");
  SupportInstance instance;
  instance.query = query;
  instance.tuple = tuple;
  instance.nulls = db.Nulls();
  AppendUnique(&instance.nulls, tuple.Nulls());
  AppendUnique(&instance.nulls, query.formula()->MentionedNulls());
  instance.prefix = query.GenericityConstants();
  AppendUnique(&instance.prefix, db.Constants());
  return instance;
}

GenericInstance ToGenericInstance(const SupportInstance& instance) {
  GenericInstance generic;
  generic.nulls = instance.nulls;
  generic.prefix = instance.prefix;
  bool formula_has_nulls = !instance.query.formula()->MentionedNulls().empty();
  // The closure owns a copy of the FO instance.
  SupportInstance owned = instance;
  generic.witness = [owned, formula_has_nulls](
                        const Valuation& v, const Database& valuated) {
    return WitnessedBy(owned, v, valuated, formula_has_nulls);
  };
  return generic;
}

SupportCount CountSupport(const SupportInstance& instance, const Database& db,
                          std::size_t k) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  ZO_TRACE_SPAN("CountSupport");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  bool formula_has_nulls = !instance.query.formula()->MentionedNulls().empty();
  SupportCount count{BigInt(0), BigInt(0)};
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    count.total += BigInt(1);
    Database valuated = v.Apply(db);
    if (WitnessedBy(instance, v, valuated, formula_has_nulls)) {
      ZO_COUNTER_INC("support.witnesses_found");
      count.support += BigInt(1);
    }
  });
  return count;
}

Rational MuK(const Query& query, const Database& db, const Tuple& tuple,
             std::size_t k) {
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  SupportCount count = CountSupport(instance, db, k);
  if (count.total.is_zero()) return Rational(0);
  return Rational(count.support, count.total);
}

Rational MuK(const Query& query, const Database& db, std::size_t k) {
  return MuK(query, db, Tuple{}, k);
}

Rational MuKParallel(const Query& query, const Database& db,
                     const Tuple& tuple, std::size_t k, std::size_t threads) {
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  GenericSupportCount count = CountGenericSupportParallel(
      ToGenericInstance(instance), db, k, threads);
  if (count.total.is_zero()) return Rational(0);
  return Rational(count.support, count.total);
}

BijectiveSupportCount CountBijectiveSupport(const SupportInstance& instance,
                                            const Database& db,
                                            std::size_t k) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  ZO_TRACE_SPAN("CountBijectiveSupport");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  bool formula_has_nulls = !instance.query.formula()->MentionedNulls().empty();
  BijectiveSupportCount count{BigInt(0), BigInt(0), BigInt(0)};
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    count.total += BigInt(1);
    if (!v.IsBijectiveAvoiding(instance.prefix)) return;
    count.bijective += BigInt(1);
    Database valuated = v.Apply(db);
    if (WitnessedBy(instance, v, valuated, formula_has_nulls)) {
      ZO_COUNTER_INC("support.witnesses_found");
      count.support += BigInt(1);
    }
  });
  return count;
}

Rational MK(const Query& query, const Database& db, const Tuple& tuple,
            std::size_t k) {
  ZO_TRACE_SPAN("MK");
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();
  std::set<Database> all_outcomes;
  std::set<Database> witnessed_outcomes;
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    Database valuated = v.Apply(db);
    if (WitnessedBy(instance, v, valuated, formula_has_nulls)) {
      witnessed_outcomes.insert(valuated);
    }
    all_outcomes.insert(std::move(valuated));
  });
  if (all_outcomes.empty()) return Rational(0);
  return Rational(BigInt(static_cast<std::int64_t>(witnessed_outcomes.size())),
                  BigInt(static_cast<std::int64_t>(all_outcomes.size())));
}

Rational MK(const Query& query, const Database& db, std::size_t k) {
  return MK(query, db, Tuple{}, k);
}

namespace {

// Renames constants per the map (identity elsewhere).
Database RenameConstants(const Database& db,
                         const std::map<Value, Value>& renaming) {
  Database result(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        auto it = renaming.find(tuple[i]);
        values[i] = it == renaming.end() ? tuple[i] : it->second;
      }
      out.AddRow(values.data());
    }
    result.mutable_relation(name) = std::move(out).Build();
  }
  return result;
}

// Canonical representative of the A-fixing isomorphism type of a complete
// database: the minimum, under Database ordering, over all bijections from
// its non-A constants to a fixed slot list. The number of non-A constants
// is at most the null count, so the t! enumeration stays tiny.
Database CanonicalType(const Database& db, const std::set<Value>& a_set,
                       const std::vector<Value>& slots) {
  std::vector<Value> movable;
  for (Value v : db.Constants()) {
    if (a_set.count(v) == 0) movable.push_back(v);
  }
  assert(movable.size() <= slots.size());
  std::sort(movable.begin(), movable.end());
  Database best;
  bool first = true;
  std::vector<Value> permutation = movable;
  do {
    std::map<Value, Value> renaming;
    for (std::size_t i = 0; i < permutation.size(); ++i) {
      renaming[permutation[i]] = slots[i];
    }
    Database candidate = RenameConstants(db, renaming);
    if (first || candidate < best) {
      best = std::move(candidate);
      first = false;
    }
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  if (first) return db;  // No movable constants.
  return best;
}

}  // namespace

Rational NuK(const Query& query, const Database& db, const Tuple& tuple,
             std::size_t k) {
  ZO_TRACE_SPAN("NuK");
  SupportInstance instance = MakeSupportInstance(query, db, tuple);
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();
  std::set<Value> a_set(instance.prefix.begin(), instance.prefix.end());
  // Canonical slots: fresh constants, shared across all outcomes.
  std::vector<Value> slots;
  for (std::size_t i = 0; i < instance.nulls.size(); ++i) {
    slots.push_back(Value::FreshConstant());
  }
  std::set<Database> all_types;
  std::set<Database> witnessed_types;
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    Database valuated = v.Apply(db);
    Database canonical = CanonicalType(valuated, a_set, slots);
    if (WitnessedBy(instance, v, valuated, formula_has_nulls)) {
      witnessed_types.insert(canonical);
    }
    all_types.insert(std::move(canonical));
  });
  if (all_types.empty()) return Rational(0);
  return Rational(BigInt(static_cast<std::int64_t>(witnessed_types.size())),
                  BigInt(static_cast<std::int64_t>(all_types.size())));
}

Rational NuK(const Query& query, const Database& db, std::size_t k) {
  return NuK(query, db, Tuple{}, k);
}

}  // namespace zeroone
