#include "core/ranking.h"

#include <algorithm>

#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"

namespace zeroone {

std::vector<RankedAnswer> RankAnswersAmong(
    const Query& query, const Database& db, std::size_t k,
    const std::vector<Tuple>& candidates) {
  std::vector<RankedAnswer> ranked;
  for (const Tuple& candidate : candidates) {
    SupportInstance instance = MakeSupportInstance(query, db, candidate);
    SupportCount count = CountSupport(instance, db, k);
    if (count.support.is_zero()) continue;  // Not a possible answer.
    RankedAnswer answer;
    answer.tuple = candidate;
    answer.mu_k = Rational(count.support, count.total);
    answer.certain = count.support == count.total &&
                     IsCertainAnswer(query, db, candidate);
    answer.almost_certain = AlmostCertainlyTrue(query, db, candidate);
    ranked.push_back(std::move(answer));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedAnswer& a, const RankedAnswer& b) {
                     if (a.mu_k != b.mu_k) return b.mu_k < a.mu_k;
                     return a.tuple < b.tuple;
                   });
  return ranked;
}

std::vector<RankedAnswer> RankAnswers(const Query& query, const Database& db,
                                      std::size_t k) {
  return RankAnswersAmong(query, db, k,
                          AllTuplesOverAdom(db, query.arity()));
}

std::vector<ConditionalRankedAnswer> RankAnswersUnderConstraints(
    const Query& query, const ConstraintSet& constraints, const Database& db,
    const std::vector<Tuple>& candidates) {
  std::vector<ConditionalRankedAnswer> ranked;
  for (const Tuple& candidate : candidates) {
    ConditionalRankedAnswer answer;
    answer.tuple = candidate;
    answer.mu = ConditionalMu(query, constraints, db, candidate);
    ranked.push_back(std::move(answer));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ConditionalRankedAnswer& a,
                      const ConditionalRankedAnswer& b) {
                     if (a.mu != b.mu) return b.mu < a.mu;
                     return a.tuple < b.tuple;
                   });
  return ranked;
}

}  // namespace zeroone
