#include "core/comparison.h"

#include <cassert>

#include "core/measure.h"
#include "core/support.h"
#include "data/valuation.h"
#include "query/eval.h"

namespace zeroone {

namespace {

// The shared bounded valuation space for a set of tuples: nulls of D plus
// any tuple nulls; range A ∪ A_m with A = C ∪ Const(D) ∪ tuple constants.
struct ComparisonSpace {
  std::vector<Value> nulls;
  std::vector<Value> domain;
};

void AppendUnique(std::vector<Value>* out, const std::vector<Value>& values) {
  for (Value v : values) {
    bool seen = false;
    for (Value existing : *out) seen = seen || existing == v;
    if (!seen) out->push_back(v);
  }
}

ComparisonSpace MakeComparisonSpace(const Query& query, const Database& db,
                                    const std::vector<Tuple>& tuples) {
  ComparisonSpace space;
  space.nulls = db.Nulls();
  std::vector<Value> prefix = query.GenericityConstants();
  AppendUnique(&prefix, db.Constants());
  for (const Tuple& t : tuples) {
    AppendUnique(&space.nulls, t.Nulls());
    for (Value v : t) {
      if (v.is_constant()) AppendUnique(&prefix, {v});
    }
  }
  space.domain =
      MakeConstantEnumeration(prefix, prefix.size() + space.nulls.size());
  return space;
}

bool Witnesses(const Query& query, const Database& valuated,
               const Valuation& v, const Tuple& tuple) {
  return EvaluateMembership(query, valuated, v.Apply(tuple));
}

}  // namespace

bool Separates(const Query& query, const Database& db, const Tuple& a,
               const Tuple& b) {
  assert(a.arity() == query.arity() && b.arity() == query.arity());
  ComparisonSpace space = MakeComparisonSpace(query, db, {a, b});
  // Search for v ∈ Supp(a) − Supp(b); stop at the first.
  return !ForEachValuationUntil(
      space.nulls, space.domain, [&](const Valuation& v) {
        Database valuated = v.Apply(db);
        bool separating = Witnesses(query, valuated, v, a) &&
                          !Witnesses(query, valuated, v, b);
        return !separating;  // Keep going while not separating.
      });
}

bool WeaklyDominated(const Query& query, const Database& db, const Tuple& a,
                     const Tuple& b) {
  return !Separates(query, db, a, b);
}

bool StrictlyDominated(const Query& query, const Database& db, const Tuple& a,
                       const Tuple& b) {
  return !Separates(query, db, a, b) && Separates(query, db, b, a);
}

SupportTable ComputeSupportTable(const Query& query, const Database& db,
                                 const std::vector<Tuple>& candidates) {
  SupportTable table;
  table.candidates = candidates;
  table.support.assign(candidates.size(), {});
  ComparisonSpace space = MakeComparisonSpace(query, db, candidates);
  ForEachValuation(space.nulls, space.domain, [&](const Valuation& v) {
    Database valuated = v.Apply(db);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      table.support[i].push_back(
          Witnesses(query, valuated, v, candidates[i]));
    }
    ++table.valuation_count;
  });
  return table;
}

namespace {

// support[i] ⊆ support[j]?
bool SubsetOf(const std::vector<bool>& a, const std::vector<bool>& b) {
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (a[v] && !b[v]) return false;
  }
  return true;
}

}  // namespace

std::vector<Tuple> BestAnswersAmong(const Query& query, const Database& db,
                                    const std::vector<Tuple>& candidates) {
  SupportTable table = ComputeSupportTable(query, db, candidates);
  std::vector<Tuple> best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      // candidates[i] ◁ candidates[j]: strict support inclusion.
      dominated = SubsetOf(table.support[i], table.support[j]) &&
                  !SubsetOf(table.support[j], table.support[i]);
    }
    if (!dominated) best.push_back(candidates[i]);
  }
  return best;
}

std::vector<Tuple> BestAnswers(const Query& query, const Database& db) {
  return BestAnswersAmong(query, db, AllTuplesOverAdom(db, query.arity()));
}

std::vector<Tuple> BestMuAnswers(const Query& query, const Database& db) {
  std::vector<Tuple> best = BestAnswers(query, db);
  std::vector<Tuple> result;
  for (const Tuple& t : best) {
    if (NaiveMembership(query, db, t)) result.push_back(t);
  }
  return result;
}

}  // namespace zeroone
