#ifndef ZEROONE_CORE_GENERIC_INSTANCE_H_
#define ZEROONE_CORE_GENERIC_INSTANCE_H_

#include <functional>
#include <vector>

#include "common/bigint.h"
#include "common/polynomial.h"
#include "common/rational.h"
#include "data/database.h"
#include "data/valuation.h"

namespace zeroone {

// The measure machinery below Theorem 1/3 needs nothing from a query except
// genericity — it never looks at syntax. This header captures that minimal
// contract: an instance is (nulls, prefix A = C ∪ Const(D), witness
// predicate), where the witness decides v(ā) ∈ Q(v(D)) given the valuation
// and the valuated database. Both the first-order front end (core/support.h)
// and non-FO formalisms (datalog, src/datalog/) lower themselves to this
// form, realizing the paper's point that the 0–1 law holds far beyond FO.
struct GenericInstance {
  // The relevant nulls: Null(D) ∪ nulls of the inspected tuple.
  std::vector<Value> nulls;
  // The enumeration prefix A = C ∪ Const(D), deduplicated constants.
  std::vector<Value> prefix;
  // witness(v, v(D)) ⇔ v(ā) ∈ Q(v(D)). Must be generic: invariant under
  // permutations of Const fixing `prefix`.
  std::function<bool(const Valuation&, const Database& valuated)> witness;
};

// |Supp^k| and |V^k| by enumeration over the generic instance.
struct GenericSupportCount {
  BigInt support;
  BigInt total;
};
GenericSupportCount CountGenericSupport(const GenericInstance& instance,
                                        const Database& db, std::size_t k);

// Parallel variant: partitions the valuation space on the first null's
// value and counts shards on `threads` std::threads (clamped to the shard
// count). Results are identical to the sequential version — counting is
// associative — and the witness closure is invoked concurrently, so it must
// be thread-safe; every witness built by this library is a pure function of
// its arguments. With 0 nulls or threads <= 1 this falls back to the
// sequential path.
GenericSupportCount CountGenericSupportParallel(const GenericInstance& instance,
                                                const Database& db,
                                                std::size_t k,
                                                std::size_t threads);

// µ^k as a rational.
Rational GenericMuK(const GenericInstance& instance, const Database& db,
                    std::size_t k);

// |Supp^k| as a closed-form polynomial in k via the partition method
// (see core/support_polynomial.h for the derivation); exact for
// k ≥ |prefix|.
struct GenericSupportPolynomial {
  Polynomial count;
  std::size_t valid_from;
};
GenericSupportPolynomial ComputeGenericSupportPolynomial(
    const GenericInstance& instance, const Database& db);

// µ = lim |Supp^k| / k^m computed from the polynomial.
Rational GenericMuLimit(const GenericInstance& instance, const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CORE_GENERIC_INSTANCE_H_
