#include "core/generic_instance.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "common/cancel.h"
#include "common/partitions.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

GenericSupportCount CountGenericSupport(const GenericInstance& instance,
                                        const Database& db, std::size_t k) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  ZO_TRACE_SPAN("CountGenericSupport");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  GenericSupportCount count{BigInt(0), BigInt(0)};
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    count.total += BigInt(1);
    if (instance.witness(v, v.Apply(db))) {
      ZO_COUNTER_INC("support.witnesses_found");
      count.support += BigInt(1);
    }
  });
  return count;
}

GenericSupportCount CountGenericSupportParallel(
    const GenericInstance& instance, const Database& db, std::size_t k,
    std::size_t threads) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  if (instance.nulls.empty() || threads <= 1) {
    return CountGenericSupport(instance, db, k);
  }
  ZO_TRACE_SPAN("CountGenericSupportParallel");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  // Shard on the first null's value; the remaining nulls enumerate inside
  // each shard. Shards are independent, so plain per-thread partials
  // suffice.
  std::vector<Value> rest(instance.nulls.begin() + 1, instance.nulls.end());
  std::size_t shard_count = domain.size();
  threads = std::min(threads, shard_count);
  std::vector<BigInt> partial_support(threads, BigInt(0));
  std::vector<BigInt> partial_total(threads, BigInt(0));
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // Cancellation tokens are thread-local; re-install the calling thread's
  // token inside each worker so cancelling it stops every shard.
  CancelToken* cancel = CurrentCancelToken();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedCancelToken scoped_cancel(cancel);
      for (std::size_t shard = t; shard < shard_count; shard += threads) {
        ForEachValuation(rest, domain, [&](const Valuation& v) {
          ZO_COUNTER_INC("support.valuations_enumerated");
          Valuation full = v;
          full.Bind(instance.nulls[0], domain[shard]);
          partial_total[t] += BigInt(1);
          if (instance.witness(full, full.Apply(db))) {
            ZO_COUNTER_INC("support.witnesses_found");
            partial_support[t] += BigInt(1);
          }
        });
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  GenericSupportCount count{BigInt(0), BigInt(0)};
  for (std::size_t t = 0; t < threads; ++t) {
    count.support += partial_support[t];
    count.total += partial_total[t];
  }
  return count;
}

Rational GenericMuK(const GenericInstance& instance, const Database& db,
                    std::size_t k) {
  GenericSupportCount count = CountGenericSupport(instance, db, k);
  if (count.total.is_zero()) return Rational(0);
  return Rational(count.support, count.total);
}

GenericSupportPolynomial ComputeGenericSupportPolynomial(
    const GenericInstance& instance, const Database& db) {
  ZO_TRACE_SPAN("ComputeGenericSupportPolynomial");
  const std::vector<Value>& a_set = instance.prefix;
  const std::size_t a = a_set.size();
  const std::size_t m = instance.nulls.size();

  // One globally fresh constant per potential free block; fresh constants
  // lie outside A and Const(D), so distinct free blocks receive distinct
  // non-A values, realizing the kernel partition exactly.
  std::vector<Value> fresh;
  fresh.reserve(m);
  for (std::size_t i = 0; i < m; ++i) fresh.push_back(Value::FreshConstant());

  Polynomial result;
  ForEachSetPartition(m, [&](const SetPartition& partition) {
    ZO_COUNTER_INC("support.partitions_enumerated");
    const std::size_t t = partition.block_count;
    ForEachInjectivePartialMap(
        t, a, [&](const std::vector<std::size_t>& sigma) {
          ZO_COUNTER_INC("support.partition_maps_enumerated");
          Valuation v;
          std::size_t free_blocks = 0;
          std::vector<Value> block_value(t);
          for (std::size_t b = 0; b < t; ++b) {
            block_value[b] = sigma[b] == kUnassigned ? fresh[free_blocks++]
                                                     : a_set[sigma[b]];
          }
          for (std::size_t i = 0; i < m; ++i) {
            v.Bind(instance.nulls[i], block_value[partition.blocks[i]]);
          }
          if (instance.witness(v, v.Apply(db))) {
            ZO_COUNTER_INC("support.witnesses_found");
            result += Polynomial::FallingFactorial(
                static_cast<std::int64_t>(a),
                static_cast<unsigned>(free_blocks));
          }
        });
  });
  return GenericSupportPolynomial{std::move(result), a};
}

Rational GenericMuLimit(const GenericInstance& instance, const Database& db) {
  GenericSupportPolynomial support =
      ComputeGenericSupportPolynomial(instance, db);
  Polynomial total = Polynomial::Monomial(
      Rational(1), static_cast<unsigned>(instance.nulls.size()));
  return LimitOfRatio(support.count, total);
}

}  // namespace zeroone
