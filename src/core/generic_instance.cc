#include "core/generic_instance.h"

#include <algorithm>
#include <cassert>

#include "common/cancel.h"
#include "common/partitions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace zeroone {

GenericSupportCount CountGenericSupport(const GenericInstance& instance,
                                        const Database& db, std::size_t k) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  ZO_TRACE_SPAN("CountGenericSupport");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  GenericSupportCount count{BigInt(0), BigInt(0)};
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    ZO_COUNTER_INC("support.valuations_enumerated");
    count.total += BigInt(1);
    if (instance.witness(v, v.Apply(db))) {
      ZO_COUNTER_INC("support.witnesses_found");
      count.support += BigInt(1);
    }
  });
  return count;
}

GenericSupportCount CountGenericSupportParallel(
    const GenericInstance& instance, const Database& db, std::size_t k,
    std::size_t threads) {
  assert(k >= instance.prefix.size() &&
         "k must cover the enumeration prefix C ∪ Const(D)");
  if (instance.nulls.empty() || threads <= 1) {
    return CountGenericSupport(instance, db, k);
  }
  ZO_TRACE_SPAN("CountGenericSupportParallel");
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);
  // Shard on the first null's value; the remaining nulls enumerate inside
  // each shard. One shard per morsel on the work-stealing pool (which
  // re-installs the caller's CancelToken in every worker, so cancellation
  // still stops all shards); shards are independent, so per-morsel partials
  // summed in morsel order reproduce the serial count exactly.
  std::vector<Value> rest(instance.nulls.begin() + 1, instance.nulls.end());
  par::ForOptions options;
  options.grain = 1;
  options.max_workers = threads;
  par::ForPlan morsels = par::PlanMorsels(domain.size(), options);
  std::vector<BigInt> partial_support(morsels.morsels, BigInt(0));
  std::vector<BigInt> partial_total(morsels.morsels, BigInt(0));
  par::ParallelFor(morsels, [&](const par::Morsel& m, std::size_t) {
    for (std::size_t shard = m.begin; shard < m.end; ++shard) {
      ForEachValuation(rest, domain, [&](const Valuation& v) {
        ZO_COUNTER_INC("support.valuations_enumerated");
        Valuation full = v;
        full.Bind(instance.nulls[0], domain[shard]);
        partial_total[m.index] += BigInt(1);
        if (instance.witness(full, full.Apply(db))) {
          ZO_COUNTER_INC("support.witnesses_found");
          partial_support[m.index] += BigInt(1);
        }
      });
    }
    return true;
  });
  GenericSupportCount count{BigInt(0), BigInt(0)};
  for (std::size_t m = 0; m < morsels.morsels; ++m) {
    count.support += partial_support[m];
    count.total += partial_total[m];
  }
  return count;
}

Rational GenericMuK(const GenericInstance& instance, const Database& db,
                    std::size_t k) {
  GenericSupportCount count = CountGenericSupport(instance, db, k);
  if (count.total.is_zero()) return Rational(0);
  return Rational(count.support, count.total);
}

GenericSupportPolynomial ComputeGenericSupportPolynomial(
    const GenericInstance& instance, const Database& db) {
  ZO_TRACE_SPAN("ComputeGenericSupportPolynomial");
  const std::vector<Value>& a_set = instance.prefix;
  const std::size_t a = a_set.size();
  const std::size_t m = instance.nulls.size();

  // One globally fresh constant per potential free block; fresh constants
  // lie outside A and Const(D), so distinct free blocks receive distinct
  // non-A values, realizing the kernel partition exactly.
  std::vector<Value> fresh;
  fresh.reserve(m);
  for (std::size_t i = 0; i < m; ++i) fresh.push_back(Value::FreshConstant());

  Polynomial result;
  ForEachSetPartition(m, [&](const SetPartition& partition) {
    ZO_COUNTER_INC("support.partitions_enumerated");
    const std::size_t t = partition.block_count;
    ForEachInjectivePartialMap(
        t, a, [&](const std::vector<std::size_t>& sigma) {
          ZO_COUNTER_INC("support.partition_maps_enumerated");
          Valuation v;
          std::size_t free_blocks = 0;
          std::vector<Value> block_value(t);
          for (std::size_t b = 0; b < t; ++b) {
            block_value[b] = sigma[b] == kUnassigned ? fresh[free_blocks++]
                                                     : a_set[sigma[b]];
          }
          for (std::size_t i = 0; i < m; ++i) {
            v.Bind(instance.nulls[i], block_value[partition.blocks[i]]);
          }
          if (instance.witness(v, v.Apply(db))) {
            ZO_COUNTER_INC("support.witnesses_found");
            result += Polynomial::FallingFactorial(
                static_cast<std::int64_t>(a),
                static_cast<unsigned>(free_blocks));
          }
        });
  });
  return GenericSupportPolynomial{std::move(result), a};
}

Rational GenericMuLimit(const GenericInstance& instance, const Database& db) {
  GenericSupportPolynomial support =
      ComputeGenericSupportPolynomial(instance, db);
  Polynomial total = Polynomial::Monomial(
      Rational(1), static_cast<unsigned>(instance.nulls.size()));
  return LimitOfRatio(support.count, total);
}

}  // namespace zeroone
