#ifndef ZEROONE_CORE_SAMPLING_H_
#define ZEROONE_CORE_SAMPLING_H_

#include <cstdint>

#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Monte-Carlo estimation of µ^k(Q,D,ā).
//
// The exact computations are exponential in the number of nulls (k^m
// enumeration) or Bell(m)-shaped (partition polynomial, Proposition 5's
// FP^#P bound — and #P-hardness says nothing fundamentally cheaper exists).
// For databases with many nulls the practical tool is sampling: draw
// valuations uniformly from V^k(D) and report the witness frequency. By
// Hoeffding's inequality, `samples` draws estimate µ^k within ε with
// confidence 1 − 2·exp(−2·samples·ε²); the returned struct carries the
// half-width of the 95% confidence interval.
//
// Sampling also gives an asymptotics-free practical reading of Theorem 1:
// for large k the estimate lands near 0 or 1 according to naive evaluation.
struct MuEstimate {
  double estimate = 0.0;
  // Half-width of the 95% (Hoeffding) confidence interval.
  double confidence95 = 0.0;
  std::size_t samples = 0;
  std::size_t witnesses = 0;
};

// Estimates µ^k(Q,D,ā) from `samples` independent uniform valuations into
// the first k constants of the canonical enumeration (prefix C ∪ Const(D),
// extended with fresh constants). Precondition: k ≥ |C ∪ Const(D)|,
// samples ≥ 1.
MuEstimate EstimateMuK(const Query& query, const Database& db,
                       const Tuple& tuple, std::size_t k,
                       std::size_t samples, std::uint64_t seed);

}  // namespace zeroone

#endif  // ZEROONE_CORE_SAMPLING_H_
