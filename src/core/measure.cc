#include "core/measure.h"

#include <algorithm>
#include <cassert>

#include "common/cancel.h"
#include "core/support.h"
#include "data/valuation.h"
#include "query/eval.h"

namespace zeroone {

int MuLimit(const Query& query, const Database& db, const Tuple& tuple) {
  return NaiveMembership(query, db, tuple) ? 1 : 0;
}

int MuLimit(const Query& query, const Database& db) {
  return MuLimit(query, db, Tuple{});
}

bool AlmostCertainlyTrue(const Query& query, const Database& db,
                         const Tuple& tuple) {
  return MuLimit(query, db, tuple) == 1;
}

bool AlmostCertainlyFalse(const Query& query, const Database& db,
                          const Tuple& tuple) {
  return MuLimit(query, db, tuple) == 0;
}

std::vector<Tuple> AlmostCertainAnswers(const Query& query,
                                        const Database& db) {
  return NaiveEvaluate(query, db);
}

namespace {

// The bounded valuation domain that is complete for certainty/possibility
// checks: A = C ∪ Const(D) extended with one fresh constant per null.
struct BoundedSearch {
  SupportInstance instance;
  std::vector<Value> domain;
  // adom(D) of the unvaluated database, computed once per search; each
  // valuated membership check derives its quantification domain from this
  // instead of rescanning v(D).
  std::vector<Value> base_adom;
};

BoundedSearch MakeBoundedSearch(const Query& query, const Database& db,
                                const Tuple& tuple) {
  BoundedSearch search;
  search.instance = MakeSupportInstance(query, db, tuple);
  std::size_t range_size =
      search.instance.prefix.size() + search.instance.nulls.size();
  search.domain = MakeConstantEnumeration(search.instance.prefix, range_size);
  search.base_adom = db.ActiveDomain();
  return search;
}

// adom(v(D)) as the image of a precomputed adom(D): every value of v(D) is
// the image of a value of D, so sorting + deduplicating the image yields
// exactly what v.Apply(db).ActiveDomain() would rescan the database for
// (constants precede nulls in the Value order, matching ActiveDomain).
std::vector<Value> ValuatedDomain(const Valuation& v,
                                  const std::vector<Value>& base_adom) {
  std::vector<Value> domain;
  domain.reserve(base_adom.size());
  for (Value x : base_adom) domain.push_back(v.Apply(x));
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

bool Witnesses(const SupportInstance& instance, const Valuation& v,
               const Database& db, const std::vector<Value>& base_adom,
               bool formula_has_nulls) {
  Database valuated = v.Apply(db);
  Tuple valuated_tuple = v.Apply(instance.tuple);
  std::vector<Value> domain = ValuatedDomain(v, base_adom);
  if (!formula_has_nulls) {
    return EvaluateMembership(instance.query, valuated, valuated_tuple,
                              domain);
  }
  Query substituted(instance.query.name(), instance.query.free_variables(),
                    ApplyValuationToFormula(instance.query.formula(), v),
                    instance.query.variable_names());
  return EvaluateMembership(substituted, valuated, valuated_tuple, domain);
}

}  // namespace

bool IsCertainAnswer(const Query& query, const Database& db,
                     const Tuple& tuple) {
  BoundedSearch search = MakeBoundedSearch(query, db, tuple);
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();
  // Certain iff no valuation in the bounded space fails to witness.
  return ForEachValuationUntil(
      search.instance.nulls, search.domain, [&](const Valuation& v) {
        return Witnesses(search.instance, v, db, search.base_adom,
                         formula_has_nulls);
      });
}

bool IsPossibleAnswer(const Query& query, const Database& db,
                      const Tuple& tuple) {
  BoundedSearch search = MakeBoundedSearch(query, db, tuple);
  bool formula_has_nulls = !query.formula()->MentionedNulls().empty();
  // Possible iff some valuation witnesses; stop at the first.
  return !ForEachValuationUntil(
      search.instance.nulls, search.domain, [&](const Valuation& v) {
        return !Witnesses(search.instance, v, db, search.base_adom,
                          formula_has_nulls);
      });
}

std::vector<Tuple> CertainAnswers(const Query& query, const Database& db) {
  std::vector<Tuple> result;
  for (const Tuple& candidate : NaiveEvaluate(query, db)) {
    if (CancellationRequested()) break;
    if (IsCertainAnswer(query, db, candidate)) result.push_back(candidate);
  }
  return result;
}

// All tuples over adom(D) of the given arity (odometer enumeration).
std::vector<Tuple> AllTuplesOverAdom(const Database& db, std::size_t arity) {
  std::vector<Value> adom = db.ActiveDomain();
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  if (adom.empty()) return result;
  std::vector<std::size_t> indices(arity, 0);
  while (true) {
    std::vector<Value> values;
    values.reserve(arity);
    for (std::size_t i : indices) values.push_back(adom[i]);
    result.push_back(Tuple(std::move(values)));
    std::size_t p = 0;
    while (p < arity && ++indices[p] == adom.size()) indices[p++] = 0;
    if (p == arity) break;
  }
  return result;
}

std::vector<Tuple> PossibleAnswers(const Query& query, const Database& db) {
  std::vector<Tuple> result;
  for (const Tuple& candidate : AllTuplesOverAdom(db, query.arity())) {
    if (CancellationRequested()) break;
    if (IsPossibleAnswer(query, db, candidate)) result.push_back(candidate);
  }
  return result;
}

}  // namespace zeroone
