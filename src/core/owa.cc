#include "core/owa.h"

#include <cassert>
#include <vector>

#include "core/support.h"
#include "data/valuation.h"
#include "query/eval.h"

namespace zeroone {

namespace {

// All tuples over `domain` of the given arity.
std::vector<Tuple> AllTuples(const std::vector<Value>& domain,
                             std::size_t arity) {
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  if (domain.empty()) return result;
  std::vector<std::size_t> indices(arity, 0);
  while (true) {
    std::vector<Value> values;
    values.reserve(arity);
    for (std::size_t i : indices) values.push_back(domain[i]);
    result.push_back(Tuple(std::move(values)));
    std::size_t p = 0;
    while (p < arity && ++indices[p] == domain.size()) indices[p++] = 0;
    if (p == arity) break;
  }
  return result;
}

}  // namespace

StatusOr<Rational> OwaMK(const Query& query, const Database& db,
                         std::size_t k, std::size_t max_cells) {
  if (!query.is_boolean()) {
    return Status::Error("OwaMK: only Boolean queries are supported");
  }
  SupportInstance instance = MakeSupportInstance(query, db, Tuple{});
  if (k < instance.prefix.size()) {
    return Status::Error("OwaMK: k must cover C ∪ Const(D)");
  }
  std::vector<Value> domain = MakeConstantEnumeration(instance.prefix, k);

  // The candidate cells: every possible tuple of every relation.
  struct Cell {
    std::string relation;
    Tuple tuple;
  };
  std::vector<Cell> cells;
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : AllTuples(domain, rel.arity())) {
      cells.push_back(Cell{name, t});
    }
  }
  if (cells.size() > max_cells) {
    return Status::Error("OwaMK: 2^" + std::to_string(cells.size()) +
                         " candidate databases exceed the guard; lower k or "
                         "shrink the schema");
  }

  // Precompute the images v(D) for all valuations into the domain, as tuple
  // bitmasks over `cells` — a database E ⊇ v(D) iff mask(E) ⊇ mask(v(D)).
  auto mask_of = [&](const Database& complete) {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (complete.HasRelation(cells[i].relation) &&
          complete.relation(cells[i].relation).Contains(cells[i].tuple)) {
        mask |= std::uint64_t{1} << i;
      }
    }
    return mask;
  };
  std::vector<std::uint64_t> image_masks;
  ForEachValuation(instance.nulls, domain, [&](const Valuation& v) {
    image_masks.push_back(mask_of(v.Apply(db)));
  });

  // Enumerate all complete databases over the domain.
  BigInt member_count(0);
  BigInt satisfying_count(0);
  std::uint64_t total = std::uint64_t{1} << cells.size();
  for (std::uint64_t e = 0; e < total; ++e) {
    bool contains_some_image = false;
    for (std::uint64_t image : image_masks) {
      if ((e & image) == image) {
        contains_some_image = true;
        break;
      }
    }
    if (!contains_some_image) continue;
    member_count += BigInt(1);
    // Materialize E and evaluate Q.
    Database candidate(db.schema());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (e & (std::uint64_t{1} << i)) {
        candidate.mutable_relation(cells[i].relation).Insert(cells[i].tuple);
      }
    }
    if (EvaluateMembership(query, candidate, Tuple{})) {
      satisfying_count += BigInt(1);
    }
  }
  if (member_count.is_zero()) return Rational(0);
  return Rational(satisfying_count, member_count);
}

}  // namespace zeroone
