#ifndef ZEROONE_CORE_RANKING_H_
#define ZEROONE_CORE_RANKING_H_

#include <vector>

#include "common/rational.h"
#include "constraints/constraint.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// Ranked query answers — the user-facing synthesis of the paper's two
// refinements. The 0–1 law classifies answers only into almost-certain and
// almost-impossible; at a *fixed* k, however, µ^k(Q,D,ā) is a bona fide
// probability that grades answers smoothly (the intro example's (c2,⊥2)
// scores above (c1,⊥1) at every finite k). Ranking by µ^k refines the
// support order: Supp(ā) ⊆ Supp(b̄) implies µ^k(ā) ≤ µ^k(b̄) for every k,
// so best answers always head the list, while incomparable answers get a
// deterministic quantitative order.
struct RankedAnswer {
  Tuple tuple;
  Rational mu_k;       // Exact µ^k for the ranking's k.
  bool certain;        // Full support (µ^k = 1 for every k ≥ |A|).
  bool almost_certain; // µ = 1 (naive answer, Theorem 1).
};

// Ranks all possible answers (tuples with nonempty support) by exact µ^k,
// descending; ties broken by tuple order for determinism. Exponential in
// the number of nulls (exact computation); keep k modest.
// Precondition: k ≥ |C ∪ Const(D)|.
std::vector<RankedAnswer> RankAnswers(const Query& query, const Database& db,
                                      std::size_t k);

// Like RankAnswers but restricted to the given candidates (e.g. the naive
// answers, or a page of tuples).
std::vector<RankedAnswer> RankAnswersAmong(const Query& query,
                                           const Database& db, std::size_t k,
                                           const std::vector<Tuple>& candidates);

// Ranking under constraints: answers ordered by the exact conditional
// measure µ(Q|Σ,D,ā) (Theorem 3's limit — a rational, so the order is
// canonical and k-free). This is where the measure framework pays off most
// visibly: under an inclusion dependency the Section 4 example ranks
// (2,⊥) above (1,⊥) by 2/3 vs 1/3 — a distinction invisible to certain
// answers, naive evaluation, and the unconditional 0–1 measure alike.
// Σ-unsatisfiable databases rank everything at 0 (the paper's convention).
struct ConditionalRankedAnswer {
  Tuple tuple;
  Rational mu;  // µ(Q|Σ,D,ā), exact.
};
std::vector<ConditionalRankedAnswer> RankAnswersUnderConstraints(
    const Query& query, const ConstraintSet& constraints, const Database& db,
    const std::vector<Tuple>& candidates);

}  // namespace zeroone

#endif  // ZEROONE_CORE_RANKING_H_
