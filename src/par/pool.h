#ifndef ZEROONE_PAR_POOL_H_
#define ZEROONE_PAR_POOL_H_

// Morsel-driven intra-query parallelism (docs/parallelism.md).
//
// ParallelFor splits an index range [0, n) into contiguous morsels and
// executes them on a work-stealing team: each worker owns a deque of morsel
// indices (a packed begin/end word popped from the head by the owner and
// stolen from the tail by idle workers), so cache-friendly contiguous runs
// stay with one worker until imbalance actually materializes. Teams are
// per-call rather than a shared process-wide pool: concurrent svc requests
// never serialize behind each other's queries, quiescence is a join before
// ParallelFor returns (no leaked workers for ASan/TSan to find), and the
// thread budget composes with the executor simply by capping team width
// (ServerOptions::par_threads).
//
// Determinism contract: a morsel is a contiguous index range and morsels
// are numbered in range order, so callers that write results into
// per-morsel slots and concatenate them in morsel-index order produce
// byte-identical output to a serial run, regardless of which worker ran
// which morsel in what order. Order-free accumulations (set unions, sums)
// need no slots at all. Every consumer in this codebase uses one of those
// two shapes; the differential battery (tests/par_diff_test.cc) holds them
// to it.
//
// Cancellation and faults: the team inherits the caller's CancelToken
// (each spawned worker re-installs it, the sanctioned cross-thread pattern
// from common/cancel.h) and every morsel polls it, so deadlines and drain
// interrupt a parallel query at morsel granularity. Two fault sites:
// `par.steal.fail` makes a thief skip a victim (a scheduling perturbation —
// the skipped morsels still run on their owner), and `par.morsel.abort`
// cancels the current token and aborts the run, which svc surfaces as
// DEADLINE_EXCEEDED with the partial result discarded (the same contract
// as `plan.vm.cancel`).
//
// Serial modes: runtime `ZEROONE_PAR=off` (or SetParThreads(1)) runs the
// same morsel loop on the calling thread — same fault sites, same cancel
// polls, no threads spawned. Compile-time `-DZEROONE_PAR=OFF` replaces
// everything below with the inline serial loop so the core libraries carry
// no thread-creation symbols at all (CI's par-off job nm-checks that).

#include <cstddef>
#include <functional>

#include "common/cancel.h"

#ifndef ZEROONE_PAR_ENABLED
#define ZEROONE_PAR_ENABLED 1
#endif

namespace zeroone {
namespace par {

// One contiguous chunk of the iteration space. `index` is the morsel's
// position in range order — the determinism key for slot merges.
struct Morsel {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct ForOptions {
  // Indices per morsel; 0 = auto (about four morsels per worker, so
  // stealing has slack without shredding locality).
  std::size_t grain = 0;
  // Cap on team width; 0 = par_threads().
  std::size_t max_workers = 0;
};

// The resolved shape of one ParallelFor: callers size their per-morsel
// result slots from `morsels` before running.
struct ForPlan {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t morsels = 0;
  std::size_t workers = 1;
};

// Body returns false to abort the whole run (remaining morsels are
// skipped; ParallelFor returns false and the caller must discard any
// partial output). `worker` is the team-local worker id in [0, workers).
using MorselBody = std::function<bool(const Morsel&, std::size_t worker)>;

#if ZEROONE_PAR_ENABLED

// Effective thread budget: SetParThreads override, else ZEROONE_PAR env
// ("off"/"0"/"1" = serial, integer = that many), else hardware threads.
// Always >= 1.
std::size_t par_threads();

// Overrides the budget for this process (tests, --par-threads). 0 resets
// to the environment default. Not thread-safe against concurrent
// ParallelFor calls — set it at startup or between queries.
void SetParThreads(std::size_t threads);

// True on a thread currently executing morsels for some ParallelFor.
// Nested ParallelFor calls run inline serially on that worker.
bool InParallelWorker();

ForPlan PlanMorsels(std::size_t n, const ForOptions& options);

// Runs `body` over every morsel of `plan`. Returns true iff all morsels
// completed (no abort, no cancellation, no injected fault).
bool ParallelFor(const ForPlan& plan, const MorselBody& body);

inline bool ParallelFor(std::size_t n, const ForOptions& options,
                        const MorselBody& body) {
  return ParallelFor(PlanMorsels(n, options), body);
}

#else  // !ZEROONE_PAR_ENABLED

// Compiled-away build: a plain serial loop with the same cancellation
// granularity. No <thread>, no zeroone::par library symbols — callers
// inline everything against zeroone_common only.

inline std::size_t par_threads() { return 1; }
inline void SetParThreads(std::size_t) {}
inline bool InParallelWorker() { return false; }

inline ForPlan PlanMorsels(std::size_t n, const ForOptions& options) {
  ForPlan plan;
  plan.n = n;
  plan.grain = options.grain == 0 ? (n == 0 ? 1 : n) : options.grain;
  plan.morsels = n == 0 ? 0 : (n + plan.grain - 1) / plan.grain;
  plan.workers = 1;
  return plan;
}

inline bool ParallelFor(const ForPlan& plan, const MorselBody& body) {
  for (std::size_t m = 0; m < plan.morsels; ++m) {
    if (CancellationRequested()) return false;
    Morsel morsel;
    morsel.index = m;
    morsel.begin = m * plan.grain;
    morsel.end = morsel.begin + plan.grain < plan.n ? morsel.begin + plan.grain
                                                    : plan.n;
    if (!body(morsel, 0)) return false;
  }
  return true;
}

inline bool ParallelFor(std::size_t n, const ForOptions& options,
                        const MorselBody& body) {
  return ParallelFor(PlanMorsels(n, options), body);
}

#endif  // ZEROONE_PAR_ENABLED

}  // namespace par
}  // namespace zeroone

#endif  // ZEROONE_PAR_POOL_H_
