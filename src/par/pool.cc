#include "par/pool.h"

#if ZEROONE_PAR_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {
namespace par {
namespace {

// Hard cap on team width; protects against absurd ZEROONE_PAR values.
constexpr std::size_t kMaxThreads = 256;

thread_local bool tls_in_worker = false;

std::size_t DefaultThreads() {
  const char* env = std::getenv("ZEROONE_PAR");
  if (env != nullptr && *env != '\0') {
    std::string value(env);
    if (value == "off" || value == "OFF" || value == "0" || value == "1") {
      return 1;
    }
    std::size_t parsed = 0;
    bool numeric = true;
    for (char c : value) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
      if (parsed > kMaxThreads) {
        parsed = kMaxThreads;
        break;
      }
    }
    if (numeric && parsed > 0) return parsed;
    return 1;  // Unparseable values mean "off", never a surprise team.
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxThreads);
}

std::size_t& MutableThreads() {
  static std::size_t threads = DefaultThreads();
  return threads;
}

// One worker's deque of morsel indices, packed begin<<32|end so pop and
// steal race on a single CAS word. The owner pops from begin (keeping its
// contiguous range hot), thieves take from end.
using PackedRange = std::atomic<std::uint64_t>;

constexpr std::uint64_t Pack(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}

bool PopFront(PackedRange& range, std::uint32_t* out) {
  std::uint64_t packed = range.load(std::memory_order_acquire);
  for (;;) {
    std::uint32_t begin = static_cast<std::uint32_t>(packed >> 32);
    std::uint32_t end = static_cast<std::uint32_t>(packed);
    if (begin >= end) return false;
    if (range.compare_exchange_weak(packed, Pack(begin + 1, end),
                                    std::memory_order_acq_rel)) {
      *out = begin;
      return true;
    }
  }
}

bool PopBack(PackedRange& range, std::uint32_t* out) {
  std::uint64_t packed = range.load(std::memory_order_acquire);
  for (;;) {
    std::uint32_t begin = static_cast<std::uint32_t>(packed >> 32);
    std::uint32_t end = static_cast<std::uint32_t>(packed);
    if (begin >= end) return false;
    if (range.compare_exchange_weak(packed, Pack(begin, end - 1),
                                    std::memory_order_acq_rel)) {
      *out = end - 1;
      return true;
    }
  }
}

Morsel MorselAt(const ForPlan& plan, std::size_t index) {
  Morsel morsel;
  morsel.index = index;
  morsel.begin = index * plan.grain;
  morsel.end = std::min(morsel.begin + plan.grain, plan.n);
  return morsel;
}

// Shared state of one ParallelFor team.
struct Run {
  const ForPlan* plan = nullptr;
  const MorselBody* body = nullptr;
  CancelToken* token = nullptr;
  std::unique_ptr<PackedRange[]> queues;
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> active{0};
};

// Executes one claimed morsel; returns false when the run must stop.
bool ExecuteMorsel(Run& run, std::size_t index, std::size_t worker) {
  if (run.token != nullptr && run.token->Poll()) {
    run.abort.store(true, std::memory_order_release);
    return false;
  }
  if (ZO_FAULT_POINT("par.morsel.abort")) {
    // Mirrors plan.vm.cancel: cancel the caller's token so the dispatcher
    // discards the partial result and answers DEADLINE_EXCEEDED.
    if (run.token != nullptr) run.token->Cancel();
    run.abort.store(true, std::memory_order_release);
    return false;
  }
  run.executed.fetch_add(1, std::memory_order_relaxed);
  if (!(*run.body)(MorselAt(*run.plan, index), worker)) {
    run.abort.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

void WorkerLoop(Run& run, std::size_t worker) {
  ZO_TRACE_SPAN("par.worker");
  bool ran_any = false;
  const std::size_t workers = run.plan->workers;
  while (!run.abort.load(std::memory_order_acquire)) {
    std::uint32_t index = 0;
    if (!PopFront(run.queues[worker], &index)) {
      // Own deque drained: sweep the other deques once. A morsel absent
      // from every deque is already claimed by some worker, so an empty
      // sweep means there is nothing left to do.
      bool stole = false;
      for (std::size_t offset = 1; offset < workers && !stole; ++offset) {
        std::size_t victim = (worker + offset) % workers;
        if (ZO_FAULT_POINT("par.steal.fail")) {
          // Scheduling perturbation only: the skipped victim still drains
          // its own deque, so every morsel runs exactly once regardless.
          continue;
        }
        if (PopBack(run.queues[victim], &index)) stole = true;
      }
      if (!stole) break;
      run.steals.fetch_add(1, std::memory_order_relaxed);
    }
    ran_any = true;
    if (!ExecuteMorsel(run, index, worker)) break;
  }
  if (ran_any) run.active.fetch_add(1, std::memory_order_relaxed);
}

bool SerialFor(const ForPlan& plan, const MorselBody& body) {
  CancelToken* token = CurrentCancelToken();
  std::size_t executed = 0;
  bool ok = true;
  for (std::size_t m = 0; m < plan.morsels; ++m) {
    if (token != nullptr && token->Poll()) {
      ok = false;
      break;
    }
    if (ZO_FAULT_POINT("par.morsel.abort")) {
      if (token != nullptr) token->Cancel();
      ok = false;
      break;
    }
    ++executed;
    if (!body(MorselAt(plan, m), 0)) {
      ok = false;
      break;
    }
  }
  ZO_COUNTER_ADD("par.morsels", executed);
  return ok;
}

}  // namespace

std::size_t par_threads() { return MutableThreads(); }

void SetParThreads(std::size_t threads) {
  MutableThreads() =
      threads == 0 ? DefaultThreads() : std::min(threads, kMaxThreads);
}

bool InParallelWorker() { return tls_in_worker; }

ForPlan PlanMorsels(std::size_t n, const ForOptions& options) {
  ForPlan plan;
  plan.n = n;
  std::size_t workers = par_threads();
  if (options.max_workers != 0) workers = std::min(workers, options.max_workers);
  if (tls_in_worker) workers = 1;  // Nested parallelism runs inline.
  std::size_t grain = options.grain;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (workers * 4));
  // The packed deque word holds 32-bit morsel indices; widen the grain for
  // iteration spaces that would overflow it (> 4G morsels).
  while (n / grain >= UINT32_MAX) grain *= 2;
  plan.grain = grain;
  plan.morsels = n == 0 ? 0 : (n + grain - 1) / grain;
  plan.workers = std::max<std::size_t>(1, std::min(workers, plan.morsels));
  return plan;
}

bool ParallelFor(const ForPlan& plan, const MorselBody& body) {
  if (plan.morsels == 0) return true;
  if (plan.workers <= 1 || tls_in_worker) return SerialFor(plan, body);

  ZO_TRACE_SPAN("par.run");
  Run run;
  run.plan = &plan;
  run.body = &body;
  run.token = CurrentCancelToken();
  run.queues = std::make_unique<PackedRange[]>(plan.workers);
  // Seed each worker with a contiguous chunk of the morsel sequence so the
  // common (balanced) case never steals and preserves scan locality.
  for (std::size_t w = 0; w < plan.workers; ++w) {
    std::size_t begin = w * plan.morsels / plan.workers;
    std::size_t end = (w + 1) * plan.morsels / plan.workers;
    run.queues[w].store(Pack(static_cast<std::uint32_t>(begin),
                             static_cast<std::uint32_t>(end)),
                        std::memory_order_relaxed);
  }

  std::vector<std::thread> team;
  team.reserve(plan.workers - 1);
  for (std::size_t w = 1; w < plan.workers; ++w) {
    team.emplace_back([&run, w]() {
      // Workers inherit the caller's token (the cross-thread sharing
      // pattern from common/cancel.h) so deadlines stop every morsel.
      ScopedCancelToken scope(run.token);
      tls_in_worker = true;
      WorkerLoop(run, w);
      tls_in_worker = false;
    });
  }
  tls_in_worker = true;
  WorkerLoop(run, 0);
  tls_in_worker = false;
  for (std::thread& t : team) t.join();

  ZO_COUNTER_INC("par.runs");
  ZO_COUNTER_ADD("par.morsels", run.executed.load(std::memory_order_relaxed));
  ZO_COUNTER_ADD("par.steals", run.steals.load(std::memory_order_relaxed));
  ZO_COUNTER_ADD("par.workers_active",
                 run.active.load(std::memory_order_relaxed));
  return !run.abort.load(std::memory_order_acquire);
}

}  // namespace par
}  // namespace zeroone

#endif  // ZEROONE_PAR_ENABLED
