#ifndef ZEROONE_COMMON_RATIONAL_H_
#define ZEROONE_COMMON_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/bigint.h"

namespace zeroone {

// Exact rational number with BigInt numerator/denominator, always kept in
// lowest terms with a positive denominator. This is the value type for
// measures µ^k(Q,D), their limits, and polynomial coefficients: Theorem 3
// shows limits are arbitrary rationals, so exactness is part of the spec.
class Rational {
 public:
  // Constructs zero.
  Rational() : numerator_(0), denominator_(1) {}
  Rational(std::int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  Rational(BigInt value) : numerator_(std::move(value)), denominator_(1) {}  // NOLINT

  // Precondition: denominator is nonzero.
  Rational(BigInt numerator, BigInt denominator);
  Rational(std::int64_t numerator, std::int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_one() const {
    return numerator_ == BigInt(1) && denominator_ == BigInt(1);
  }
  int sign() const { return numerator_.sign(); }

  Rational operator-() const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  // Precondition: other is nonzero.
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

  // "p/q", or just "p" when the denominator is 1.
  std::string ToString() const;
  double ToDouble() const;

 private:
  // Divides out the gcd and normalizes the sign onto the numerator.
  void Reduce();

  BigInt numerator_;
  BigInt denominator_;  // Invariant: positive.
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_RATIONAL_H_
