#include "common/cancel.h"

namespace zeroone {

namespace {
thread_local CancelToken* current_token = nullptr;
}  // namespace

CancelToken* CurrentCancelToken() { return current_token; }

ScopedCancelToken::ScopedCancelToken(CancelToken* token)
    : previous_(current_token) {
  current_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { current_token = previous_; }

}  // namespace zeroone
