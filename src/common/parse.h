#ifndef ZEROONE_COMMON_PARSE_H_
#define ZEROONE_COMMON_PARSE_H_

// Overflow-checked decimal parsing, shared by the WAL codec, the serving
// dispatcher, and replication. A damaged on-disk or on-wire digit string
// must be rejected as corruption — never wrapped modulo 2^64 into a small
// "valid" value that then reads as a plausible version or payload size.

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/status.h"

namespace zeroone {

// Parses a non-empty run of ASCII digits as an unsigned 64-bit value.
// Rejects anything else: signs, spaces, hex, and values above 2^64-1.
inline StatusOr<std::uint64_t> ParseUint64(std::string_view text) {
  if (text.empty()) {
    return Status::Error("bad unsigned integer ''");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Error("bad unsigned integer '", text, "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return Status::Error("unsigned integer '", text, "' overflows 64 bits");
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace zeroone

#endif  // ZEROONE_COMMON_PARSE_H_
