#include "common/net.h"

#include "common/parse.h"

namespace zeroone {

StatusOr<HostPort> ParseHostPort(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    return Status::Error("bad endpoint '", text, "' (want HOST:PORT)");
  }
  std::string_view host = text.substr(0, colon);
  if (host.empty()) {
    return Status::Error("bad endpoint '", text, "': empty host");
  }
  if (host.find(':') != std::string_view::npos) {
    return Status::Error("bad endpoint '", text,
                         "': host contains ':' (IPv6 is not supported)");
  }
  ZO_ASSIGN_OR_RETURN(std::uint64_t port, ParseUint64(text.substr(colon + 1)));
  if (port == 0 || port > 65535) {
    return Status::Error("bad endpoint '", text, "': port ", port,
                         " out of range 1..65535");
  }
  HostPort endpoint;
  endpoint.host = std::string(host);
  endpoint.port = static_cast<int>(port);
  return endpoint;
}

StatusOr<std::vector<HostPort>> ParseEndpointList(std::string_view text) {
  std::vector<HostPort> endpoints;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    std::string_view segment =
        comma == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, comma - start);
    ZO_ASSIGN_OR_RETURN(HostPort endpoint, ParseHostPort(segment));
    endpoints.push_back(std::move(endpoint));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return endpoints;
}

std::string FormatHostPort(const HostPort& endpoint) {
  return StrCat(endpoint.host, ":", endpoint.port);
}

}  // namespace zeroone
