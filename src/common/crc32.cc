#include "common/crc32.h"

#include <array>

namespace zeroone {

namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (char c : data) {
    crc = (crc >> 8) ^ kCrcTable[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return ~crc;
}

}  // namespace zeroone
