#include "common/polynomial.h"

#include <cassert>
#include <ostream>
#include <utility>

namespace zeroone {

namespace {
const Rational& ZeroRational() {
  static const Rational& kZero = *new Rational(0);
  return kZero;
}
}  // namespace

Polynomial::Polynomial(std::vector<Rational> coefficients)
    : coefficients_(std::move(coefficients)) {
  Trim();
}

Polynomial Polynomial::Constant(Rational value) {
  return Polynomial({std::move(value)});
}

Polynomial Polynomial::Monomial(Rational coefficient, unsigned degree) {
  if (coefficient.is_zero()) return Polynomial();
  std::vector<Rational> coeffs(degree + 1, Rational(0));
  coeffs[degree] = std::move(coefficient);
  return Polynomial(std::move(coeffs));
}

Polynomial Polynomial::FallingFactorial(std::int64_t shift, unsigned count) {
  Polynomial result = Constant(Rational(1));
  // (x - shift - i) for i in [0, count).
  for (unsigned i = 0; i < count; ++i) {
    Polynomial factor({Rational(-(shift + static_cast<std::int64_t>(i))),
                       Rational(1)});
    result *= factor;
  }
  return result;
}

void Polynomial::Trim() {
  while (!coefficients_.empty() && coefficients_.back().is_zero()) {
    coefficients_.pop_back();
  }
}

const Rational& Polynomial::coefficient(unsigned i) const {
  if (i >= coefficients_.size()) return ZeroRational();
  return coefficients_[i];
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  if (other.coefficients_.size() > coefficients_.size()) {
    coefficients_.resize(other.coefficients_.size(), Rational(0));
  }
  for (std::size_t i = 0; i < other.coefficients_.size(); ++i) {
    coefficients_[i] += other.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  if (other.coefficients_.size() > coefficients_.size()) {
    coefficients_.resize(other.coefficients_.size(), Rational(0));
  }
  for (std::size_t i = 0; i < other.coefficients_.size(); ++i) {
    coefficients_[i] -= other.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator*=(const Polynomial& other) {
  if (is_zero() || other.is_zero()) {
    coefficients_.clear();
    return *this;
  }
  std::vector<Rational> result(
      coefficients_.size() + other.coefficients_.size() - 1, Rational(0));
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].is_zero()) continue;
    for (std::size_t j = 0; j < other.coefficients_.size(); ++j) {
      result[i + j] += coefficients_[i] * other.coefficients_[j];
    }
  }
  coefficients_ = std::move(result);
  Trim();
  return *this;
}

Polynomial& Polynomial::operator*=(const Rational& scalar) {
  if (scalar.is_zero()) {
    coefficients_.clear();
    return *this;
  }
  for (Rational& c : coefficients_) c *= scalar;
  return *this;
}

Rational Polynomial::Evaluate(const BigInt& x) const {
  // Horner's scheme.
  Rational result(0);
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    result = result * Rational(x) + coefficients_[i];
  }
  return result;
}

std::string Polynomial::ToString(const std::string& variable) const {
  if (is_zero()) return "0";
  std::string result;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    const Rational& c = coefficients_[i];
    if (c.is_zero()) continue;
    if (!result.empty()) {
      result += c.sign() < 0 ? " - " : " + ";
    } else if (c.sign() < 0) {
      result += "-";
    }
    Rational abs_c = c.sign() < 0 ? -c : c;
    bool print_coefficient = i == 0 || !abs_c.is_one();
    if (print_coefficient) result += abs_c.ToString();
    if (i > 0) {
      if (print_coefficient) result += "*";
      result += variable;
      if (i > 1) result += "^" + std::to_string(i);
    }
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
  return os << p.ToString();
}

Rational LimitOfRatio(const Polynomial& p, const Polynomial& q) {
  assert(!q.is_zero() && "LimitOfRatio: zero denominator polynomial");
  if (p.is_zero()) return Rational(0);
  assert(p.degree() <= q.degree() &&
         "LimitOfRatio: ratio diverges (numerator degree too high)");
  if (p.degree() < q.degree()) return Rational(0);
  return p.leading_coefficient() / q.leading_coefficient();
}

}  // namespace zeroone
