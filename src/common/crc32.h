#ifndef ZEROONE_COMMON_CRC32_H_
#define ZEROONE_COMMON_CRC32_H_

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
// session snapshot bodies (src/svc/snapshot.h). Table-driven, one byte at
// a time — snapshots are written once per drain/SAVE, not on a hot path.

#include <cstdint>
#include <string_view>

namespace zeroone {

// CRC of `data` continuing from `seed` (0 for a fresh checksum), so large
// bodies can be checksummed in chunks: Crc32(b, Crc32(a)) == Crc32(ab).
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_CRC32_H_
