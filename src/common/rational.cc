#include "common/rational.h"

#include <cassert>
#include <ostream>
#include <utility>

namespace zeroone {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  assert(!denominator_.is_zero() && "Rational with zero denominator");
  Reduce();
}

void Rational::Reduce() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (g != BigInt(1)) {
    numerator_ /= g;
    denominator_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational& Rational::operator+=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  return *this += -other;
}

Rational& Rational::operator*=(const Rational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  assert(!other.is_zero() && "Rational division by zero");
  numerator_ *= other.denominator_;
  denominator_ *= other.numerator_;
  Reduce();
  return *this;
}

bool operator<(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return a.numerator_ * b.denominator_ < b.numerator_ * a.denominator_;
}

std::string Rational::ToString() const {
  if (denominator_ == BigInt(1)) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace zeroone
