#ifndef ZEROONE_COMMON_POLYNOMIAL_H_
#define ZEROONE_COMMON_POLYNOMIAL_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rational.h"

namespace zeroone {

// Dense univariate polynomial with exact rational coefficients.
//
// The proof of Theorem 3 expresses the support count |Supp^k(q,D)| as a
// polynomial in k (a sum of falling factorials (k−a)_f); conditional
// measures µ(Q|Σ,D) are then limits of ratios of two such polynomials, which
// equal the ratio of leading coefficients when degrees agree. This class is
// the exact-arithmetic substrate for that computation.
class Polynomial {
 public:
  // Constructs the zero polynomial.
  Polynomial() = default;

  // Coefficients in increasing degree order: coeffs[i] multiplies x^i.
  explicit Polynomial(std::vector<Rational> coefficients);

  static Polynomial Zero() { return Polynomial(); }
  static Polynomial Constant(Rational value);
  // The monomial c·x^degree.
  static Polynomial Monomial(Rational coefficient, unsigned degree);
  // The falling factorial (x−shift)(x−shift−1)···(x−shift−count+1),
  // expanded into coefficient form. Returns 1 when count == 0.
  static Polynomial FallingFactorial(std::int64_t shift, unsigned count);

  bool is_zero() const { return coefficients_.empty(); }
  // Degree of the polynomial; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coefficients_.size()) - 1; }
  // Coefficient of x^i (zero beyond the degree).
  const Rational& coefficient(unsigned i) const;
  // Leading coefficient. Precondition: not the zero polynomial.
  const Rational& leading_coefficient() const { return coefficients_.back(); }

  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& operator*=(const Polynomial& other);
  Polynomial& operator*=(const Rational& scalar);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) {
    return a += b;
  }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) {
    return a -= b;
  }
  friend Polynomial operator*(Polynomial a, const Polynomial& b) {
    return a *= b;
  }
  friend Polynomial operator*(Polynomial a, const Rational& s) {
    return a *= s;
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coefficients_ == b.coefficients_;
  }
  friend bool operator!=(const Polynomial& a, const Polynomial& b) {
    return !(a == b);
  }

  // Evaluates at an integer point, exactly.
  Rational Evaluate(const BigInt& x) const;

  // Human-readable form like "2*k^3 - 1/2*k + 7" using the given variable
  // name (default "k", the domain-size parameter throughout the paper).
  std::string ToString(const std::string& variable = "k") const;

 private:
  void Trim();

  std::vector<Rational> coefficients_;  // coefficients_[i] multiplies x^i.
};

std::ostream& operator<<(std::ostream& os, const Polynomial& p);

// The limit of p(k)/q(k) as k → ∞, under the promise that the limit exists
// and is finite (true whenever p counts a subset of what q counts, as in
// µ(Q∧Σ|Σ): deg p <= deg q). Returns 0 if p is zero; if deg p < deg q the
// limit is 0; if degrees are equal it is the ratio of leading coefficients.
// Precondition: q is not the zero polynomial and deg p <= deg q.
Rational LimitOfRatio(const Polynomial& p, const Polynomial& q);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_POLYNOMIAL_H_
