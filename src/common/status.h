#ifndef ZEROONE_COMMON_STATUS_H_
#define ZEROONE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace zeroone {

// Lightweight error-reporting type in the spirit of absl::Status. The library
// does not use exceptions; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  // Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows `return value;`
  // and `return Status::Error(...)` from functions returning StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors. Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace zeroone

#endif  // ZEROONE_COMMON_STATUS_H_
