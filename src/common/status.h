#ifndef ZEROONE_COMMON_STATUS_H_
#define ZEROONE_COMMON_STATUS_H_

#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace zeroone {

// Concatenates its arguments into one string via operator<<, in the spirit
// of absl::StrCat. Anything streamable works: strings, numbers, chars.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream stream;
  // The void cast keeps the empty-pack case (which folds to just `stream`)
  // from tripping -Wunused-value.
  (void)(stream << ... << args);
  return stream.str();
}

// Lightweight error-reporting type in the spirit of absl::Status. The library
// does not use exceptions; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }
  // Variadic form: Status::Error("expected ", n, " columns, got ", m).
  template <typename First, typename Second, typename... Rest>
  static Status Error(const First& first, const Second& second,
                      const Rest&... rest) {
    return Error(StrCat(first, second, rest...));
  }

  bool ok() const { return ok_; }
  // Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows `return value;`
  // and `return Status::Error(...)` from functions returning StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors. Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace status_internal {

// Extracts the Status from either a Status or a StatusOr<T>, so the
// ZO_RETURN_IF_ERROR macro accepts both.
inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
const Status& ToStatus(const StatusOr<T>& status_or) {
  return status_or.status();
}

}  // namespace status_internal
}  // namespace zeroone

#define ZO_STATUS_CONCAT_INNER_(a, b) a##b
#define ZO_STATUS_CONCAT_(a, b) ZO_STATUS_CONCAT_INNER_(a, b)

// Evaluates an expression returning Status (or StatusOr) and returns its
// error status from the enclosing function on failure.
#define ZO_RETURN_IF_ERROR(expr)                                        \
  do {                                                                  \
    const auto& zo_status_or_ = (expr);                                 \
    if (!zo_status_or_.ok()) {                                          \
      return ::zeroone::status_internal::ToStatus(zo_status_or_);       \
    }                                                                   \
  } while (0)

// Evaluates `rexpr` (a StatusOr<T> expression); on success assigns the value
// to `lhs` (which may be a declaration), on failure returns the status.
#define ZO_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  ZO_ASSIGN_OR_RETURN_IMPL_(                                      \
      ZO_STATUS_CONCAT_(zo_status_or_value_, __LINE__), lhs, rexpr)

#define ZO_ASSIGN_OR_RETURN_IMPL_(temp, lhs, rexpr)               \
  auto temp = (rexpr);                                            \
  if (!temp.ok()) return temp.status();                           \
  lhs = std::move(temp).value()

#endif  // ZEROONE_COMMON_STATUS_H_
