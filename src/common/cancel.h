#ifndef ZEROONE_COMMON_CANCEL_H_
#define ZEROONE_COMMON_CANCEL_H_

// Cooperative cancellation for long-running enumeration loops.
//
// The measure/support machinery is exponential in the number of nulls, so a
// serving layer needs a way to abandon a computation whose deadline has
// passed without killing the process. The library does not use exceptions;
// instead, the enumeration loops (ForEachValuation, ForEachSetPartition,
// the datalog fixpoint, the chase) poll the *current* CancelToken — a
// thread-local pointer installed by ScopedCancelToken — and bail out early
// when it reports cancellation. A cancelled computation returns garbage or
// partial results by design: the caller that installed the token must check
// `token.cancelled()` afterwards and discard the result (zeroone::svc turns
// this into a DEADLINE_EXCEEDED response). Code that never installs a token
// pays one thread-local load and one branch per poll.
//
// Tokens are shared across threads: CountGenericSupportParallel re-installs
// the parent's token inside each worker thread, so cancelling the token
// stops every shard.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace zeroone {

// A cancellation flag with an optional absolute deadline. Thread-safe.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation explicitly (e.g. client disconnect, shutdown).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Sets the absolute deadline after which Poll()/cancelled() report true.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_micros_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  // True once Cancel() was called or the deadline has passed. Reads the
  // clock when a deadline is set; latches into the cancelled flag so later
  // calls are one relaxed load.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    std::int64_t deadline = deadline_micros_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && NowMicros() >= deadline) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Cheap periodic check for hot loops: the cancelled flag is tested on
  // every call, the clock only every kClockStride calls (per thread).
  bool Poll() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_micros_.load(std::memory_order_relaxed) == kNoDeadline) {
      return false;
    }
    thread_local std::uint32_t countdown = 0;
    if (countdown-- != 0) return false;
    countdown = kClockStride;
    return cancelled();
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;
  static constexpr std::uint32_t kClockStride = 64;

  static std::int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_micros_{kNoDeadline};
};

// The token polled by this thread's enumeration loops; nullptr (the
// default) means "never cancelled".
CancelToken* CurrentCancelToken();

// Installs `token` as the current thread's token for the enclosing scope,
// restoring the previous one on destruction. Pass nullptr to shield a scope
// from an outer token.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken* token);
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken* previous_;
};

// True when the current thread's computation should stop. The hot-loop
// check: one thread-local load and a branch when no token is installed.
inline bool CancellationRequested() {
  CancelToken* token = CurrentCancelToken();
  return token != nullptr && token->Poll();
}

}  // namespace zeroone

#endif  // ZEROONE_COMMON_CANCEL_H_
