#ifndef ZEROONE_COMMON_PARTITIONS_H_
#define ZEROONE_COMMON_PARTITIONS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/bigint.h"

namespace zeroone {

// A set partition of {0, …, n−1} in restricted-growth-string form:
// blocks[i] is the block index of element i, with blocks numbered in order
// of first appearance (blocks[0] == 0, and blocks[i] <= 1 + max of prefix).
// Partitions of the nulls of a database are the backbone of the
// partition-polynomial algorithm (proof of Theorem 3): a valuation's kernel
// is exactly such a partition.
struct SetPartition {
  std::vector<std::size_t> blocks;  // Restricted growth string.
  std::size_t block_count = 0;

  // Elements of each block, grouped: result[b] lists the members of block b.
  std::vector<std::vector<std::size_t>> Blocks() const;
};

// Invokes visitor for every set partition of {0, …, n−1}. The number of
// partitions is the Bell number B(n); n == 0 yields the single empty
// partition. The visited object is reused between calls — copy it if kept.
void ForEachSetPartition(std::size_t n,
                         const std::function<void(const SetPartition&)>& visitor);

// The Bell number B(n): how many set partitions {0,…,n−1} has. Computed via
// the Bell triangle with exact arithmetic.
BigInt BellNumber(std::size_t n);

// The Stirling number of the second kind S(n, t): partitions of an n-set
// into exactly t nonempty blocks.
BigInt StirlingSecond(std::size_t n, std::size_t t);

// Invokes visitor for every injective partial map from {0,…,domain−1} into
// {0,…,range−1}. The map is passed as a vector m of length `domain` where
// m[i] == kUnassigned means i is outside the map's domain. Used to enumerate
// the assignments of partition blocks to the "special" constants A in the
// partition-polynomial algorithm. The visited vector is reused between calls.
inline constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
void ForEachInjectivePartialMap(
    std::size_t domain, std::size_t range,
    const std::function<void(const std::vector<std::size_t>&)>& visitor);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_PARTITIONS_H_
