#include "common/partitions.h"

#include <algorithm>
#include <cassert>

#include "common/cancel.h"

namespace zeroone {

std::vector<std::vector<std::size_t>> SetPartition::Blocks() const {
  std::vector<std::vector<std::size_t>> result(block_count);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    result[blocks[i]].push_back(i);
  }
  return result;
}

namespace {

// Recursive restricted-growth-string enumeration. Returns false when a
// cancellation request stopped the enumeration early (partial visit).
bool EnumeratePartitions(std::size_t position, std::size_t used_blocks,
                         SetPartition* partition,
                         const std::function<void(const SetPartition&)>& visitor) {
  if (position == partition->blocks.size()) {
    if (CancellationRequested()) return false;
    partition->block_count = used_blocks;
    visitor(*partition);
    return true;
  }
  for (std::size_t b = 0; b <= used_blocks; ++b) {
    partition->blocks[position] = b;
    if (!EnumeratePartitions(position + 1, std::max(used_blocks, b + 1),
                             partition, visitor)) {
      return false;
    }
  }
  return true;
}

bool EnumerateInjectiveMaps(
    std::size_t position, std::size_t range, std::vector<bool>* taken,
    std::vector<std::size_t>* map,
    const std::function<void(const std::vector<std::size_t>&)>& visitor) {
  if (position == map->size()) {
    if (CancellationRequested()) return false;
    visitor(*map);
    return true;
  }
  // Leave `position` unassigned.
  (*map)[position] = kUnassigned;
  if (!EnumerateInjectiveMaps(position + 1, range, taken, map, visitor)) {
    return false;
  }
  // Or map it to each still-free target.
  for (std::size_t target = 0; target < range; ++target) {
    if ((*taken)[target]) continue;
    (*taken)[target] = true;
    (*map)[position] = target;
    bool keep_going =
        EnumerateInjectiveMaps(position + 1, range, taken, map, visitor);
    (*taken)[target] = false;
    if (!keep_going) return false;
  }
  (*map)[position] = kUnassigned;
  return true;
}

}  // namespace

void ForEachSetPartition(
    std::size_t n, const std::function<void(const SetPartition&)>& visitor) {
  SetPartition partition;
  partition.blocks.assign(n, 0);
  if (n == 0) {
    partition.block_count = 0;
    visitor(partition);
    return;
  }
  EnumeratePartitions(0, 0, &partition, visitor);
}

BigInt BellNumber(std::size_t n) {
  // Bell triangle: row 0 is [1]; each row starts with the previous row's
  // last entry, and each subsequent entry adds the entry to the left and the
  // entry above-left. B(n) is the first entry of row n.
  std::vector<BigInt> row = {BigInt(1)};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<BigInt> next;
    next.reserve(row.size() + 1);
    next.push_back(row.back());
    for (const BigInt& above : row) {
      next.push_back(next.back() + above);
    }
    row = std::move(next);
  }
  return row.front();
}

BigInt StirlingSecond(std::size_t n, std::size_t t) {
  if (t > n) return BigInt(0);
  if (n == 0) return BigInt(1);  // t == 0 here.
  if (t == 0) return BigInt(0);
  // S(n, t) = t·S(n−1, t) + S(n−1, t−1), by rows.
  std::vector<BigInt> row(t + 1, BigInt(0));
  row[0] = BigInt(1);  // S(0, 0).
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = std::min(i, t); j >= 1; --j) {
      row[j] = BigInt(static_cast<std::int64_t>(j)) * row[j] + row[j - 1];
    }
    row[0] = BigInt(0);  // S(i, 0) == 0 for i >= 1.
  }
  return row[t];
}

void ForEachInjectivePartialMap(
    std::size_t domain, std::size_t range,
    const std::function<void(const std::vector<std::size_t>&)>& visitor) {
  std::vector<std::size_t> map(domain, kUnassigned);
  std::vector<bool> taken(range, false);
  if (domain == 0) {
    visitor(map);
    return;
  }
  EnumerateInjectiveMaps(0, range, &taken, &map, visitor);
}

}  // namespace zeroone
