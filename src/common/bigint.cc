#include "common/bigint.h"

#include <cassert>
#include <cstdlib>
#include <limits>
#include <ostream>

namespace zeroone {

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Convert through unsigned to handle INT64_MIN without overflow.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude % kBase));
    magnitude /= kBase;
  }
  Trim();
}

StatusOr<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::Error("BigInt: empty string");
  bool negative = false;
  std::size_t start = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    start = 1;
  }
  if (start == text.size()) return Status::Error("BigInt: sign without digits");
  for (std::size_t i = start; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::Error("BigInt: invalid digit in '" + std::string(text) +
                           "'");
    }
  }
  BigInt result;
  // Consume 9 decimal digits at a time from the least significant end.
  std::size_t end = text.size();
  while (end > start) {
    std::size_t chunk_start =
        end >= start + kBaseDigits ? end - kBaseDigits : start;
    std::uint32_t limb = 0;
    for (std::size_t i = chunk_start; i < end; ++i) {
      limb = limb * 10 + static_cast<std::uint32_t>(text[i] - '0');
    }
    result.limbs_.push_back(limb);
    end = chunk_start;
  }
  // The loop above pushed chunks least-significant first, which is already
  // the little-endian limb order, but each chunk was appended in order, so
  // limbs_ currently holds [least chunk, ..., most chunk] — correct.
  result.negative_ = negative;
  result.Trim();
  return result;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_;
  int cmp = BigInt::CompareMagnitude(a, b);
  return a.negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(std::max(a.size(), b.size()) + 1);
  std::uint32_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()) || carry; ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    result.push_back(static_cast<std::uint32_t>(sum % kBase));
    carry = static_cast<std::uint32_t>(sum / kBase);
  }
  return result;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result = a;
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < result.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(result[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += kBase;
      borrow = 1;
    } else {
      borrow = 0;
    }
    result[i] = static_cast<std::uint32_t>(diff);
  }
  assert(borrow == 0 && "SubMagnitude requires |a| >= |b|");
  return result;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (negative_ == other.negative_) {
    limbs_ = AddMagnitude(limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(*this, other);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      limbs_ = SubMagnitude(limbs_, other.limbs_);
    } else {
      limbs_ = SubMagnitude(other.limbs_, limbs_);
      negative_ = other.negative_;
    }
  }
  Trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) { return *this += -other; }

BigInt& BigInt::operator*=(const BigInt& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<std::uint32_t> result(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size() || carry; ++j) {
      std::uint64_t current = result[i + j] + carry;
      if (j < other.limbs_.size()) {
        current += static_cast<std::uint64_t>(limbs_[i]) * other.limbs_[j];
      }
      result[i + j] = static_cast<std::uint32_t>(current % kBase);
      carry = current / kBase;
    }
  }
  limbs_ = std::move(result);
  negative_ = negative_ != other.negative_;
  Trim();
  return *this;
}

void BigInt::DivModMagnitude(const BigInt& a, const BigInt& b,
                             BigInt* quotient, BigInt* remainder) {
  assert(!b.is_zero() && "division by zero");
  quotient->limbs_.assign(a.limbs_.size(), 0);
  quotient->negative_ = false;
  BigInt current;  // Running remainder, always non-negative.
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    // current = current * base + a.limbs_[i].
    current.limbs_.insert(current.limbs_.begin(), a.limbs_[i]);
    current.Trim();
    // Binary-search the digit q in [0, base) with q*|b| <= current.
    std::uint32_t low = 0;
    std::uint32_t high = kBase - 1;
    std::uint32_t digit = 0;
    BigInt abs_b = b.Abs();
    while (low <= high) {
      std::uint32_t mid = low + (high - low) / 2;
      BigInt candidate = abs_b * BigInt(static_cast<std::int64_t>(mid));
      if (CompareMagnitude(candidate, current) <= 0) {
        digit = mid;
        if (mid == kBase - 1) break;
        low = mid + 1;
      } else {
        if (mid == 0) break;
        high = mid - 1;
      }
    }
    quotient->limbs_[i] = digit;
    if (digit != 0) {
      current -= abs_b * BigInt(static_cast<std::int64_t>(digit));
    }
  }
  quotient->Trim();
  current.negative_ = false;
  current.Trim();
  *remainder = std::move(current);
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient;
  BigInt remainder;
  DivModMagnitude(*this, other, &quotient, &remainder);
  quotient.negative_ = !quotient.is_zero() && (negative_ != other.negative_);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt quotient;
  BigInt remainder;
  DivModMagnitude(*this, other, &quotient, &remainder);
  // Truncated semantics: remainder has the dividend's sign.
  remainder.negative_ = !remainder.is_zero() && negative_;
  *this = std::move(remainder);
  return *this;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  std::string result;
  if (negative_) result.push_back('-');
  result += std::to_string(limbs_.back());
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    std::string chunk = std::to_string(limbs_[i]);
    result.append(kBaseDigits - chunk.size(), '0');
    result += chunk;
  }
  return result;
}

StatusOr<std::int64_t> BigInt::ToInt64() const {
  // Accumulate with overflow checks against int64 bounds.
  std::int64_t result = 0;
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (result > kMax / kBase) return Status::Error("BigInt: int64 overflow");
    result *= kBase;
    if (result > kMax - limbs_[i]) {
      // One legal exception: exactly INT64_MIN.
      if (negative_ && i == 0 &&
          static_cast<std::uint64_t>(result) + limbs_[i] ==
              static_cast<std::uint64_t>(kMax) + 1) {
        return std::numeric_limits<std::int64_t>::min();
      }
      return Status::Error("BigInt: int64 overflow");
    }
    result += limbs_[i];
  }
  return negative_ ? -result : result;
}

double BigInt::ToDouble() const {
  double result = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * kBase + limbs_[i];
  }
  return negative_ ? -result : result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, unsigned exponent) {
  BigInt result(1);
  BigInt acc = base;
  while (exponent != 0) {
    if (exponent & 1u) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

BigInt BigInt::Factorial(unsigned n) {
  BigInt result(1);
  for (unsigned i = 2; i <= n; ++i) result *= BigInt(static_cast<std::int64_t>(i));
  return result;
}

BigInt BigInt::FallingFactorial(const BigInt& n, unsigned count) {
  BigInt result(1);
  BigInt factor = n;
  for (unsigned i = 0; i < count; ++i) {
    result *= factor;
    factor -= BigInt(1);
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace zeroone
