#ifndef ZEROONE_COMMON_BIGINT_H_
#define ZEROONE_COMMON_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zeroone {

// Arbitrary-precision signed integer.
//
// Support counts |Supp^k(Q,D)| grow like k^m and intermediate polynomial
// coefficients can exceed 64 bits for even modest numbers of nulls, so all
// counting in the measure machinery is done with BigInt. The representation
// is sign-magnitude with base-10^9 limbs, which keeps the schoolbook
// algorithms simple and decimal printing cheap; the magnitudes involved here
// are small enough that asymptotically faster multiplication is unnecessary.
class BigInt {
 public:
  // Constructs zero.
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT: implicit by design (numeric literal use)

  // Parses a decimal string with optional leading '-'.
  static StatusOr<BigInt> FromString(std::string_view text);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  // Sign as -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  // Truncated division (rounds toward zero), matching C++ int semantics.
  // Precondition: divisor is nonzero.
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b);
  friend bool operator>(const BigInt& a, const BigInt& b) { return b < a; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return !(b < a); }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return !(a < b); }

  // Decimal representation, e.g. "-12003". Zero prints as "0".
  std::string ToString() const;

  // Value as int64 if it fits, otherwise an error.
  StatusOr<std::int64_t> ToInt64() const;

  // Value as double (may lose precision; infinities for huge magnitudes).
  double ToDouble() const;

  // Greatest common divisor of |a| and |b|; Gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  // a^e for e >= 0 (Pow(0, 0) == 1).
  static BigInt Pow(const BigInt& base, unsigned exponent);

  // n! for small n.
  static BigInt Factorial(unsigned n);

  // Falling factorial n·(n−1)···(n−count+1); returns 1 when count == 0.
  static BigInt FallingFactorial(const BigInt& n, unsigned count);

 private:
  static constexpr std::uint32_t kBase = 1000000000;  // 10^9 per limb.
  static constexpr int kBaseDigits = 9;

  // Drops leading zero limbs and canonicalizes -0 to +0.
  void Trim();
  // Compares magnitudes only: -1, 0, or +1.
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  // Magnitude arithmetic helpers (ignore signs).
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Precondition: |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Sets *quotient and *remainder such that a = q*b + r, 0 <= r < b,
  // operating on magnitudes. Precondition: b nonzero.
  static void DivModMagnitude(const BigInt& a, const BigInt& b,
                              BigInt* quotient, BigInt* remainder);

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // Little-endian base-10^9 digits.
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_BIGINT_H_
