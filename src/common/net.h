#ifndef ZEROONE_COMMON_NET_H_
#define ZEROONE_COMMON_NET_H_

// Shared parsing for network endpoints. Every surface that accepts a
// "host:port" (zeroone_server --follow, zeroone_router --backends,
// zeroone_loadgen --endpoints) goes through these helpers instead of
// hand-rolling the split, so the accepted grammar — and the rejection of
// overflowed or out-of-range ports — is identical everywhere.

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zeroone {

struct HostPort {
  std::string host;
  int port = 0;

  bool operator==(const HostPort& other) const {
    return host == other.host && port == other.port;
  }
};

// Parses "host:port". The host may not be empty or contain ':' (numeric
// IPv4 or a resolvable name; bracketed IPv6 is not supported by the
// transport). The port is overflow-checked via ParseUint64 and must lie in
// 1..65535 — 0 is rejected because every flag that takes a peer endpoint
// needs a concrete port, not "pick one".
StatusOr<HostPort> ParseHostPort(std::string_view text);

// Parses a comma-separated endpoint list ("a:1,b:2,c:3"). Empty segments
// and empty lists are rejected; order is preserved (consistent-hash rings
// are built over the list order, so it is part of the contract).
StatusOr<std::vector<HostPort>> ParseEndpointList(std::string_view text);

// "host:port" — the inverse of ParseHostPort.
std::string FormatHostPort(const HostPort& endpoint);

}  // namespace zeroone

#endif  // ZEROONE_COMMON_NET_H_
