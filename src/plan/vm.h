#ifndef ZEROONE_PLAN_VM_H_
#define ZEROONE_PLAN_VM_H_

// Switch-dispatch bytecode VM (docs/planner.md).
//
// Executes one Program against a database snapshot and a quantification
// domain. The VM polls the thread's CancelToken every few hundred
// instructions and bails out with a partial result when cancellation is
// requested — callers that install tokens (the svc layer) discard the
// result, exactly as with the interpreter's cooperative loops. The
// plan.vm.cancel fault point can force that path deterministically.

#include <vector>

#include "data/database.h"
#include "data/tuple.h"
#include "data/value.h"
#include "plan/bytecode.h"

namespace zeroone {
namespace plan {

// Runs a membership program. `inputs[i]` is the value of variable
// program.input_vars[i]. Returns the formula's truth value (false when
// cancelled mid-run).
bool ExecuteMembership(const Program& program, const Database& db,
                       const std::vector<Value>& domain,
                       const std::vector<Value>& inputs);

// Runs an enumerate program, appending each emitted answer to `answers` in
// emission order (identical to the interpreter's). Returns false when the
// run was cancelled (answers then hold a partial prefix).
bool ExecuteEnumerate(const Program& program, const Database& db,
                      const std::vector<Value>& domain,
                      std::vector<Tuple>* answers);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_VM_H_
