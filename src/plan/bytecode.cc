#include "plan/bytecode.h"

#include <cstdio>

namespace zeroone {
namespace plan {

namespace {

std::string OperandText(const RegOperand& operand) {
  if (operand.is_reg) return "r" + std::to_string(operand.reg);
  return operand.value.ToString();
}

std::string AtomText(const Program& program, std::uint16_t index) {
  const AtomAccess& atom = program.atoms[index];
  std::string out = program.relation_names[atom.relation_index] + "(";
  for (std::size_t i = 0; i < atom.columns.size(); ++i) {
    if (i > 0) out += ", ";
    const ColumnRole& col = atom.columns[i];
    switch (col.kind) {
      case ColumnRole::Kind::kConst:
        out += col.value.ToString();
        break;
      case ColumnRole::Kind::kReg:
        out += "r" + std::to_string(col.reg);
        break;
      case ColumnRole::Kind::kTarget:
        out += "*";
        break;
      case ColumnRole::Kind::kWild:
        out += "_";
        break;
    }
  }
  return out + ")";
}

}  // namespace

std::string Program::Disassemble() const {
  std::string out;
  char line[160];
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    switch (in.op) {
      case OpCode::kJump:
        std::snprintf(line, sizeof(line), "%4zu  jump -> %u\n", pc, in.t_pc);
        out += line;
        break;
      case OpCode::kHaltTrue:
        std::snprintf(line, sizeof(line), "%4zu  halt true\n", pc);
        out += line;
        break;
      case OpCode::kHaltFalse:
        std::snprintf(line, sizeof(line), "%4zu  halt false\n", pc);
        out += line;
        break;
      case OpCode::kAtomCheck:
        std::snprintf(line, sizeof(line), "%4zu  check ", pc);
        out += line;
        out += AtomText(*this, in.a);
        std::snprintf(line, sizeof(line), " ? %u : %u\n", in.t_pc, in.f_pc);
        out += line;
        break;
      case OpCode::kEquals:
        std::snprintf(line, sizeof(line), "%4zu  eq ", pc);
        out += line;
        out += OperandText(in.lhs) + " == " + OperandText(in.rhs);
        std::snprintf(line, sizeof(line), " ? %u : %u\n", in.t_pc, in.f_pc);
        out += line;
        break;
      case OpCode::kLoopDomain:
        std::snprintf(line, sizeof(line), "%4zu  loop%u: domain -> r%u\n",
                      pc, in.a, in.reg);
        out += line;
        break;
      case OpCode::kLoopCand:
        std::snprintf(line, sizeof(line), "%4zu  loop%u:%s cand ", pc, in.a,
                      (in.flags & kFlagOrdered) != 0 ? " ordered" : "");
        out += line;
        out += AtomText(*this, in.b);
        out += " -> r" + std::to_string(in.reg) + "\n";
        break;
      case OpCode::kLoopNext:
        std::snprintf(line, sizeof(line),
                      "%4zu  next loop%u -> r%u ? %u : %u\n", pc, in.a,
                      in.reg, in.t_pc, in.f_pc);
        out += line;
        break;
      case OpCode::kEmit:
        std::snprintf(line, sizeof(line), "%4zu  emit -> %u\n", pc, in.t_pc);
        out += line;
        break;
    }
  }
  return out;
}

}  // namespace plan
}  // namespace zeroone
