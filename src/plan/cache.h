#ifndef ZEROONE_PLAN_CACHE_H_
#define ZEROONE_PLAN_CACHE_H_

// Compiled-plan cache, living beside the svc result cache (svc/cache.h).
//
// Keys are opaque strings assembled by the caller; the svc layer installs a
// ScopedPlanScope whose key is "<session>\x1f<version>", and query/eval.cc
// appends the evaluation mode and the query's canonical text. Any session
// mutation bumps the version, so stale plans (whose candidate choices and
// cost estimates bake in the old database) become unreachable and age out
// of the LRU. When no scope is installed — direct library calls, whose
// callers own no version to key on — evaluation compiles fresh per call:
// compilation is O(|formula|) and cheap next to evaluation.
//
// Thread-safe; entries are shared_ptr so a hit stays valid while a racing
// eviction drops the cache's reference.

#include <cstdint>
#include <memory>
#include <string>

#include "plan/compiler.h"

namespace zeroone {
namespace plan {

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  // The process-wide cache (bounded LRU over entry count).
  static PlanCache& Global();

  // Returns the cached plan for `key`, or nullptr. Counts plan.cache_hit /
  // plan.cache_miss. The plan.cache.drop fault point turns a hit into a
  // miss, forcing a recompile.
  std::shared_ptr<const CompiledQuery> Get(const std::string& key);
  void Put(const std::string& key,
           std::shared_ptr<const CompiledQuery> plan);
  void Clear();
  Stats stats() const;

  PlanCache();
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Installs a plan-cache scope key for the current thread (mirroring
// ScopedCancelToken); CurrentPlanScope returns the innermost installed key,
// or nullptr when plans should not be cached.
class ScopedPlanScope {
 public:
  explicit ScopedPlanScope(std::string key);
  ~ScopedPlanScope();
  ScopedPlanScope(const ScopedPlanScope&) = delete;
  ScopedPlanScope& operator=(const ScopedPlanScope&) = delete;

 private:
  std::string key_;
  const std::string* previous_;
};

const std::string* CurrentPlanScope();

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_CACHE_H_
