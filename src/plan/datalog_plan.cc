#include "plan/datalog_plan.h"

#include <set>

#include "plan/cost.h"

namespace zeroone {
namespace plan {

namespace {

// Ground negated literals are O(1) containment checks that can only prune:
// schedule them as soon as they become eligible, ahead of any scan.
constexpr double kGroundNegatedCost = 0.5;

double EstimateLiteral(const BodyLiteral& literal, const Database& db,
                       const Relation* delta_relation, bool is_delta,
                       const std::set<std::size_t>& bound) {
  auto is_bound = [&](std::size_t var) { return bound.count(var) != 0; };
  if (literal.negated) return kGroundNegatedCost;
  if (!is_delta) {
    return EstimateAtomMatches(db, literal.predicate, literal.terms, is_bound);
  }
  if (delta_relation == nullptr) return 0.0;
  if (literal.terms.size() != delta_relation->arity()) {
    return static_cast<double>(delta_relation->size());
  }
  std::vector<std::size_t> bound_columns;
  for (std::size_t i = 0; i < literal.terms.size(); ++i) {
    const Term& t = literal.terms[i];
    if (t.is_value() || is_bound(t.variable_id())) bound_columns.push_back(i);
  }
  return EstimateMatches(delta_relation->Stats(), bound_columns);
}

}  // namespace

BodyOrder OrderBody(const std::vector<BodyLiteral>& body, const Database& db,
                    int delta_index, const Relation* delta_relation) {
  BodyOrder out;
  out.order.reserve(body.size());
  out.estimates.reserve(body.size());
  std::vector<char> placed(body.size(), 0);
  std::set<std::size_t> bound;
  auto ground = [&](const BodyLiteral& literal) {
    for (const Term& t : literal.terms) {
      if (t.is_variable() && bound.count(t.variable_id()) == 0) return false;
    }
    return true;
  };
  while (out.order.size() < body.size()) {
    std::size_t best = body.size();
    double best_est = 0.0;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (placed[i]) continue;
      if (body[i].negated && !ground(body[i])) continue;
      double est = EstimateLiteral(body[i], db, delta_relation,
                                   static_cast<int>(i) == delta_index, bound);
      if (best == body.size() || est < best_est) {
        best = i;
        best_est = est;
      }
    }
    if (best == body.size()) {
      // Unsafe program (non-ground negation left over): fall back to the
      // written order so evaluation still sees the same literals.
      for (std::size_t i = 0; i < body.size(); ++i) {
        if (!placed[i]) {
          best = i;
          best_est = kGroundNegatedCost;
          break;
        }
      }
    }
    placed[best] = 1;
    out.order.push_back(best);
    out.estimates.push_back(best_est);
    for (const Term& t : body[best].terms) {
      if (t.is_variable()) bound.insert(t.variable_id());
    }
  }
  return out;
}

}  // namespace plan
}  // namespace zeroone
