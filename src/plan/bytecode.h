#ifndef ZEROONE_PLAN_BYTECODE_H_
#define ZEROONE_PLAN_BYTECODE_H_

// Register-based bytecode for compiled FO evaluation (docs/planner.md has
// the instruction table).
//
// Control flow is continuation-style: every instruction names its successor
// pcs explicitly (t_pc on truth / loop body, f_pc on falsity / loop
// exhaustion), so ∧/∨/¬/→ compile to pure control-flow wiring with zero
// runtime cost. Variables are renamed to dense registers at compile time —
// each quantifier binding gets a fresh register, which makes shadowed
// variables (legal when formulas are built programmatically) a non-issue
// where the interpreter needs save/restore.
//
// Loops carry per-loop scratch state indexed by a dense loop id; the two
// instructions of a loop share it: the header (kLoopDomain/kLoopCand)
// initializes the iteration source and falls through, kLoopNext advances.

#include <cstdint>
#include <string>
#include <vector>

#include "data/relation.h"
#include "data/value.h"

namespace zeroone {
namespace plan {

// A value operand: a register or an inline constant.
struct RegOperand {
  bool is_reg = false;
  std::uint16_t reg = 0;
  Value value;  // When !is_reg.
};

// One column of a compiled atom access.
struct ColumnRole {
  enum class Kind : std::uint8_t {
    kConst,   // Probe key: inline value.
    kReg,     // Probe key: register read at access time.
    kTarget,  // Candidate loops: produces the loop value.
    kWild,    // Unconstrained.
  };
  Kind kind = Kind::kWild;
  std::uint16_t reg = 0;
  Value value;
};

// A compiled relation access, shared by membership checks (all columns
// kConst/kReg) and candidate loops (plus kTarget/kWild columns).
struct AtomAccess {
  std::uint16_t relation_index = 0;  // Into Program::relation_names.
  std::vector<ColumnRole> columns;
  Relation::Mask probe_mask = 0;  // Bits of the kConst/kReg columns.
};

enum class OpCode : std::uint8_t {
  kJump,       // pc = t_pc.
  kHaltTrue,   // Stop; result true (enumerate mode: normal completion).
  kHaltFalse,  // Stop; result false.
  kAtomCheck,  // Row membership probe of atoms[a]; t_pc / f_pc.
  kEquals,     // lhs == rhs under Value null semantics; t_pc / f_pc.
  kLoopDomain, // Init loop `a` over the full domain; falls through.
  kLoopCand,   // Init loop `a` from candidate atom access; falls through.
  kLoopNext,   // Advance loop `a`: bind reg, pc = t_pc; exhausted: f_pc.
  kEmit,       // Append output_regs as an answer tuple; pc = t_pc.
};

struct Instr {
  OpCode op = OpCode::kJump;
  std::uint16_t a = 0;    // Loop id (loop ops) or atom index (kAtomCheck).
  std::uint16_t b = 0;    // Atom index (kLoopCand).
  std::uint16_t reg = 0;  // Loop variable register.
  std::uint8_t flags = 0; // kLoopCand: kFlagOrdered.
  std::uint32_t t_pc = 0;
  std::uint32_t f_pc = 0;
  RegOperand lhs, rhs;    // kEquals.
};

// kLoopCand flag: candidates are filtered through the domain in domain
// order (output loops must preserve the interpreter's emission order);
// unordered loops keep first-seen row order.
inline constexpr std::uint8_t kFlagOrdered = 1;

struct Program {
  std::vector<Instr> code;
  std::vector<AtomAccess> atoms;
  std::vector<std::string> relation_names;
  // kEmit payload: answer column i is register output_regs[i] (repeated
  // output variables repeat the register).
  std::vector<std::uint16_t> output_regs;
  // Membership mode: register i holds the value of variable input_vars[i],
  // bound by the caller before execution.
  std::vector<std::size_t> input_vars;
  std::uint16_t num_registers = 0;
  std::uint16_t num_loops = 0;
  bool enumerate = false;

  // Human-readable listing (debugging aid; the user-facing explain text is
  // QueryPlan::ToString).
  std::string Disassemble() const;
};

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_BYTECODE_H_
