#ifndef ZEROONE_PLAN_COST_H_
#define ZEROONE_PLAN_COST_H_

// Cardinality-based cost model shared by the FO planner, the datalog body
// orderer, and the UCQ clause orderer (docs/planner.md).
//
// The model is deliberately System-R-simple: an atom access with a set of
// bound columns is estimated to match
//
//   rows(R) / Π_{c bound} distinct(R, c)
//
// tuples — independence across columns, uniformity within one. Estimates
// only pick orders among semantically equivalent alternatives, so a bad
// estimate costs time, never correctness; the differential tests in
// tests/plan_diff_test.cc hold the evaluators to that.

#include <cstddef>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "query/formula.h"

namespace zeroone {
namespace plan {

// Estimated number of rows of `stats` matching a probe that fixes the
// columns in `bound_columns` (indices into the relation). Never less than 0;
// an empty relation estimates 0 regardless of the mask.
double EstimateMatches(const RelationStats& stats,
                       const std::vector<std::size_t>& bound_columns);

// Estimated matches for an atom over `relation` where a term is "bound"
// when it is a constant or `is_bound(variable_id)` holds. Missing relations
// estimate 0. `Pred` is any bool(std::size_t) callable.
template <typename Pred>
double EstimateAtomMatches(const Database& db, const std::string& relation,
                           const std::vector<Term>& terms, Pred&& is_bound) {
  if (!db.HasRelation(relation)) return 0.0;
  const Relation& rel = db.relation(relation);
  if (terms.size() != rel.arity()) return static_cast<double>(rel.size());
  std::vector<std::size_t> bound_columns;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].is_value() || is_bound(terms[i].variable_id())) {
      bound_columns.push_back(i);
    }
  }
  return EstimateMatches(rel.Stats(), bound_columns);
}

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_COST_H_
