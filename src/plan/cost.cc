#include "plan/cost.h"

namespace zeroone {
namespace plan {

double EstimateMatches(const RelationStats& stats,
                       const std::vector<std::size_t>& bound_columns) {
  double estimate = static_cast<double>(stats.rows);
  for (std::size_t c : bound_columns) {
    if (c >= stats.distinct_per_column.size()) continue;
    std::size_t distinct = stats.distinct_per_column[c];
    if (distinct > 1) estimate /= static_cast<double>(distinct);
  }
  return estimate;
}

}  // namespace plan
}  // namespace zeroone
