#include "plan/cache.h"

#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace zeroone {
namespace plan {

namespace {

// Entry-count bound: plans are small (a few KB of instructions and atom
// descriptors), and svc sessions cycle through few distinct queries per
// version, so a modest bound holds every hot plan.
constexpr std::size_t kMaxEntries = 256;

thread_local const std::string* current_plan_scope = nullptr;

}  // namespace

struct PlanCache::Impl {
  mutable std::mutex mutex;
  // MRU-first list of (key, plan); the map points into the list.
  std::list<std::pair<std::string, std::shared_ptr<const CompiledQuery>>>
      entries;
  std::unordered_map<std::string, decltype(entries)::iterator> index;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

PlanCache::PlanCache() : impl_(std::make_unique<Impl>()) {}
PlanCache::~PlanCache() = default;

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const CompiledQuery> PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->index.find(key);
  if (it == impl_->index.end() || ZO_FAULT_POINT("plan.cache.drop")) {
    ++impl_->misses;
    ZO_COUNTER_INC("plan.cache_miss");
    return nullptr;
  }
  impl_->entries.splice(impl_->entries.begin(), impl_->entries, it->second);
  ++impl_->hits;
  ZO_COUNTER_INC("plan.cache_hit");
  return it->second->second;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CompiledQuery> plan) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    it->second->second = std::move(plan);
    impl_->entries.splice(impl_->entries.begin(), impl_->entries, it->second);
    return;
  }
  impl_->entries.emplace_front(key, std::move(plan));
  impl_->index.emplace(key, impl_->entries.begin());
  while (impl_->entries.size() > kMaxEntries) {
    impl_->index.erase(impl_->entries.back().first);
    impl_->entries.pop_back();
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries.clear();
  impl_->index.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Stats stats;
  stats.hits = impl_->hits;
  stats.misses = impl_->misses;
  stats.entries = impl_->entries.size();
  return stats;
}

ScopedPlanScope::ScopedPlanScope(std::string key)
    : key_(std::move(key)), previous_(current_plan_scope) {
  current_plan_scope = &key_;
}

ScopedPlanScope::~ScopedPlanScope() { current_plan_scope = previous_; }

const std::string* CurrentPlanScope() { return current_plan_scope; }

}  // namespace plan
}  // namespace zeroone
