#ifndef ZEROONE_PLAN_COMPILER_H_
#define ZEROONE_PLAN_COMPILER_H_

// Lowers logical plans (plan/ir.h) to bytecode (plan/bytecode.h).
//
// The compiler performs variable→register renaming (a fresh register per
// quantifier binding), resolves plan-time candidate choices into AtomAccess
// descriptors, and wires the continuation-style control flow. Compilation
// is O(|formula|) and allocation-light by design: the measure/support
// machinery compiles substituted formulas once per valuation, so a slow
// compiler would dominate exactly the workloads the VM accelerates.

#include <string>
#include <vector>

#include "data/database.h"
#include "plan/bytecode.h"
#include "plan/ir.h"
#include "query/formula.h"

namespace zeroone {
namespace plan {

struct CompiledQuery {
  Program program;
  std::string explain;  // QueryPlan::ToString() of the source plan.
};

// Plans and compiles `formula` against `db` in one step. Enumerate mode
// produces a program whose kEmit instructions stream answer tuples in the
// interpreter's emission order; membership mode produces a boolean program
// whose input registers (program.input_vars) the caller binds. Increments
// plan.compile and runs under a plan.compile trace span.
CompiledQuery CompileFormulaQuery(const Formula& formula,
                                  const std::vector<std::size_t>& free_variables,
                                  std::size_t variable_count,
                                  std::vector<std::string> variable_names,
                                  const Database& db, bool enumerate);

// Lowers an already-built plan (exposed for tests and explain paths).
Program CompilePlan(const QueryPlan& plan);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_COMPILER_H_
