#include "plan/vm.h"

#include <cassert>
#include <cstdint>
#include <unordered_set>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {
namespace plan {

namespace {

std::uint64_t PackValue(Value v) {
  return (static_cast<std::uint64_t>(v.kind()) << 32) | v.id();
}

// Iteration state of one loop, indexed by the loop id. Candidate loops own
// their value vector (reused across re-entries to avoid re-allocation);
// domain loops borrow the caller's domain.
struct LoopState {
  const std::vector<Value>* source = nullptr;
  std::vector<Value> values;
  std::size_t pos = 0;
};

bool Run(const Program& program, const Database& db,
         const std::vector<Value>& domain, const std::vector<Value>& inputs,
         std::vector<Tuple>* answers) {
  ZO_TRACE_SPAN("plan.exec");
  ZO_COUNTER_INC("plan.exec");
  // Deterministic fault: a poisoned evaluation cancels its own token, which
  // drives the caller's discard path (svc answers DEADLINE_EXCEEDED).
  if (ZO_FAULT_POINT("plan.vm.cancel")) {
    if (CancelToken* token = CurrentCancelToken()) token->Cancel();
  }

  // Resolve relation names once per execution; plans are compiled against
  // the same database version they run on, so names and arities agree.
  std::vector<const Relation*> relations(program.relation_names.size());
  for (std::size_t i = 0; i < relations.size(); ++i) {
    relations[i] = db.HasRelation(program.relation_names[i])
                       ? &db.relation(program.relation_names[i])
                       : nullptr;
  }

  std::vector<Value> regs(program.num_registers);
  assert(inputs.size() <= regs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) regs[i] = inputs[i];

  std::vector<LoopState> loops(program.num_loops);
  // Membership set of the quantification domain, built lazily for
  // unordered candidate loops (candidate values must lie in the domain;
  // ordered loops get that for free from the domain-order sweep).
  std::unordered_set<std::uint64_t> domain_set;
  bool domain_set_built = false;
  std::unordered_set<std::uint64_t> seen;
  std::vector<Value> key;
  Value check_stack[8];
  std::vector<Value> check_heap;

  std::uint64_t steps = 0;
  std::uint32_t pc = 0;
  for (;;) {
    if ((++steps & 0xFF) == 0 && CancellationRequested()) {
      ZO_COUNTER_ADD("plan.vm.steps", steps);
      return false;
    }
    const Instr& in = program.code[pc];
    switch (in.op) {
      case OpCode::kJump:
        pc = in.t_pc;
        break;
      case OpCode::kHaltTrue:
        ZO_COUNTER_ADD("plan.vm.steps", steps);
        return true;
      case OpCode::kHaltFalse:
        ZO_COUNTER_ADD("plan.vm.steps", steps);
        return false;
      case OpCode::kAtomCheck: {
        const AtomAccess& atom = program.atoms[in.a];
        const Relation* rel = relations[atom.relation_index];
        bool hit = false;
        if (rel != nullptr) {
          assert(atom.columns.size() == rel->arity() &&
                 "atom arity mismatch");
          Value* values = check_stack;
          if (atom.columns.size() > 8) {
            check_heap.resize(atom.columns.size());
            values = check_heap.data();
          }
          for (std::size_t i = 0; i < atom.columns.size(); ++i) {
            const ColumnRole& col = atom.columns[i];
            values[i] = col.kind == ColumnRole::Kind::kConst ? col.value
                                                             : regs[col.reg];
          }
          hit = rel->Contains(values);
        }
        pc = hit ? in.t_pc : in.f_pc;
        break;
      }
      case OpCode::kEquals: {
        Value lhs = in.lhs.is_reg ? regs[in.lhs.reg] : in.lhs.value;
        Value rhs = in.rhs.is_reg ? regs[in.rhs.reg] : in.rhs.value;
        pc = lhs == rhs ? in.t_pc : in.f_pc;
        break;
      }
      case OpCode::kLoopDomain: {
        LoopState& loop = loops[in.a];
        loop.source = &domain;
        loop.pos = 0;
        ++pc;
        break;
      }
      case OpCode::kLoopCand: {
        LoopState& loop = loops[in.a];
        loop.source = nullptr;
        loop.values.clear();
        loop.pos = 0;
        const AtomAccess& atom = program.atoms[in.b];
        const Relation* rel = relations[atom.relation_index];
        bool ordered = (in.flags & kFlagOrdered) != 0;
        if (rel != nullptr) {
          if (!ordered && !domain_set_built) {
            domain_set.reserve(domain.size() * 2);
            for (Value v : domain) domain_set.insert(PackValue(v));
            domain_set_built = true;
          }
          key.clear();
          for (const ColumnRole& col : atom.columns) {
            if (col.kind == ColumnRole::Kind::kConst) {
              key.push_back(col.value);
            } else if (col.kind == ColumnRole::Kind::kReg) {
              key.push_back(regs[col.reg]);
            }
          }
          seen.clear();
          auto consider = [&](Relation::Row row) {
            Value x;
            bool first = true;
            for (std::size_t i = 0; i < atom.columns.size(); ++i) {
              if (atom.columns[i].kind != ColumnRole::Kind::kTarget) continue;
              if (first) {
                x = row[i];
                first = false;
              } else if (row[i] != x) {
                return;  // Repeated loop variable must match itself.
              }
            }
            if (first) return;  // No target column (absent-relation case).
            std::uint64_t packed = PackValue(x);
            if (ordered) {
              seen.insert(packed);
            } else if (domain_set.count(packed) != 0 &&
                       seen.insert(packed).second) {
              loop.values.push_back(x);
            }
          };
          if (atom.probe_mask != 0) {
            for (std::uint32_t pos : rel->Probe(atom.probe_mask, key)) {
              consider(rel->row(pos));
            }
          } else {
            for (std::size_t pos = 0; pos < rel->size(); ++pos) {
              consider(rel->row(pos));
            }
          }
          if (ordered) {
            // Domain-order sweep: keeps emission order identical to a
            // filtered full-domain loop (and filters to the domain).
            for (Value v : domain) {
              if (seen.count(PackValue(v)) != 0) loop.values.push_back(v);
            }
          }
        }
        ++pc;
        break;
      }
      case OpCode::kLoopNext: {
        LoopState& loop = loops[in.a];
        const std::vector<Value>& values =
            loop.source != nullptr ? *loop.source : loop.values;
        if (loop.pos < values.size()) {
          regs[in.reg] = values[loop.pos++];
          pc = in.t_pc;
        } else {
          pc = in.f_pc;
        }
        break;
      }
      case OpCode::kEmit: {
        assert(answers != nullptr && "kEmit outside enumerate mode");
        std::vector<Value> row;
        row.reserve(program.output_regs.size());
        for (std::uint16_t reg : program.output_regs) {
          row.push_back(regs[reg]);
        }
        answers->push_back(Tuple(std::move(row)));
        pc = in.t_pc;
        break;
      }
    }
  }
}

}  // namespace

bool ExecuteMembership(const Program& program, const Database& db,
                       const std::vector<Value>& domain,
                       const std::vector<Value>& inputs) {
  assert(!program.enumerate);
  return Run(program, db, domain, inputs, nullptr);
}

bool ExecuteEnumerate(const Program& program, const Database& db,
                      const std::vector<Value>& domain,
                      std::vector<Tuple>* answers) {
  assert(program.enumerate);
  return Run(program, db, domain, {}, answers);
}

}  // namespace plan
}  // namespace zeroone
