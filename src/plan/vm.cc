#include "plan/vm.h"

#include <cassert>
#include <cstdint>
#include <unordered_set>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace zeroone {
namespace plan {

namespace {

std::uint64_t PackValue(Value v) {
  return (static_cast<std::uint64_t>(v.kind()) << 32) | v.id();
}

// Iteration state of one loop, indexed by the loop id. Candidate loops own
// their value vector (reused across re-entries to avoid re-allocation);
// domain loops borrow the caller's domain.
struct LoopState {
  const std::vector<Value>* source = nullptr;
  std::vector<Value> values;
  std::size_t pos = 0;
};

// Scratch for candidate-loop materialization, reused across loop
// re-entries within one execution.
struct CandScratch {
  // Membership set of the quantification domain, built lazily for
  // unordered candidate loops (candidate values must lie in the domain;
  // ordered loops get that for free from the domain-order sweep).
  // `domain_set` points at `domain_set_storage` once built here — or at a
  // set the parallel driver prebuilt and shares read-only across the whole
  // morsel team, so per-morsel Run calls skip the O(|domain|) rebuild.
  std::unordered_set<std::uint64_t> domain_set_storage;
  const std::unordered_set<std::uint64_t>* domain_set = nullptr;
  std::unordered_set<std::uint64_t> seen;
  std::vector<Value> key;
};

// Computes a kLoopCand instruction's candidate values into `values`:
// distinct bindings of the loop variable for which the atom has a matching
// row under the already-bound registers, restricted to the domain. Shared
// by the interpreter case and the parallel driver's outer-loop pre-pass.
void MaterializeCand(const Program& program, const Instr& in,
                     const std::vector<const Relation*>& relations,
                     const std::vector<Value>& domain,
                     const std::vector<Value>& regs, CandScratch& scratch,
                     std::vector<Value>* values) {
  values->clear();
  const AtomAccess& atom = program.atoms[in.b];
  const Relation* rel = relations[atom.relation_index];
  bool ordered = (in.flags & kFlagOrdered) != 0;
  if (rel == nullptr) return;
  if (!ordered && scratch.domain_set == nullptr) {
    scratch.domain_set_storage.reserve(domain.size() * 2);
    for (Value v : domain) scratch.domain_set_storage.insert(PackValue(v));
    scratch.domain_set = &scratch.domain_set_storage;
  }
  scratch.key.clear();
  for (const ColumnRole& col : atom.columns) {
    if (col.kind == ColumnRole::Kind::kConst) {
      scratch.key.push_back(col.value);
    } else if (col.kind == ColumnRole::Kind::kReg) {
      scratch.key.push_back(regs[col.reg]);
    }
  }
  // clear() walks every bucket, and a previous materialization (say an
  // outer loop over the whole relation) may have left thousands of them:
  // reusing that table would make each inner-loop re-entry pay
  // O(outer size), an accidental quadratic blowup. Swap in a fresh table
  // once the bucket count outgrows the typical inner-loop cardinality.
  if (scratch.seen.bucket_count() > 256) {
    std::unordered_set<std::uint64_t>().swap(scratch.seen);
  } else {
    scratch.seen.clear();
  }
  auto consider = [&](Relation::Row row) {
    Value x;
    bool first = true;
    for (std::size_t i = 0; i < atom.columns.size(); ++i) {
      if (atom.columns[i].kind != ColumnRole::Kind::kTarget) continue;
      if (first) {
        x = row[i];
        first = false;
      } else if (row[i] != x) {
        return;  // Repeated loop variable must match itself.
      }
    }
    if (first) return;  // No target column (absent-relation case).
    std::uint64_t packed = PackValue(x);
    if (ordered) {
      scratch.seen.insert(packed);
    } else if (scratch.domain_set->count(packed) != 0 &&
               scratch.seen.insert(packed).second) {
      values->push_back(x);
    }
  };
  if (atom.probe_mask != 0) {
    for (std::uint32_t pos : rel->Probe(atom.probe_mask, scratch.key)) {
      consider(rel->row(pos));
    }
  } else {
    for (std::size_t pos = 0; pos < rel->size(); ++pos) {
      consider(rel->row(pos));
    }
  }
  if (ordered) {
    // Domain-order sweep: keeps emission order identical to a filtered
    // full-domain loop (and filters to the domain).
    for (Value v : domain) {
      if (scratch.seen.count(PackValue(v)) != 0) values->push_back(v);
    }
  }
}

// Overrides the value sequence of the outermost loop (the instruction at
// pc 0): the parallel driver materializes that loop's values once, slices
// them into morsels, and runs one Run per morsel over its slice. Emission
// order within a slice matches the serial sweep of that subrange, so
// concatenating per-morsel answers in morsel order reproduces the serial
// answer sequence byte-for-byte.
struct OuterSlice {
  const std::vector<Value>* values = nullptr;
  // Prebuilt domain membership set shared read-only by every morsel's Run
  // (null when the program has no unordered candidate loops).
  const std::unordered_set<std::uint64_t>* domain_set = nullptr;
};

bool Run(const Program& program, const Database& db,
         const std::vector<Value>& domain, const std::vector<Value>& inputs,
         std::vector<Tuple>* answers, const OuterSlice* slice) {
  ZO_TRACE_SPAN("plan.exec");

  // Resolve relation names once per execution; plans are compiled against
  // the same database version they run on, so names and arities agree.
  std::vector<const Relation*> relations(program.relation_names.size());
  for (std::size_t i = 0; i < relations.size(); ++i) {
    relations[i] = db.HasRelation(program.relation_names[i])
                       ? &db.relation(program.relation_names[i])
                       : nullptr;
  }

  std::vector<Value> regs(program.num_registers);
  assert(inputs.size() <= regs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) regs[i] = inputs[i];

  std::vector<LoopState> loops(program.num_loops);
  CandScratch scratch;
  if (slice != nullptr && slice->domain_set != nullptr) {
    scratch.domain_set = slice->domain_set;
  }

  std::uint64_t steps = 0;
  std::uint32_t pc = 0;
  for (;;) {
    if ((++steps & 0xFF) == 0 && CancellationRequested()) {
      ZO_COUNTER_ADD("plan.vm.steps", steps);
      return false;
    }
    const Instr& in = program.code[pc];
    switch (in.op) {
      case OpCode::kJump:
        pc = in.t_pc;
        break;
      case OpCode::kHaltTrue:
        ZO_COUNTER_ADD("plan.vm.steps", steps);
        return true;
      case OpCode::kHaltFalse:
        ZO_COUNTER_ADD("plan.vm.steps", steps);
        return false;
      case OpCode::kAtomCheck: {
        const AtomAccess& atom = program.atoms[in.a];
        const Relation* rel = relations[atom.relation_index];
        bool hit = false;
        if (rel != nullptr) {
          assert(atom.columns.size() == rel->arity() &&
                 "atom arity mismatch");
          Value check_stack[8];
          std::vector<Value> check_heap;
          Value* values = check_stack;
          if (atom.columns.size() > 8) {
            check_heap.resize(atom.columns.size());
            values = check_heap.data();
          }
          for (std::size_t i = 0; i < atom.columns.size(); ++i) {
            const ColumnRole& col = atom.columns[i];
            values[i] = col.kind == ColumnRole::Kind::kConst ? col.value
                                                             : regs[col.reg];
          }
          hit = rel->Contains(values);
        }
        pc = hit ? in.t_pc : in.f_pc;
        break;
      }
      case OpCode::kEquals: {
        Value lhs = in.lhs.is_reg ? regs[in.lhs.reg] : in.lhs.value;
        Value rhs = in.rhs.is_reg ? regs[in.rhs.reg] : in.rhs.value;
        pc = lhs == rhs ? in.t_pc : in.f_pc;
        break;
      }
      case OpCode::kLoopDomain: {
        LoopState& loop = loops[in.a];
        loop.source = (slice != nullptr && pc == 0) ? slice->values : &domain;
        loop.pos = 0;
        ++pc;
        break;
      }
      case OpCode::kLoopCand: {
        LoopState& loop = loops[in.a];
        loop.pos = 0;
        if (slice != nullptr && pc == 0) {
          loop.source = slice->values;
        } else {
          loop.source = nullptr;
          MaterializeCand(program, in, relations, domain, regs, scratch,
                          &loop.values);
        }
        ++pc;
        break;
      }
      case OpCode::kLoopNext: {
        LoopState& loop = loops[in.a];
        const std::vector<Value>& values =
            loop.source != nullptr ? *loop.source : loop.values;
        if (loop.pos < values.size()) {
          regs[in.reg] = values[loop.pos++];
          pc = in.t_pc;
        } else {
          pc = in.f_pc;
        }
        break;
      }
      case OpCode::kEmit: {
        assert(answers != nullptr && "kEmit outside enumerate mode");
        std::vector<Value> row;
        row.reserve(program.output_regs.size());
        for (std::uint16_t reg : program.output_regs) {
          row.push_back(regs[reg]);
        }
        answers->push_back(Tuple(std::move(row)));
        pc = in.t_pc;
        break;
      }
    }
  }
}

// One per program execution, regardless of how many morsel-level Run calls
// it fans out into: the poisoned-evaluation fault (cancels its own token,
// driving the caller's discard path — svc answers DEADLINE_EXCEEDED) and
// the plan.exec counter keep their per-query meaning.
void ExecutionEntry() {
  ZO_COUNTER_INC("plan.exec");
  if (ZO_FAULT_POINT("plan.vm.cancel")) {
    if (CancelToken* token = CurrentCancelToken()) token->Cancel();
  }
}

// True when the program's outermost output loop (the instruction at pc 0)
// can be pre-materialized and sliced: its candidate key must not read
// registers (none are bound at pc 0; the compiler peels output loops so
// this holds for every enumerate program it emits — checked anyway).
bool SliceableOuterLoop(const Program& program) {
  if (!program.enumerate || program.code.empty()) return false;
  const Instr& in = program.code[0];
  if (in.op == OpCode::kLoopDomain) return true;
  if (in.op != OpCode::kLoopCand) return false;
  for (const ColumnRole& col : program.atoms[in.b].columns) {
    if (col.kind == ColumnRole::Kind::kReg) return false;
  }
  return true;
}

}  // namespace

bool ExecuteMembership(const Program& program, const Database& db,
                       const std::vector<Value>& domain,
                       const std::vector<Value>& inputs) {
  assert(!program.enumerate);
  ExecutionEntry();
  return Run(program, db, domain, inputs, nullptr, nullptr);
}

bool ExecuteEnumerate(const Program& program, const Database& db,
                      const std::vector<Value>& domain,
                      std::vector<Tuple>* answers) {
  assert(program.enumerate);
  ExecutionEntry();
  if (SliceableOuterLoop(program)) {
    // Materialize the outermost loop's value sequence once, then sweep it
    // in morsels: per-morsel Run calls emit into per-morsel slots that
    // concatenate, in morsel order, to the serial emission sequence.
    const std::vector<Value>* outer = &domain;
    std::vector<Value> cand;
    // Domain membership, built once and shared read-only by the whole
    // team: per-morsel Run calls would otherwise each pay the O(|domain|)
    // rebuild, which caps scaling on candidate-loop-heavy plans.
    std::unordered_set<std::uint64_t> shared_domain;
    const std::unordered_set<std::uint64_t>* shared = nullptr;
    for (const Instr& in : program.code) {
      if (in.op == OpCode::kLoopCand && (in.flags & kFlagOrdered) == 0) {
        shared_domain.reserve(domain.size() * 2);
        for (Value v : domain) shared_domain.insert(PackValue(v));
        shared = &shared_domain;
        break;
      }
    }
    if (program.code[0].op == OpCode::kLoopCand) {
      std::vector<const Relation*> relations(program.relation_names.size());
      for (std::size_t i = 0; i < relations.size(); ++i) {
        relations[i] = db.HasRelation(program.relation_names[i])
                           ? &db.relation(program.relation_names[i])
                           : nullptr;
      }
      CandScratch scratch;
      scratch.domain_set = shared;
      std::vector<Value> regs(program.num_registers);
      MaterializeCand(program, program.code[0], relations, domain, regs,
                      scratch, &cand);
      outer = &cand;
    }
    par::ForPlan morsels = par::PlanMorsels(outer->size(), par::ForOptions{});
    if (morsels.workers > 1) {
      std::vector<std::vector<Tuple>> slots(morsels.morsels);
      bool ok = par::ParallelFor(morsels, [&](const par::Morsel& m,
                                              std::size_t) {
        std::vector<Value> sub(outer->begin() + m.begin,
                               outer->begin() + m.end);
        OuterSlice slice{&sub, shared};
        Run(program, db, domain, {}, &slots[m.index], &slice);
        return !CancellationRequested();
      });
      // Merge even after an abort: cancelled computations return partial
      // results by design and the token's installer discards them.
      for (std::vector<Tuple>& slot : slots) {
        answers->insert(answers->end(), std::make_move_iterator(slot.begin()),
                        std::make_move_iterator(slot.end()));
      }
      return ok;
    }
  }
  return Run(program, db, domain, {}, answers, nullptr);
}

}  // namespace plan
}  // namespace zeroone
