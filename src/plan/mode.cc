#include "plan/mode.h"

#include <cstdlib>
#include <string_view>

namespace zeroone {
namespace plan {

namespace {

PlanMode DefaultPlanMode() {
  const char* env = std::getenv("ZEROONE_PLAN");
  if (env != nullptr && std::string_view(env) == "interpret") {
    return PlanMode::kInterpret;
  }
  return PlanMode::kCompiled;
}

PlanMode& MutablePlanMode() {
  static PlanMode mode = DefaultPlanMode();
  return mode;
}

}  // namespace

PlanMode plan_mode() { return MutablePlanMode(); }

void SetPlanMode(PlanMode mode) { MutablePlanMode() = mode; }

}  // namespace plan
}  // namespace zeroone
