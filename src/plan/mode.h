#ifndef ZEROONE_PLAN_MODE_H_
#define ZEROONE_PLAN_MODE_H_

namespace zeroone {
namespace plan {

// Which evaluation strategy the FO/datalog evaluators use. kCompiled is the
// production path (cost-based plans lowered to bytecode, executed by the VM
// in src/plan); kInterpret preserves the PR-5 tree-walking interpreter and
// exists purely as a differential-testing reference, exactly as
// ZEROONE_STORAGE=scan does for storage. Selected once from the
// ZEROONE_PLAN environment variable ("interpret" picks the reference path),
// overridable in-process for tests.
enum class PlanMode { kCompiled, kInterpret };

// The process-wide plan mode (env default, or the last SetPlanMode).
PlanMode plan_mode();
// Overrides the plan mode; used by differential tests and benches that
// compare both paths inside one process. Not thread-safe against concurrent
// evaluation — call between evaluations only.
void SetPlanMode(PlanMode mode);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_MODE_H_
