#ifndef ZEROONE_PLAN_DATALOG_PLAN_H_
#define ZEROONE_PLAN_DATALOG_PLAN_H_

// Cost-based body-literal ordering for semi-naive datalog rule firing
// (datalog/eval.cc). Mirrors clause_plan.h, with two datalog twists:
//
//  - The designated delta literal estimates from the delta relation (the
//    facts new this round), not the materialized one — deltas shrink as
//    the fixpoint converges, so the delta literal usually wins the outer
//    loop, which is exactly the semi-naive intent.
//  - Negated literals are eligible only once every variable is bound (the
//    firing code requires ground negated checks); program safety
//    guarantees the greedy order never gets stuck on one.
//
// The orderer sees plain predicate/term structs, keeping zeroone_plan
// independent of the datalog library; datalog/eval.cc adapts its literal
// type at the call site.

#include <cstddef>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "query/formula.h"

namespace zeroone {
namespace plan {

struct BodyLiteral {
  std::string predicate;
  std::vector<Term> terms;
  bool negated = false;
};

struct BodyOrder {
  // Permutation of [0, body.size()): position i evaluates body[order[i]].
  std::vector<std::size_t> order;
  // The estimate each pick was made at, parallel to `order` (ground
  // negated checks carry a nominal constant cost).
  std::vector<double> estimates;
};

// Orders a rule body. `delta_index` (or -1) names the literal that reads
// from `delta_relation` instead of `db` this firing; `delta_relation` may
// be null (an absent delta fires nothing, the order is then moot).
BodyOrder OrderBody(const std::vector<BodyLiteral>& body, const Database& db,
                    int delta_index, const Relation* delta_relation);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_DATALOG_PLAN_H_
