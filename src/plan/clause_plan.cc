#include "plan/clause_plan.h"

#include "plan/cost.h"

namespace zeroone {
namespace plan {

std::vector<std::size_t> OrderClauseAtoms(
    const std::vector<ClauseAtom>& atoms, const Database& db,
    const std::set<std::size_t>& bound_vars) {
  std::vector<std::size_t> order;
  order.reserve(atoms.size());
  std::vector<char> placed(atoms.size(), 0);
  std::set<std::size_t> bound = bound_vars;
  auto is_bound = [&](std::size_t var) { return bound.count(var) != 0; };
  while (order.size() < atoms.size()) {
    std::size_t best = atoms.size();
    double best_est = 0.0;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (placed[i]) continue;
      double est =
          EstimateAtomMatches(db, atoms[i].relation, atoms[i].terms, is_bound);
      if (best == atoms.size() || est < best_est) {
        best = i;
        best_est = est;
      }
    }
    placed[best] = 1;
    order.push_back(best);
    for (const Term& t : atoms[best].terms) {
      if (t.is_variable()) bound.insert(t.variable_id());
    }
  }
  return order;
}

}  // namespace plan
}  // namespace zeroone
