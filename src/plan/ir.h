#ifndef ZEROONE_PLAN_IR_H_
#define ZEROONE_PLAN_IR_H_

// Logical plans for first-order evaluation (docs/planner.md).
//
// A QueryPlan is a normalized operator tree derived from a Formula against
// a concrete Database: ∧/∨ operands are reordered cheapest-and-most-
// selective-first, every quantifier is annotated with the cost-cheapest
// candidate atom that can restrict its range (the planner generalization of
// the interpreter's FindRequiredAtom/FindVacuityAtom heuristics, which
// always take the syntactically first atom), and — in enumerate mode — the
// free variables become an explicit chain of output loops. Every choice the
// planner makes is among semantically equivalent alternatives, so plans
// produce byte-identical answers to the interpreter (tests/plan_diff_test).
//
// Plans are built against one database snapshot: cardinality estimates and
// candidate choices bake in that snapshot's Relation::Stats(). The plan
// cache (plan/cache.h) therefore keys on the svc session version.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "query/formula.h"

namespace zeroone {
namespace plan {

// One column of a candidate-producing atom access, classified at plan time
// against the static binding environment of the quantifier it serves.
struct CandidateColumn {
  enum class Role {
    kConst,     // Fixed by a constant term: part of the probe key.
    kBoundVar,  // Fixed by an outer-bound variable: part of the probe key.
    kTarget,    // Holds the loop variable: produces candidate values.
    kWild,      // Unbound or shadowed variable: unconstrained.
  };
  Role role = Role::kWild;
  Value value;           // kConst.
  std::size_t var = 0;   // kBoundVar / kTarget / kWild.
};

// A positive atom whose rows bound the values a loop variable can take:
// values not occurring in a matching row under any extension cannot satisfy
// (∃/output) or refute (∀) the formula, so the loop iterates only them.
struct CandidateSource {
  std::string relation;
  std::vector<CandidateColumn> columns;
  Relation::Mask probe_mask = 0;  // Bits of the kConst/kBoundVar columns.
  double est_matches = 0.0;       // Cost-model estimate of matching rows.
};

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  enum class Op {
    kTrue,
    kFalse,
    kAtomCheck,  // Membership probe R(t̄), all terms resolved.
    kEquals,     // t₁ = t₂ under naive null semantics (Value::operator==).
    kNot,
    kAnd,        // Children in chosen evaluation order.
    kOr,         // Children in chosen evaluation order.
    kImplies,
    kExists,     // Loop over candidates (or the domain) until a witness.
    kForall,     // Loop over candidates (or the domain) until a refutation.
    kOutput,     // Free-variable loop level of an enumerate-mode plan.
  };

  Op op;
  std::string relation;                       // kAtomCheck.
  std::vector<Term> terms;                    // kAtomCheck / kEquals (2).
  std::size_t var = 0;                        // Loops.
  bool repeated_output = false;               // kOutput bound by an earlier
                                              // column; no loop emitted.
  std::optional<CandidateSource> candidates;  // Loops; nullopt = full domain.
  double est_matches = 0.0;                   // kAtomCheck estimate.
  double cost = 0.0;                          // Recursive cost (ordering key).
  std::vector<PlanNodePtr> children;
};

struct QueryPlan {
  PlanNodePtr root;     // kOutput chain wrapping the formula (enumerate
                        // mode) or the formula plan alone (membership mode).
  bool enumerate = false;
  std::vector<std::size_t> free_variables;
  std::size_t variable_count = 0;
  std::vector<std::string> variable_names;

  // Human-readable operator tree with atom orders, probe masks, and cost
  // estimates — the payload of `zeroone_cli --explain` and svc @explain=1.
  std::string ToString() const;
};

// Builds the cost-based logical plan of `formula` against `db`. In
// enumerate mode the plan's outer levels loop over `free_variables` in
// column order (the order answers are emitted in); in membership mode the
// free variables are inputs bound by the caller.
QueryPlan BuildQueryPlan(const Formula& formula,
                         const std::vector<std::size_t>& free_variables,
                         std::size_t variable_count,
                         std::vector<std::string> variable_names,
                         const Database& db, bool enumerate);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_IR_H_
