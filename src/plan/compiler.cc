#include "plan/compiler.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {
namespace plan {

namespace {

// Jump targets are label ids (kLabelFlag set) during emission and resolved
// to pcs in one patch pass at the end.
constexpr std::uint32_t kLabelFlag = 0x80000000u;

class Compiler {
 public:
  explicit Compiler(const QueryPlan& plan) : plan_(plan) {
    reg_of_var_.assign(plan.variable_count, -1);
  }

  Program Compile() {
    program_.enumerate = plan_.enumerate;
    if (plan_.enumerate) {
      CompileEnumerate();
    } else {
      CompileMembership();
    }
    Resolve();
    return std::move(program_);
  }

 private:
  std::uint32_t NewLabel() {
    labels_.push_back(UINT32_MAX);
    return kLabelFlag | static_cast<std::uint32_t>(labels_.size() - 1);
  }
  void BindLabel(std::uint32_t label) {
    labels_[label & ~kLabelFlag] =
        static_cast<std::uint32_t>(program_.code.size());
  }
  std::uint16_t NewRegister() { return program_.num_registers++; }
  std::uint16_t NewLoop() { return program_.num_loops++; }

  Instr& Emit(OpCode op) {
    program_.code.emplace_back();
    program_.code.back().op = op;
    return program_.code.back();
  }

  std::uint16_t RelationIndex(const std::string& name) {
    auto it = relation_index_.find(name);
    if (it != relation_index_.end()) return it->second;
    auto index = static_cast<std::uint16_t>(program_.relation_names.size());
    program_.relation_names.push_back(name);
    relation_index_.emplace(name, index);
    return index;
  }

  std::uint16_t RegisterOf(std::size_t var) const {
    assert(var < reg_of_var_.size() && reg_of_var_[var] >= 0 &&
           "unbound variable reached the compiler");
    return static_cast<std::uint16_t>(reg_of_var_[var]);
  }

  RegOperand OperandOf(const Term& term) const {
    RegOperand operand;
    if (term.is_value()) {
      operand.is_reg = false;
      operand.value = term.value();
    } else {
      operand.is_reg = true;
      operand.reg = RegisterOf(term.variable_id());
    }
    return operand;
  }

  // An AtomAccess for a membership check: every column resolved.
  std::uint16_t MakeCheckAccess(const std::string& relation,
                                const std::vector<Term>& terms) {
    AtomAccess access;
    access.relation_index = RelationIndex(relation);
    for (const Term& t : terms) {
      ColumnRole col;
      if (t.is_value()) {
        col.kind = ColumnRole::Kind::kConst;
        col.value = t.value();
      } else {
        col.kind = ColumnRole::Kind::kReg;
        col.reg = RegisterOf(t.variable_id());
      }
      access.columns.push_back(col);
    }
    program_.atoms.push_back(std::move(access));
    return static_cast<std::uint16_t>(program_.atoms.size() - 1);
  }

  // An AtomAccess for a candidate loop, from the planner's classification.
  std::uint16_t MakeCandidateAccess(const CandidateSource& src) {
    AtomAccess access;
    access.relation_index = RelationIndex(src.relation);
    access.probe_mask = src.probe_mask;
    for (const CandidateColumn& planned : src.columns) {
      ColumnRole col;
      switch (planned.role) {
        case CandidateColumn::Role::kConst:
          col.kind = ColumnRole::Kind::kConst;
          col.value = planned.value;
          break;
        case CandidateColumn::Role::kBoundVar:
          col.kind = ColumnRole::Kind::kReg;
          col.reg = RegisterOf(planned.var);
          break;
        case CandidateColumn::Role::kTarget:
          col.kind = ColumnRole::Kind::kTarget;
          break;
        case CandidateColumn::Role::kWild:
          col.kind = ColumnRole::Kind::kWild;
          break;
      }
      access.columns.push_back(col);
    }
    program_.atoms.push_back(std::move(access));
    return static_cast<std::uint16_t>(program_.atoms.size() - 1);
  }

  // Emits code for `node`; execution continues at true_label when the
  // subformula holds, false_label otherwise. Entry is the next emitted pc.
  void CompileNode(const PlanNode& node, std::uint32_t true_label,
                   std::uint32_t false_label) {
    switch (node.op) {
      case PlanNode::Op::kTrue:
        Emit(OpCode::kJump).t_pc = true_label;
        return;
      case PlanNode::Op::kFalse:
        Emit(OpCode::kJump).t_pc = false_label;
        return;
      case PlanNode::Op::kAtomCheck: {
        std::uint16_t atom = MakeCheckAccess(node.relation, node.terms);
        Instr& in = Emit(OpCode::kAtomCheck);
        in.a = atom;
        in.t_pc = true_label;
        in.f_pc = false_label;
        return;
      }
      case PlanNode::Op::kEquals: {
        RegOperand lhs = OperandOf(node.terms[0]);
        RegOperand rhs = OperandOf(node.terms[1]);
        Instr& in = Emit(OpCode::kEquals);
        in.lhs = lhs;
        in.rhs = rhs;
        in.t_pc = true_label;
        in.f_pc = false_label;
        return;
      }
      case PlanNode::Op::kNot:
        CompileNode(*node.children[0], false_label, true_label);
        return;
      case PlanNode::Op::kAnd:
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          bool last = i + 1 == node.children.size();
          std::uint32_t next = last ? true_label : NewLabel();
          CompileNode(*node.children[i], next, false_label);
          if (!last) BindLabel(next);
        }
        return;
      case PlanNode::Op::kOr:
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          bool last = i + 1 == node.children.size();
          std::uint32_t next = last ? false_label : NewLabel();
          CompileNode(*node.children[i], true_label, next);
          if (!last) BindLabel(next);
        }
        return;
      case PlanNode::Op::kImplies: {
        std::uint32_t conclusion = NewLabel();
        CompileNode(*node.children[0], conclusion, true_label);
        BindLabel(conclusion);
        CompileNode(*node.children[1], true_label, false_label);
        return;
      }
      case PlanNode::Op::kExists:
      case PlanNode::Op::kForall: {
        bool exists = node.op == PlanNode::Op::kExists;
        // Candidate probe keys read registers of the *outer* scope, so the
        // access is built before the loop variable is renamed.
        bool has_candidates = node.candidates.has_value();
        std::uint16_t atom =
            has_candidates ? MakeCandidateAccess(*node.candidates) : 0;
        std::size_t var = node.var;
        int saved = var < reg_of_var_.size() ? reg_of_var_[var] : -1;
        if (var >= reg_of_var_.size()) reg_of_var_.resize(var + 1, -1);
        std::uint16_t reg = NewRegister();
        reg_of_var_[var] = reg;

        std::uint16_t loop = NewLoop();
        Instr& head =
            Emit(has_candidates ? OpCode::kLoopCand : OpCode::kLoopDomain);
        head.a = loop;
        head.b = atom;
        head.reg = reg;
        std::uint32_t next_label = NewLabel();
        BindLabel(next_label);
        std::uint32_t body_label = NewLabel();
        Instr& next = Emit(OpCode::kLoopNext);
        next.a = loop;
        next.reg = reg;
        next.t_pc = body_label;
        // Exhausted: ∃ found no witness (false), ∀ found no refutation
        // (true).
        next.f_pc = exists ? false_label : true_label;
        BindLabel(body_label);
        if (exists) {
          CompileNode(*node.children[0], true_label, next_label);
        } else {
          CompileNode(*node.children[0], next_label, false_label);
        }
        reg_of_var_[var] = saved;
        return;
      }
      case PlanNode::Op::kOutput:
        assert(false && "kOutput handled by CompileEnumerate");
        return;
    }
  }

  void CompileEnumerate() {
    // Peel the output-loop chain off the plan root.
    std::vector<const PlanNode*> outputs;
    const PlanNode* body = plan_.root.get();
    while (body != nullptr && body->op == PlanNode::Op::kOutput) {
      outputs.push_back(body);
      body = body->children.empty() ? nullptr : body->children[0].get();
    }
    assert(body != nullptr && "enumerate plan lost its formula");

    std::uint32_t halt_label = NewLabel();
    // Exhaustion target of loop level i; the outermost exits to halt.
    std::uint32_t exit_label = halt_label;
    std::uint32_t innermost_next = halt_label;
    for (const PlanNode* out : outputs) {
      if (out->repeated_output) {
        program_.output_regs.push_back(RegisterOf(out->var));
        continue;
      }
      bool has_candidates = out->candidates.has_value();
      std::uint16_t atom =
          has_candidates ? MakeCandidateAccess(*out->candidates) : 0;
      if (out->var >= reg_of_var_.size()) {
        reg_of_var_.resize(out->var + 1, -1);
      }
      std::uint16_t reg = NewRegister();
      reg_of_var_[out->var] = reg;
      program_.output_regs.push_back(reg);

      std::uint16_t loop = NewLoop();
      Instr& head =
          Emit(has_candidates ? OpCode::kLoopCand : OpCode::kLoopDomain);
      head.a = loop;
      head.b = atom;
      head.reg = reg;
      // Output loops must enumerate in domain order (emission order).
      head.flags = kFlagOrdered;
      std::uint32_t next_label = NewLabel();
      BindLabel(next_label);
      std::uint32_t body_label = NewLabel();
      Instr& next = Emit(OpCode::kLoopNext);
      next.a = loop;
      next.reg = reg;
      next.t_pc = body_label;
      next.f_pc = exit_label;
      BindLabel(body_label);
      exit_label = next_label;
      innermost_next = next_label;
    }
    // The formula: satisfied → emit the answer, then resume the innermost
    // loop; refuted → resume directly. A Boolean query (no loops) halts
    // after at most one emission.
    std::uint32_t emit_label = NewLabel();
    CompileNode(*body, emit_label, innermost_next);
    BindLabel(emit_label);
    Emit(OpCode::kEmit).t_pc = innermost_next;
    BindLabel(halt_label);
    Emit(OpCode::kHaltTrue);
  }

  void CompileMembership() {
    // Input registers: one per distinct free variable, in first-occurrence
    // order; the caller binds them before execution.
    for (std::size_t var : plan_.free_variables) {
      if (var >= reg_of_var_.size()) reg_of_var_.resize(var + 1, -1);
      if (reg_of_var_[var] >= 0) continue;
      reg_of_var_[var] = NewRegister();
      program_.input_vars.push_back(var);
    }
    std::uint32_t true_label = NewLabel();
    std::uint32_t false_label = NewLabel();
    CompileNode(*plan_.root, true_label, false_label);
    BindLabel(true_label);
    Emit(OpCode::kHaltTrue);
    BindLabel(false_label);
    Emit(OpCode::kHaltFalse);
  }

  void Resolve() {
    auto patch = [&](std::uint32_t& pc) {
      if ((pc & kLabelFlag) == 0) return;
      std::uint32_t resolved = labels_[pc & ~kLabelFlag];
      assert(resolved != UINT32_MAX && "unbound label");
      pc = resolved;
    };
    for (Instr& in : program_.code) {
      patch(in.t_pc);
      patch(in.f_pc);
    }
  }

  const QueryPlan& plan_;
  Program program_;
  std::vector<std::uint32_t> labels_;
  std::map<std::string, std::uint16_t> relation_index_;
  std::vector<int> reg_of_var_;
};

}  // namespace

Program CompilePlan(const QueryPlan& plan) {
  return Compiler(plan).Compile();
}

CompiledQuery CompileFormulaQuery(const Formula& formula,
                                  const std::vector<std::size_t>& free_variables,
                                  std::size_t variable_count,
                                  std::vector<std::string> variable_names,
                                  const Database& db, bool enumerate) {
  ZO_TRACE_SPAN("plan.compile");
  ZO_COUNTER_INC("plan.compile");
  QueryPlan plan =
      BuildQueryPlan(formula, free_variables, variable_count,
                     std::move(variable_names), db, enumerate);
  CompiledQuery out;
  out.explain = plan.ToString();
  out.program = CompilePlan(plan);
  return out;
}

}  // namespace plan
}  // namespace zeroone
