#ifndef ZEROONE_PLAN_CLAUSE_PLAN_H_
#define ZEROONE_PLAN_CLAUSE_PLAN_H_

// Cost-based atom ordering for conjunctive-clause backtracking search
// (query/matcher.cc). The matcher's join order is its whole cost model: a
// selective first atom collapses the search tree, a wide one multiplies
// it. The orderer greedily picks the cheapest-looking unplaced atom under
// the variables bound so far — a permutation only, so the matcher's
// semantics (and its candidate re-verification) are untouched.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "data/database.h"
#include "query/formula.h"

namespace zeroone {
namespace plan {

struct ClauseAtom {
  std::string relation;
  std::vector<Term> terms;
};

// Returns a permutation of [0, atoms.size()): the order in which the
// backtracking search should instantiate the atoms. `bound_vars` holds the
// variable ids already pinned before the search starts (e.g. output
// variables during a membership test). Ties keep the original order, so
// uniform estimates reproduce the untuned matcher exactly.
std::vector<std::size_t> OrderClauseAtoms(
    const std::vector<ClauseAtom>& atoms, const Database& db,
    const std::set<std::size_t>& bound_vars);

}  // namespace plan
}  // namespace zeroone

#endif  // ZEROONE_PLAN_CLAUSE_PLAN_H_
