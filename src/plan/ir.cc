#include "plan/ir.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "plan/cost.h"

namespace zeroone {
namespace plan {

namespace {

// An eligible candidate atom: the formula atom plus the quantifier
// variables crossed on the way down to it (those are rebound below the loop
// being planned, so they cannot contribute to the probe key).
struct CandidateAtom {
  const Formula* atom;
  std::vector<std::size_t> shadowed;
};

class Planner {
 public:
  Planner(const Database& db, std::size_t variable_count)
      : db_(db),
        domain_size_(static_cast<double>(db.ActiveDomain().size())),
        bound_(variable_count, 0) {}

  bool IsBound(std::size_t var) const {
    return var < bound_.size() && bound_[var] != 0;
  }
  void Bind(std::size_t var) {
    if (var >= bound_.size()) bound_.resize(var + 1, 0);
    bound_[var] = 1;
  }
  void Unbind(std::size_t var) { bound_[var] = 0; }

  // Plans one formula under the current static binding environment.
  PlanNodePtr Plan(const Formula& f) {
    auto node = std::make_unique<PlanNode>();
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        node->op = PlanNode::Op::kTrue;
        node->cost = 0.0;
        return node;
      case Formula::Kind::kFalse:
        node->op = PlanNode::Op::kFalse;
        node->cost = 0.0;
        return node;
      case Formula::Kind::kAtom:
        node->op = PlanNode::Op::kAtomCheck;
        node->relation = f.relation_name();
        node->terms = f.terms();
        node->est_matches = EstimateAtomMatches(
            db_, node->relation, node->terms,
            [](std::size_t) { return true; });
        // All terms are bound at check time, so the estimate approximates
        // the probability of a hit; cheaper-and-more-selective sorts first.
        node->cost = 2.0 + std::min(node->est_matches, 1.0);
        return node;
      case Formula::Kind::kEquals:
        node->op = PlanNode::Op::kEquals;
        node->terms = {f.left(), f.right()};
        node->cost = 1.0;
        return node;
      case Formula::Kind::kNot:
        node->op = PlanNode::Op::kNot;
        node->children.push_back(Plan(*f.children()[0]));
        node->cost = 1.0 + node->children[0]->cost;
        return node;
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        node->op = f.kind() == Formula::Kind::kAnd ? PlanNode::Op::kAnd
                                                   : PlanNode::Op::kOr;
        for (const FormulaPtr& child : f.children()) {
          node->children.push_back(Plan(*child));
        }
        // Evaluate cheap operands first; ∧ and ∨ short-circuit, and the
        // operands are evaluated under one environment, so any order is
        // equivalent. Stable: ties keep source order (determinism).
        std::stable_sort(node->children.begin(), node->children.end(),
                         [](const PlanNodePtr& a, const PlanNodePtr& b) {
                           return a->cost < b->cost;
                         });
        node->cost = 1.0;
        for (const PlanNodePtr& child : node->children) {
          node->cost += child->cost;
        }
        return node;
      }
      case Formula::Kind::kImplies:
        node->op = PlanNode::Op::kImplies;
        node->children.push_back(Plan(*f.children()[0]));
        node->children.push_back(Plan(*f.children()[1]));
        node->cost =
            1.0 + node->children[0]->cost + node->children[1]->cost;
        return node;
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        bool exists = f.kind() == Formula::Kind::kExists;
        node->op = exists ? PlanNode::Op::kExists : PlanNode::Op::kForall;
        node->var = f.bound_variable();
        std::vector<CandidateAtom> atoms;
        std::vector<std::size_t> shadowed;
        if (exists) {
          CollectRequired(*f.children()[0], node->var, &shadowed, &atoms);
        } else {
          CollectVacuity(*f.children()[0], node->var, &shadowed, &atoms);
        }
        node->candidates = PickCandidate(atoms, node->var);
        bool was_bound = IsBound(node->var);
        Bind(node->var);
        node->children.push_back(Plan(*f.children()[0]));
        if (!was_bound) Unbind(node->var);
        double range = domain_size_;
        if (node->candidates) {
          range = std::min(range, node->candidates->est_matches);
        }
        node->cost = 4.0 + range * (1.0 + node->children[0]->cost);
        return node;
      }
    }
    node->op = PlanNode::Op::kFalse;
    return node;
  }

  // Positive atoms over `var` that every satisfying extension must match
  // (the collect-all generalization of eval.cc's FindRequiredAtom).
  void CollectRequired(const Formula& f, std::size_t var,
                       std::vector<std::size_t>* shadowed,
                       std::vector<CandidateAtom>* out) {
    switch (f.kind()) {
      case Formula::Kind::kAtom:
        for (const Term& t : f.terms()) {
          if (t.is_variable() && t.variable_id() == var) {
            out->push_back({&f, *shadowed});
            return;
          }
        }
        return;
      case Formula::Kind::kAnd:
        for (const FormulaPtr& child : f.children()) {
          CollectRequired(*child, var, shadowed, out);
        }
        return;
      case Formula::Kind::kExists:
        if (f.bound_variable() == var) return;
        shadowed->push_back(f.bound_variable());
        CollectRequired(*f.children()[0], var, shadowed, out);
        shadowed->pop_back();
        return;
      default:
        return;
    }
  }

  // Atoms whose unmatchability at var = v makes `f` vacuously true (the
  // dual, generalizing eval.cc's FindVacuityAtom).
  void CollectVacuity(const Formula& f, std::size_t var,
                      std::vector<std::size_t>* shadowed,
                      std::vector<CandidateAtom>* out) {
    switch (f.kind()) {
      case Formula::Kind::kImplies:
      case Formula::Kind::kNot:
        CollectRequired(*f.children()[0], var, shadowed, out);
        return;
      case Formula::Kind::kForall:
      case Formula::Kind::kExists:
        if (f.bound_variable() == var) return;
        shadowed->push_back(f.bound_variable());
        CollectVacuity(*f.children()[0], var, shadowed, out);
        shadowed->pop_back();
        return;
      case Formula::Kind::kOr:
        for (const FormulaPtr& child : f.children()) {
          CollectVacuity(*child, var, shadowed, out);
        }
        return;
      default:
        return;
    }
  }

  // Classifies one eligible atom into a CandidateSource, or nullopt when
  // the interpreter's CollectCandidates would fall back to the full domain
  // (arity mismatch, unindexable arity): the compiled loop must restrict
  // exactly when the reference path does not forbid it.
  std::optional<CandidateSource> MakeCandidate(
      const Formula& atom, std::size_t var,
      const std::vector<std::size_t>& shadowed) {
    CandidateSource src;
    src.relation = atom.relation_name();
    const Relation* rel =
        db_.HasRelation(src.relation) ? &db_.relation(src.relation) : nullptr;
    if (rel != nullptr &&
        (atom.terms().size() != rel->arity() || rel->arity() == 0 ||
         rel->arity() > Relation::kMaxIndexedColumns)) {
      return std::nullopt;
    }
    std::vector<std::size_t> probe_columns;
    bool has_target = false;
    for (std::size_t i = 0; i < atom.terms().size(); ++i) {
      const Term& t = atom.terms()[i];
      CandidateColumn column;
      if (t.is_value()) {
        column.role = CandidateColumn::Role::kConst;
        column.value = t.value();
      } else if (t.variable_id() == var) {
        column.role = CandidateColumn::Role::kTarget;
        column.var = var;
        has_target = true;
      } else if (IsBound(t.variable_id()) &&
                 std::find(shadowed.begin(), shadowed.end(),
                           t.variable_id()) == shadowed.end()) {
        column.role = CandidateColumn::Role::kBoundVar;
        column.var = t.variable_id();
      } else {
        column.role = CandidateColumn::Role::kWild;
        column.var = t.variable_id();
      }
      if (column.role == CandidateColumn::Role::kConst ||
          column.role == CandidateColumn::Role::kBoundVar) {
        src.probe_mask |= Relation::Mask{1} << i;
        probe_columns.push_back(i);
      }
      src.columns.push_back(std::move(column));
    }
    if (rel == nullptr) {
      // Absent relation: the candidate set is statically empty — the
      // strongest restriction there is (the interpreter does the same).
      src.est_matches = 0.0;
      return src;
    }
    if (!has_target) return std::nullopt;
    src.est_matches = EstimateMatches(rel->Stats(), probe_columns);
    return src;
  }

  // The cost-cheapest eligible candidate (ties keep collection order, which
  // is the interpreter's first-found order).
  std::optional<CandidateSource> PickCandidate(
      const std::vector<CandidateAtom>& atoms, std::size_t var) {
    std::optional<CandidateSource> best;
    for (const CandidateAtom& c : atoms) {
      std::optional<CandidateSource> src =
          MakeCandidate(*c.atom, var, c.shadowed);
      if (!src) continue;
      if (!best || src->est_matches < best->est_matches) {
        best = std::move(src);
      }
    }
    return best;
  }

  // An output-loop level for free-variable `var` of an enumerate plan:
  // restricted by the cheapest required atom of the whole formula, probing
  // on earlier output columns (already bound) and formula constants.
  PlanNodePtr PlanOutput(const Formula& formula, std::size_t var) {
    auto node = std::make_unique<PlanNode>();
    node->op = PlanNode::Op::kOutput;
    node->var = var;
    if (IsBound(var)) {
      node->repeated_output = true;
      return node;
    }
    std::vector<CandidateAtom> atoms;
    std::vector<std::size_t> shadowed;
    CollectRequired(formula, var, &shadowed, &atoms);
    node->candidates = PickCandidate(atoms, var);
    Bind(var);
    return node;
  }

 private:
  const Database& db_;
  double domain_size_;
  std::vector<char> bound_;
};

std::string FormatEstimate(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

}  // namespace

QueryPlan BuildQueryPlan(const Formula& formula,
                         const std::vector<std::size_t>& free_variables,
                         std::size_t variable_count,
                         std::vector<std::string> variable_names,
                         const Database& db, bool enumerate) {
  QueryPlan plan;
  plan.enumerate = enumerate;
  plan.free_variables = free_variables;
  plan.variable_count = variable_count;
  plan.variable_names = std::move(variable_names);

  Planner planner(db, variable_count);
  if (!enumerate) {
    // Membership mode: every output column is an input binding.
    for (std::size_t var : free_variables) planner.Bind(var);
    plan.root = planner.Plan(formula);
    return plan;
  }
  // Enumerate mode: a loop level per output column (outermost first),
  // wrapping the formula plan. Column order is the answer-emission order,
  // so it is fixed; only each level's candidate restriction is chosen.
  std::vector<PlanNodePtr> loops;
  for (std::size_t var : free_variables) {
    loops.push_back(planner.PlanOutput(formula, var));
  }
  PlanNodePtr body = planner.Plan(formula);
  for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
    (*it)->children.push_back(std::move(body));
    body = std::move(*it);
  }
  plan.root = std::move(body);
  return plan;
}

namespace {

std::string VariableName(const std::vector<std::string>& names,
                         std::size_t var) {
  if (var < names.size() && !names[var].empty()) return names[var];
  return "x" + std::to_string(var);
}

std::string TermText(const Term& term,
                     const std::vector<std::string>& names) {
  return term.is_variable() ? VariableName(names, term.variable_id())
                            : term.value().ToString();
}

std::string CandidateText(const CandidateSource& src,
                          const std::vector<std::string>& names) {
  std::string out = "candidates " + src.relation + "(";
  for (std::size_t i = 0; i < src.columns.size(); ++i) {
    if (i > 0) out += ", ";
    const CandidateColumn& col = src.columns[i];
    switch (col.role) {
      case CandidateColumn::Role::kConst:
        out += col.value.ToString();
        break;
      case CandidateColumn::Role::kBoundVar:
        out += VariableName(names, col.var);
        break;
      case CandidateColumn::Role::kTarget:
        out += "*" + VariableName(names, col.var);
        break;
      case CandidateColumn::Role::kWild:
        out += "_";
        break;
    }
  }
  out += ")";
  char mask[32];
  std::snprintf(mask, sizeof(mask), " mask=0x%llx",
                static_cast<unsigned long long>(src.probe_mask));
  out += mask;
  out += " est=" + FormatEstimate(src.est_matches);
  return out;
}

void AppendNode(const PlanNode& node, const std::vector<std::string>& names,
                int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  switch (node.op) {
    case PlanNode::Op::kTrue:
      *out += "true\n";
      return;
    case PlanNode::Op::kFalse:
      *out += "false\n";
      return;
    case PlanNode::Op::kAtomCheck: {
      *out += "check " + node.relation + "(";
      for (std::size_t i = 0; i < node.terms.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += TermText(node.terms[i], names);
      }
      *out += ") est=" + FormatEstimate(node.est_matches) + "\n";
      return;
    }
    case PlanNode::Op::kEquals:
      *out += TermText(node.terms[0], names) + " = " +
              TermText(node.terms[1], names) + "\n";
      return;
    case PlanNode::Op::kNot:
    case PlanNode::Op::kAnd:
    case PlanNode::Op::kOr:
    case PlanNode::Op::kImplies: {
      const char* name = node.op == PlanNode::Op::kNot      ? "not"
                         : node.op == PlanNode::Op::kAnd    ? "and"
                         : node.op == PlanNode::Op::kOr     ? "or"
                                                            : "implies";
      *out += std::string(name) + " cost=" + FormatEstimate(node.cost) + "\n";
      break;
    }
    case PlanNode::Op::kExists:
    case PlanNode::Op::kForall: {
      *out += node.op == PlanNode::Op::kExists ? "exists " : "forall ";
      *out += VariableName(names, node.var) + ": ";
      *out += node.candidates ? CandidateText(*node.candidates, names)
                              : "domain scan";
      *out += " cost=" + FormatEstimate(node.cost) + "\n";
      break;
    }
    case PlanNode::Op::kOutput: {
      *out += "output " + VariableName(names, node.var) + ": ";
      if (node.repeated_output) {
        *out += "repeated column\n";
      } else if (node.candidates) {
        *out += CandidateText(*node.candidates, names) + " (domain order)\n";
      } else {
        *out += "domain scan\n";
      }
      break;
    }
  }
  for (const PlanNodePtr& child : node.children) {
    AppendNode(*child, names, depth + 1, out);
  }
}

}  // namespace

std::string QueryPlan::ToString() const {
  std::string out = enumerate ? "plan [enumerate]\n" : "plan [membership]\n";
  if (root != nullptr) AppendNode(*root, variable_names, 1, &out);
  return out;
}

}  // namespace plan
}  // namespace zeroone
