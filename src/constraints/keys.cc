#include "constraints/keys.h"

#include <algorithm>
#include <map>
#include <set>

#include "constraints/fd.h"

namespace zeroone {

std::string UnaryKey::ToString() const {
  return "key " + relation + "[" + std::to_string(position) + "]";
}

std::string UnaryForeignKey::ToString() const {
  return "fk " + from_relation + "[" + std::to_string(from_position) +
         "] -> " + to_relation + "[" + std::to_string(to_position) + "]";
}

namespace {

// The constants of a relation column (nulls skipped).
std::set<Value> ColumnConstants(const Database& db, const std::string& name,
                                std::size_t position) {
  std::set<Value> out;
  if (!db.HasRelation(name)) return out;
  for (Relation::Row tuple : db.relation(name)) {
    if (tuple[position].is_constant()) out.insert(tuple[position]);
  }
  return out;
}

}  // namespace

StatusOr<KeySatisfiability> CheckKeySatisfiability(
    const std::vector<UnaryKey>& keys,
    const std::vector<UnaryForeignKey>& foreign_keys, const Database& db) {
  // Every FK must target a declared key column.
  for (const UnaryForeignKey& fk : foreign_keys) {
    bool targets_key = std::any_of(
        keys.begin(), keys.end(), [&](const UnaryKey& key) {
          return key.relation == fk.to_relation &&
                 key.position == fk.to_position;
        });
    if (!targets_key) {
      return Status::Error("foreign key " + fk.ToString() +
                           " does not reference a declared key column");
    }
  }

  KeySatisfiability result;
  // Step 1: key columns null-free.
  for (const UnaryKey& key : keys) {
    if (!db.HasRelation(key.relation)) continue;
    for (Relation::Row tuple : db.relation(key.relation)) {
      if (tuple[key.position].is_null()) {
        result.satisfiable = false;
        result.reason = key.ToString() + " has a null in tuple " +
                        tuple.ToString();
        return result;
      }
    }
  }

  // Step 2: keys as FDs {key} → every other position; chase. Two tuples
  // sharing a key value must become the same tuple under every admissible
  // valuation, so the chase either merges them or proves unsatisfiability.
  std::vector<FunctionalDependency> fds;
  for (const UnaryKey& key : keys) {
    for (std::size_t p = 0; p < key.arity; ++p) {
      if (p == key.position) continue;
      fds.emplace_back(key.relation, key.arity,
                       std::vector<std::size_t>{key.position}, p);
    }
  }
  ChaseResult chase = ChaseFds(fds, db);
  if (!chase.success) {
    result.satisfiable = false;
    result.reason = chase.failure_reason;
    return result;
  }
  const Database& chased = chase.database;

  // Step 3: foreign keys. Constants must already appear in the target key
  // column; each null must be assignable to a constant lying in every
  // target column it is subject to. (Nulls never occur in key columns, so
  // assignments are otherwise unconstrained, and collapsing non-key tuples
  // cannot create key violations.)
  std::map<Value, std::vector<const UnaryForeignKey*>> null_obligations;
  for (const UnaryForeignKey& fk : foreign_keys) {
    if (!chased.HasRelation(fk.from_relation)) continue;
    std::set<Value> target =
        ColumnConstants(chased, fk.to_relation, fk.to_position);
    for (Relation::Row tuple : chased.relation(fk.from_relation)) {
      Value v = tuple[fk.from_position];
      if (v.is_constant()) {
        if (target.count(v) == 0) {
          result.satisfiable = false;
          result.reason = fk.ToString() + ": constant " + v.ToString() +
                          " missing from target key column";
          return result;
        }
      } else {
        null_obligations[v].push_back(&fk);
      }
    }
  }
  for (const auto& [null, obligations] : null_obligations) {
    std::set<Value> candidates = ColumnConstants(
        chased, obligations[0]->to_relation, obligations[0]->to_position);
    for (std::size_t i = 1; i < obligations.size() && !candidates.empty();
         ++i) {
      std::set<Value> target = ColumnConstants(
          chased, obligations[i]->to_relation, obligations[i]->to_position);
      std::set<Value> intersection;
      std::set_intersection(candidates.begin(), candidates.end(),
                            target.begin(), target.end(),
                            std::inserter(intersection, intersection.end()));
      candidates = std::move(intersection);
    }
    if (candidates.empty()) {
      result.satisfiable = false;
      result.reason = "null " + null.ToString() +
                      " has no admissible value across its foreign keys";
      return result;
    }
  }
  result.satisfiable = true;
  return result;
}

bool KeysHold(const std::vector<UnaryKey>& keys,
              const std::vector<UnaryForeignKey>& foreign_keys,
              const Database& db) {
  for (const UnaryKey& key : keys) {
    if (!db.HasRelation(key.relation)) continue;
    std::set<Value> seen;
    for (Relation::Row tuple : db.relation(key.relation)) {
      Value v = tuple[key.position];
      if (v.is_null()) return false;
      if (!seen.insert(v).second) return false;  // Duplicate key value.
    }
  }
  for (const UnaryForeignKey& fk : foreign_keys) {
    if (!db.HasRelation(fk.from_relation)) continue;
    std::set<Value> target =
        ColumnConstants(db, fk.to_relation, fk.to_position);
    for (Relation::Row tuple : db.relation(fk.from_relation)) {
      Value v = tuple[fk.from_position];
      if (v.is_null() || target.count(v) == 0) return false;
    }
  }
  return true;
}

}  // namespace zeroone
