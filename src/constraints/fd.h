#ifndef ZEROONE_CONSTRAINTS_FD_H_
#define ZEROONE_CONSTRAINTS_FD_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "data/database.h"

namespace zeroone {

// A functional dependency X → A over a relation: any two tuples agreeing on
// the attribute positions X must agree on position A (Section 4.4; without
// loss of generality the right-hand side is a single attribute).
class FunctionalDependency : public Constraint {
 public:
  // Positions are 0-based attribute indices into a relation of the given
  // arity. Preconditions: all positions < arity, rhs not in lhs.
  FunctionalDependency(std::string relation, std::size_t arity,
                       std::vector<std::size_t> lhs, std::size_t rhs);

  const std::string& relation() const { return relation_; }
  std::size_t arity() const { return arity_; }
  const std::vector<std::size_t>& lhs() const { return lhs_; }
  std::size_t rhs() const { return rhs_; }

  // ∀x̄ ∀ȳ (R(x̄) ∧ R(ȳ) ∧ ⋀_{i∈X} x_i = y_i) → x_A = y_A.
  FormulaPtr ToFormula() const override;
  std::string ToString() const override;

 private:
  std::string relation_;
  std::size_t arity_;
  std::vector<std::size_t> lhs_;
  std::size_t rhs_;
};

// Result of chasing a database with a set of FDs (Section 4.4). The chase
// repeatedly resolves violations: a null involved in a violation is replaced
// by the other side's constant (or the two nulls are merged); two distinct
// constants on the right-hand side make the chase fail. Every chase order
// yields the same result up to null renaming; this implementation is
// deterministic.
struct ChaseResult {
  bool success = false;
  // Set when the chase was abandoned by cooperative cancellation (deadline
  // or explicit cancel) before reaching a fixpoint. `database` is then only
  // partially repaired and must not be committed anywhere; success is false.
  bool cancelled = false;
  // chase_Σ(D); meaningful only when success.
  Database database;
  // Where each original null of D ended up: a constant, or the
  // representative null of its merge class. Identity for untouched nulls.
  std::map<Value, Value> null_mapping;
  // For failed chases: a description of the constant/constant conflict.
  std::string failure_reason;
};

// Chases `db` with the given FDs. Runs in polynomial time in |db|.
ChaseResult ChaseFds(const std::vector<FunctionalDependency>& fds,
                     const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CONSTRAINTS_FD_H_
