#include "constraints/dependencies.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

namespace {

using Binding = std::vector<std::optional<Value>>;

std::size_t VariableCount(const std::vector<DependencyAtom>& atoms,
                          std::size_t minimum = 0) {
  std::size_t count = minimum;
  for (const DependencyAtom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) count = std::max(count, t.variable_id() + 1);
    }
  }
  return count;
}

// Backtracking homomorphism search: extends *binding so that every atom
// maps to a tuple of db; calls visitor per complete match. Visitor returns
// false to stop the search (which then returns true = stopped early).
bool MatchConjunction(const std::vector<DependencyAtom>& atoms,
                      std::size_t index, const Database& db,
                      Binding* binding,
                      const std::function<bool(const Binding&)>& visitor) {
  if (index == atoms.size()) return !visitor(*binding);
  const DependencyAtom& atom = atoms[index];
  if (!db.HasRelation(atom.relation)) return false;
  for (Relation::Row tuple : db.relation(atom.relation)) {
    ZO_COUNTER_INC("chase.match_nodes");
    if (tuple.arity() != atom.terms.size()) continue;
    std::vector<std::size_t> newly_bound;
    bool ok = true;
    for (std::size_t i = 0; i < atom.terms.size() && ok; ++i) {
      const Term& t = atom.terms[i];
      if (t.is_value()) {
        ok = t.value() == tuple[i];
        continue;
      }
      std::optional<Value>& slot = (*binding)[t.variable_id()];
      if (slot) {
        ok = *slot == tuple[i];
      } else {
        slot = tuple[i];
        newly_bound.push_back(t.variable_id());
      }
    }
    if (ok && MatchConjunction(atoms, index + 1, db, binding, visitor)) {
      for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
      return true;
    }
    for (std::size_t v : newly_bound) (*binding)[v] = std::nullopt;
  }
  return false;
}

FormulaPtr AtomsToConjunction(const std::vector<DependencyAtom>& atoms) {
  std::vector<FormulaPtr> conjuncts;
  conjuncts.reserve(atoms.size());
  for (const DependencyAtom& atom : atoms) {
    conjuncts.push_back(Formula::Atom(atom.relation, atom.terms));
  }
  return Formula::And(std::move(conjuncts));
}

std::vector<std::size_t> VariablesOf(const std::vector<DependencyAtom>& atoms) {
  std::set<std::size_t> variables;
  for (const DependencyAtom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) variables.insert(t.variable_id());
    }
  }
  return std::vector<std::size_t>(variables.begin(), variables.end());
}

std::string AtomsToString(const std::vector<DependencyAtom>& atoms) {
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += atoms[i].relation + "(";
    for (std::size_t j = 0; j < atoms[i].terms.size(); ++j) {
      if (j > 0) out += ",";
      const Term& t = atoms[i].terms[j];
      out += t.is_variable() ? "x" + std::to_string(t.variable_id())
                             : t.value().ToString();
    }
    out += ")";
  }
  return out;
}

}  // namespace

EqualityGeneratingDependency::EqualityGeneratingDependency(
    std::vector<DependencyAtom> body, std::size_t left_variable,
    std::size_t right_variable)
    : body_(std::move(body)),
      left_variable_(left_variable),
      right_variable_(right_variable) {
  std::vector<std::size_t> variables = VariablesOf(body_);
  assert(std::count(variables.begin(), variables.end(), left_variable_) == 1 &&
         std::count(variables.begin(), variables.end(), right_variable_) ==
             1 &&
         "EGD equated variables must occur in the body");
  (void)variables;
}

FormulaPtr EqualityGeneratingDependency::ToFormula() const {
  FormulaPtr body = AtomsToConjunction(body_);
  FormulaPtr conclusion = Formula::Equals(Term::Variable(left_variable_),
                                          Term::Variable(right_variable_));
  return Formula::Forall(VariablesOf(body_),
                         Formula::Implies(std::move(body),
                                          std::move(conclusion)));
}

std::string EqualityGeneratingDependency::ToString() const {
  return AtomsToString(body_) + " → x" + std::to_string(left_variable_) +
         " = x" + std::to_string(right_variable_);
}

TupleGeneratingDependency::TupleGeneratingDependency(
    std::vector<DependencyAtom> body, std::vector<DependencyAtom> head)
    : body_(std::move(body)), head_(std::move(head)) {
  assert(!head_.empty() && "TGD with empty head");
}

std::vector<std::size_t> TupleGeneratingDependency::ExistentialVariables()
    const {
  std::vector<std::size_t> body_variables = VariablesOf(body_);
  std::vector<std::size_t> result;
  for (std::size_t v : VariablesOf(head_)) {
    if (std::find(body_variables.begin(), body_variables.end(), v) ==
        body_variables.end()) {
      result.push_back(v);
    }
  }
  return result;
}

FormulaPtr TupleGeneratingDependency::ToFormula() const {
  FormulaPtr head = Formula::Exists(ExistentialVariables(),
                                    AtomsToConjunction(head_));
  return Formula::Forall(
      VariablesOf(body_),
      Formula::Implies(AtomsToConjunction(body_), std::move(head)));
}

std::string TupleGeneratingDependency::ToString() const {
  return AtomsToString(body_) + " → ∃ " + AtomsToString(head_);
}

ConstraintSet DependencySet::ToConstraintSet() const {
  ConstraintSet result;
  for (const EqualityGeneratingDependency& egd : egds) {
    result.push_back(std::make_shared<EqualityGeneratingDependency>(egd));
  }
  for (const TupleGeneratingDependency& tgd : tgds) {
    result.push_back(std::make_shared<TupleGeneratingDependency>(tgd));
  }
  return result;
}

bool CheckWeakAcyclicity(const std::vector<TupleGeneratingDependency>& tgds) {
  // Position graph: nodes are (relation, position).
  using Position = std::pair<std::string, std::size_t>;
  std::set<Position> nodes;
  std::map<Position, std::set<Position>> regular;
  std::map<Position, std::set<Position>> special;
  for (const TupleGeneratingDependency& tgd : tgds) {
    std::vector<std::size_t> existential = tgd.ExistentialVariables();
    auto is_existential = [&](std::size_t v) {
      return std::find(existential.begin(), existential.end(), v) !=
             existential.end();
    };
    // Body positions of each universal variable.
    std::map<std::size_t, std::vector<Position>> body_positions;
    for (const DependencyAtom& atom : tgd.body()) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        if (atom.terms[i].is_variable()) {
          Position p{atom.relation, i};
          nodes.insert(p);
          body_positions[atom.terms[i].variable_id()].push_back(p);
        }
      }
    }
    for (const DependencyAtom& atom : tgd.head()) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        if (!atom.terms[i].is_variable()) continue;
        Position q{atom.relation, i};
        nodes.insert(q);
        std::size_t v = atom.terms[i].variable_id();
        if (is_existential(v)) continue;
        for (const Position& p : body_positions[v]) {
          regular[p].insert(q);  // x propagates p → q.
          // And from p, every existential head position gets a special
          // edge.
          for (const DependencyAtom& head_atom : tgd.head()) {
            for (std::size_t j = 0; j < head_atom.terms.size(); ++j) {
              const Term& ht = head_atom.terms[j];
              if (ht.is_variable() && is_existential(ht.variable_id())) {
                special[p].insert(Position{head_atom.relation, j});
                nodes.insert(Position{head_atom.relation, j});
              }
            }
          }
        }
      }
    }
  }
  // Weakly acyclic iff no cycle goes through a special edge: for each
  // special edge (u, v), v must not reach u (through edges of both kinds).
  auto reaches = [&](const Position& from, const Position& to) {
    std::set<Position> visited;
    std::vector<Position> stack = {from};
    while (!stack.empty()) {
      Position current = stack.back();
      stack.pop_back();
      if (current == to) return true;
      if (!visited.insert(current).second) continue;
      for (const auto& edges : {regular, special}) {
        auto it = edges.find(current);
        if (it == edges.end()) continue;
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
    return false;
  };
  for (const auto& [u, targets] : special) {
    for (const Position& v : targets) {
      if (reaches(v, u)) return false;
    }
  }
  return true;
}

namespace {

// Replaces `from` by `to` everywhere.
void ReplaceValue(Value from, Value to, Database* db) {
  Database replaced(db->schema());
  for (const auto& [name, rel] : db->relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = tuple[i] == from ? to : tuple[i];
      }
      out.AddRow(values.data());
    }
    replaced.mutable_relation(name) = std::move(out).Build();
  }
  *db = std::move(replaced);
}

// One EGD repair step; returns whether a violation was found (and either
// repaired or declared fatal via *failure).
bool StepEgd(const EqualityGeneratingDependency& egd, Database* db,
             std::string* failure) {
  Binding binding(VariableCount(egd.body()));
  bool repaired = false;
  bool fatal = false;
  MatchConjunction(egd.body(), 0, *db, &binding, [&](const Binding& b) {
    Value left = *b[egd.left_variable()];
    Value right = *b[egd.right_variable()];
    if (left == right) return true;  // Not a violation; keep searching.
    if (left.is_constant() && right.is_constant()) {
      fatal = true;
      *failure = "chase failure on EGD " + egd.ToString() + ": " +
                 left.ToString() + " = " + right.ToString();
      return false;
    }
    if (left.is_null()) {
      ReplaceValue(left, right, db);
    } else {
      ReplaceValue(right, left, db);
    }
    ZO_COUNTER_INC("chase.egd_repairs");
    repaired = true;
    return false;  // Database changed; restart matching outside.
  });
  return repaired || fatal;
}

// One TGD firing with the standard-chase trigger condition; returns whether
// a rule fired.
bool StepTgd(const TupleGeneratingDependency& tgd, Database* db) {
  std::size_t variable_count =
      VariableCount(tgd.head(), VariableCount(tgd.body()));
  Binding binding(variable_count);
  bool fired = false;
  MatchConjunction(tgd.body(), 0, *db, &binding, [&](const Binding& b) {
    // Standard trigger: fire only if the head has no homomorphic image in
    // db extending b on the shared variables.
    Binding head_binding = b;
    bool satisfied =
        MatchConjunction(tgd.head(), 0, *db, &head_binding,
                         [](const Binding&) { return false; });
    if (satisfied) return true;  // Keep searching for other triggers.
    // Fire: fresh nulls for the existential variables.
    Binding extended = b;
    for (std::size_t v : tgd.ExistentialVariables()) {
      extended[v] = Value::FreshNull();
    }
    for (const DependencyAtom& atom : tgd.head()) {
      std::vector<Value> values;
      values.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        values.push_back(t.is_value() ? t.value()
                                      : *extended[t.variable_id()]);
      }
      db->AddRelation(atom.relation, atom.terms.size())
          .Insert(Tuple(std::move(values)));
    }
    ZO_COUNTER_INC("chase.tgd_firings");
    fired = true;
    return false;
  });
  return fired;
}

}  // namespace

GeneralChaseResult ChaseDependencies(const DependencySet& dependencies,
                                     const Database& db,
                                     std::size_t max_steps) {
  ZO_TRACE_SPAN("ChaseDependencies");
  GeneralChaseResult result;
  result.database = db;
  std::size_t steps = 0;
  bool changed = true;
  while (changed) {
    ZO_COUNTER_INC("chase.rounds");
    changed = false;
    for (const EqualityGeneratingDependency& egd : dependencies.egds) {
      while (StepEgd(egd, &result.database, &result.failure_reason)) {
        if (!result.failure_reason.empty()) {
          result.success = false;
          return result;
        }
        ZO_COUNTER_INC("chase.steps");
        changed = true;
        if (++steps > max_steps) {
          result.success = false;
          result.failure_reason = "chase step budget exhausted";
          return result;
        }
      }
    }
    for (const TupleGeneratingDependency& tgd : dependencies.tgds) {
      while (StepTgd(tgd, &result.database)) {
        ZO_COUNTER_INC("chase.steps");
        changed = true;
        if (++steps > max_steps) {
          result.success = false;
          result.failure_reason = "chase step budget exhausted";
          return result;
        }
      }
    }
  }
  result.success = true;
  return result;
}

}  // namespace zeroone
