#ifndef ZEROONE_CONSTRAINTS_KEYS_H_
#define ZEROONE_CONSTRAINTS_KEYS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/database.h"

namespace zeroone {

// Unary keys and foreign keys with the RDBMS interpretation used by
// Proposition 6: an attribute declared as a key may not contain nulls, key
// values are unique (two tuples sharing the key value must be the same
// tuple), and a foreign key is an inclusion of a column into a key column.

// Attribute `position` of `relation` (of the given arity) is a key.
struct UnaryKey {
  std::string relation;
  std::size_t arity = 0;
  std::size_t position = 0;

  std::string ToString() const;
};

// Column from_position of from_relation references the key column
// to_position of to_relation.
struct UnaryForeignKey {
  std::string from_relation;
  std::size_t from_position = 0;
  std::string to_relation;
  std::size_t to_position = 0;

  std::string ToString() const;
};

// Outcome of the polynomial-time satisfiability test of Proposition 6:
// whether some valuation v makes v(D) satisfy all keys and foreign keys.
struct KeySatisfiability {
  bool satisfiable = false;
  // When unsatisfiable, a human-readable reason.
  std::string reason;
};

// Decides in polynomial time (data complexity) whether the unary keys and
// foreign keys are satisfiable in D, i.e. whether some valuation yields a
// database satisfying them. The algorithm:
//   1. Key columns must be null-free (the RDBMS reading).
//   2. Two tuples agreeing on a key must be mergeable: a key induces the
//      FDs {key} → every other position, which are chased; chase failure
//      means two tuples share a key value but are forced to differ.
//   3. After the chase, every foreign-key source value must be realizable:
//      constants must appear in the target key column; each null must have
//      a nonempty intersection of the target columns it is subject to.
// Each foreign key's target column must be declared as a key, otherwise an
// error is returned.
StatusOr<KeySatisfiability> CheckKeySatisfiability(
    const std::vector<UnaryKey>& keys,
    const std::vector<UnaryForeignKey>& foreign_keys, const Database& db);

// Direct checker on a database (typically a complete one, v(D)): do all
// keys and foreign keys hold outright? Used to cross-validate the
// polynomial test against brute-force search over valuations in tests.
bool KeysHold(const std::vector<UnaryKey>& keys,
              const std::vector<UnaryForeignKey>& foreign_keys,
              const Database& db);

}  // namespace zeroone

#endif  // ZEROONE_CONSTRAINTS_KEYS_H_
