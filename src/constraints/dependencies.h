#ifndef ZEROONE_CONSTRAINTS_DEPENDENCIES_H_
#define ZEROONE_CONSTRAINTS_DEPENDENCIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/constraint.h"
#include "data/database.h"

namespace zeroone {

// General equality- and tuple-generating dependencies and the standard
// chase — the machinery behind the data-exchange and data-integration
// scenarios the paper's introduction cites ([3], [30]) and the general form
// of the constraints of Section 4 (FDs are single-relation EGDs; inclusion
// dependencies are single-atom full/existential TGDs).
//
//   EGD:  ∀x̄  φ(x̄) → x_i = x_j
//   TGD:  ∀x̄  φ(x̄) → ∃ȳ ψ(x̄, ȳ)
//
// with φ, ψ conjunctions of relational atoms. The standard chase fires
// violated dependencies: an EGD merges values (failing on two distinct
// constants), a TGD invents fresh labeled nulls for ȳ. TGD chases need not
// terminate in general; termination is guaranteed for weakly acyclic sets,
// which CheckWeakAcyclicity decides, and ChaseDependencies additionally
// enforces a step budget so misuse degrades into an error, never a hang.

// A conjunction of atoms over variables (dense per-dependency ids) and
// constants.
struct DependencyAtom {
  std::string relation;
  std::vector<Term> terms;
};

class EqualityGeneratingDependency : public Constraint {
 public:
  // φ(x̄) → left = right, where left/right are variables of φ.
  // Precondition: both variables occur in the body.
  EqualityGeneratingDependency(std::vector<DependencyAtom> body,
                               std::size_t left_variable,
                               std::size_t right_variable);

  const std::vector<DependencyAtom>& body() const { return body_; }
  std::size_t left_variable() const { return left_variable_; }
  std::size_t right_variable() const { return right_variable_; }

  FormulaPtr ToFormula() const override;
  std::string ToString() const override;

 private:
  std::vector<DependencyAtom> body_;
  std::size_t left_variable_;
  std::size_t right_variable_;
};

class TupleGeneratingDependency : public Constraint {
 public:
  // φ(x̄) → ∃ȳ ψ(x̄, ȳ). Head variables absent from the body are
  // existential (the ȳ). Precondition: nonempty head.
  TupleGeneratingDependency(std::vector<DependencyAtom> body,
                            std::vector<DependencyAtom> head);

  const std::vector<DependencyAtom>& body() const { return body_; }
  const std::vector<DependencyAtom>& head() const { return head_; }
  // Variables occurring in the head but not in the body.
  std::vector<std::size_t> ExistentialVariables() const;

  FormulaPtr ToFormula() const override;
  std::string ToString() const override;

 private:
  std::vector<DependencyAtom> body_;
  std::vector<DependencyAtom> head_;
};

struct DependencySet {
  std::vector<EqualityGeneratingDependency> egds;
  std::vector<TupleGeneratingDependency> tgds;

  ConstraintSet ToConstraintSet() const;
};

// Weak acyclicity of the TGDs (Fagin–Kolaitis–Miller–Popa): build the
// position graph with ordinary and "special" (existential-creating) edges;
// the set is weakly acyclic iff no cycle passes through a special edge.
// Weakly acyclic sets have terminating chases on every instance.
bool CheckWeakAcyclicity(const std::vector<TupleGeneratingDependency>& tgds);

// Result of the standard chase.
struct GeneralChaseResult {
  bool success = false;
  Database database;          // Meaningful when success.
  std::string failure_reason; // EGD constant clash, or step budget hit.
};

// Runs the standard chase (EGDs and TGDs interleaved to fixpoint). TGD
// firings use the *standard* (non-oblivious) trigger condition: a rule
// fires only if the head has no homomorphic image extending the trigger.
// `max_steps` bounds the total number of firings; exceeding it fails the
// chase (use CheckWeakAcyclicity to know termination is guaranteed).
GeneralChaseResult ChaseDependencies(const DependencySet& dependencies,
                                     const Database& db,
                                     std::size_t max_steps = 10000);

}  // namespace zeroone

#endif  // ZEROONE_CONSTRAINTS_DEPENDENCIES_H_
