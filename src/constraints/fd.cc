#include "constraints/fd.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

FunctionalDependency::FunctionalDependency(std::string relation,
                                           std::size_t arity,
                                           std::vector<std::size_t> lhs,
                                           std::size_t rhs)
    : relation_(std::move(relation)),
      arity_(arity),
      lhs_(std::move(lhs)),
      rhs_(rhs) {
  assert(rhs_ < arity_ && "FD rhs position out of range");
  for (std::size_t p : lhs_) {
    assert(p < arity_ && "FD lhs position out of range");
    (void)p;
  }
  assert(std::find(lhs_.begin(), lhs_.end(), rhs_) == lhs_.end() &&
         "trivial FD: rhs contained in lhs");
}

FormulaPtr FunctionalDependency::ToFormula() const {
  std::size_t width = arity_;
  // Variables 0..width-1 for x̄, width..2*width-1 for ȳ.
  std::vector<Term> xs;
  std::vector<Term> ys;
  std::vector<std::size_t> all_vars;
  for (std::size_t i = 0; i < width; ++i) {
    xs.push_back(Term::Variable(i));
    ys.push_back(Term::Variable(width + i));
    all_vars.push_back(i);
  }
  for (std::size_t i = 0; i < width; ++i) all_vars.push_back(width + i);
  std::vector<FormulaPtr> premises = {Formula::Atom(relation_, xs),
                                      Formula::Atom(relation_, ys)};
  for (std::size_t p : lhs_) {
    premises.push_back(Formula::Equals(xs[p], ys[p]));
  }
  FormulaPtr conclusion = Formula::Equals(xs[rhs_], ys[rhs_]);
  return Formula::Forall(
      all_vars, Formula::Implies(Formula::And(std::move(premises)),
                                 std::move(conclusion)));
}

std::string FunctionalDependency::ToString() const {
  std::string result = relation_ + ": {";
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) result += ",";
    result += std::to_string(lhs_[i]);
  }
  result += "} -> " + std::to_string(rhs_);
  return result;
}

namespace {

// Replaces every occurrence of `from` by `to` in the database and the
// mapping (a chase merge step).
void ReplaceEverywhere(Value from, Value to, Database* db,
                       std::map<Value, Value>* mapping) {
  Database replaced(db->schema());
  for (const auto& [name, rel] : db->relations()) {
    Relation::Builder out(name, rel.arity());
    std::vector<Value> values(rel.arity());
    for (Relation::Row tuple : rel) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = tuple[i] == from ? to : tuple[i];
      }
      out.AddRow(values.data());
    }
    replaced.mutable_relation(name) = std::move(out).Build();
  }
  *db = std::move(replaced);
  for (auto& [original, current] : *mapping) {
    if (current == from) current = to;
  }
}

// The first violating pair of `fd` in `rel`, as sorted positions (i, j),
// i < j, or nullopt when the FD holds. In indexed mode the inner loop
// probes the LHS-column index for rows agreeing with row i; probe spans
// ascend in sorted order, so the pair found is exactly the one the full
// nested scan finds — the chase stays byte-for-byte deterministic.
std::optional<std::pair<std::size_t, std::size_t>> FindViolation(
    const Relation& rel, const FunctionalDependency& fd) {
  std::vector<std::size_t> lhs_sorted(fd.lhs());
  std::sort(lhs_sorted.begin(), lhs_sorted.end());
  lhs_sorted.erase(std::unique(lhs_sorted.begin(), lhs_sorted.end()),
                   lhs_sorted.end());
  const bool indexed = storage_mode() == StorageMode::kIndexed &&
                       !lhs_sorted.empty() &&
                       rel.arity() <= Relation::kMaxIndexedColumns;
  const Relation::Mask mask =
      indexed ? Relation::MaskOfColumns(lhs_sorted) : 0;
  std::vector<Value> key(lhs_sorted.size());
  for (std::size_t i = 0; i < rel.size(); ++i) {
    Relation::Row t1 = rel.row(i);
    if (indexed) {
      for (std::size_t k = 0; k < lhs_sorted.size(); ++k) {
        key[k] = t1[lhs_sorted[k]];
      }
      for (std::uint32_t j : rel.Probe(mask, key)) {
        if (j <= i) continue;
        if (rel.row(j)[fd.rhs()] != t1[fd.rhs()]) return std::pair{i, std::size_t{j}};
      }
    } else {
      for (std::size_t j = i + 1; j < rel.size(); ++j) {
        Relation::Row t2 = rel.row(j);
        bool lhs_agree = true;
        for (std::size_t p : fd.lhs()) {
          if (t1[p] != t2[p]) {
            lhs_agree = false;
            break;
          }
        }
        if (!lhs_agree) continue;
        if (t2[fd.rhs()] != t1[fd.rhs()]) return std::pair{i, j};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

ChaseResult ChaseFds(const std::vector<FunctionalDependency>& fds,
                     const Database& db) {
  ZO_TRACE_SPAN("ChaseFds");
  ChaseResult result;
  result.database = db;
  for (Value null : db.Nulls()) {
    result.null_mapping.emplace(null, null);
  }
  // Fixpoint loop: scan for violations; each resolution strictly decreases
  // the number of distinct values or repairs a violation, so the loop
  // terminates in polynomially many steps.
  bool changed = true;
  while (changed) {
    if (CancellationRequested()) {
      result.cancelled = true;
      result.failure_reason = "chase cancelled before reaching a fixpoint";
      return result;  // success stays false: the database is half-repaired.
    }
    ZO_COUNTER_INC("chase.rounds");
    if (ZO_FAULT_POINT("chase.step.fail")) {
      // Simulated chase-step failure: route through the normal failure
      // path so no half-repaired database is ever committed.
      result.success = false;
      result.failure_reason = "injected fault: chase.step.fail";
      return result;
    }
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      if (!result.database.HasRelation(fd.relation())) continue;
      const Relation& rel = result.database.relation(fd.relation());
      std::optional<std::pair<std::size_t, std::size_t>> violation =
          FindViolation(rel, fd);
      if (!violation) continue;
      // A repair rebuilds result.database, dangling `rel` (and t1/t2), so
      // resolve this one violation, then restart the scan with fresh
      // references: nothing below the repair may touch them.
      Relation::Row t1 = rel.row(violation->first);
      Relation::Row t2 = rel.row(violation->second);
      Value a = t1[fd.rhs()];
      Value b = t2[fd.rhs()];
      // Resolve per the three chase cases.
      if (a.is_null() && b.is_constant()) {
        ZO_COUNTER_INC("chase.fd_repairs");
        ReplaceEverywhere(a, b, &result.database, &result.null_mapping);
      } else if (b.is_null() && a.is_constant()) {
        ZO_COUNTER_INC("chase.fd_repairs");
        ReplaceEverywhere(b, a, &result.database, &result.null_mapping);
      } else if (a.is_null() && b.is_null()) {
        ZO_COUNTER_INC("chase.fd_repairs");
        ReplaceEverywhere(b, a, &result.database, &result.null_mapping);
      } else {
        result.success = false;
        result.failure_reason = "chase failure on " + fd.ToString() +
                                ": tuples " + t1.ToString() + " and " +
                                t2.ToString() +
                                " force distinct constants " +
                                a.ToString() + " = " + b.ToString();
        return result;
      }
      changed = true;
      break;
    }
  }
  result.success = true;
  return result;
}

}  // namespace zeroone
