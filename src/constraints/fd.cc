#include "constraints/fd.h"

#include <algorithm>
#include <cassert>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zeroone {

FunctionalDependency::FunctionalDependency(std::string relation,
                                           std::size_t arity,
                                           std::vector<std::size_t> lhs,
                                           std::size_t rhs)
    : relation_(std::move(relation)),
      arity_(arity),
      lhs_(std::move(lhs)),
      rhs_(rhs) {
  assert(rhs_ < arity_ && "FD rhs position out of range");
  for (std::size_t p : lhs_) {
    assert(p < arity_ && "FD lhs position out of range");
    (void)p;
  }
  assert(std::find(lhs_.begin(), lhs_.end(), rhs_) == lhs_.end() &&
         "trivial FD: rhs contained in lhs");
}

FormulaPtr FunctionalDependency::ToFormula() const {
  std::size_t width = arity_;
  // Variables 0..width-1 for x̄, width..2*width-1 for ȳ.
  std::vector<Term> xs;
  std::vector<Term> ys;
  std::vector<std::size_t> all_vars;
  for (std::size_t i = 0; i < width; ++i) {
    xs.push_back(Term::Variable(i));
    ys.push_back(Term::Variable(width + i));
    all_vars.push_back(i);
  }
  for (std::size_t i = 0; i < width; ++i) all_vars.push_back(width + i);
  std::vector<FormulaPtr> premises = {Formula::Atom(relation_, xs),
                                      Formula::Atom(relation_, ys)};
  for (std::size_t p : lhs_) {
    premises.push_back(Formula::Equals(xs[p], ys[p]));
  }
  FormulaPtr conclusion = Formula::Equals(xs[rhs_], ys[rhs_]);
  return Formula::Forall(
      all_vars, Formula::Implies(Formula::And(std::move(premises)),
                                 std::move(conclusion)));
}

std::string FunctionalDependency::ToString() const {
  std::string result = relation_ + ": {";
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) result += ",";
    result += std::to_string(lhs_[i]);
  }
  result += "} -> " + std::to_string(rhs_);
  return result;
}

namespace {

// Replaces every occurrence of `from` by `to` in the database and the
// mapping (a chase merge step).
void ReplaceEverywhere(Value from, Value to, Database* db,
                       std::map<Value, Value>* mapping) {
  Database replaced(db->schema());
  for (const auto& [name, rel] : db->relations()) {
    Relation& out = replaced.mutable_relation(name);
    for (const Tuple& tuple : rel) {
      std::vector<Value> values;
      values.reserve(tuple.arity());
      for (Value v : tuple) values.push_back(v == from ? to : v);
      out.Insert(Tuple(std::move(values)));
    }
  }
  *db = std::move(replaced);
  for (auto& [original, current] : *mapping) {
    if (current == from) current = to;
  }
}

}  // namespace

ChaseResult ChaseFds(const std::vector<FunctionalDependency>& fds,
                     const Database& db) {
  ZO_TRACE_SPAN("ChaseFds");
  ChaseResult result;
  result.database = db;
  for (Value null : db.Nulls()) {
    result.null_mapping.emplace(null, null);
  }
  // Fixpoint loop: scan for violations; each resolution strictly decreases
  // the number of distinct values or repairs a violation, so the loop
  // terminates in polynomially many steps.
  bool changed = true;
  while (changed) {
    if (CancellationRequested()) {
      result.cancelled = true;
      result.failure_reason = "chase cancelled before reaching a fixpoint";
      return result;  // success stays false: the database is half-repaired.
    }
    ZO_COUNTER_INC("chase.rounds");
    if (ZO_FAULT_POINT("chase.step.fail")) {
      // Simulated chase-step failure: route through the normal failure
      // path so no half-repaired database is ever committed.
      result.success = false;
      result.failure_reason = "injected fault: chase.step.fail";
      return result;
    }
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      // A repair rebuilds result.database, dangling `rel` (and t1/t2), so
      // once `changed` is set nothing below may touch them: restart the
      // scan with fresh references, and test `!changed` *before* rel.size()
      // in the loop conditions.
      if (changed) break;
      if (!result.database.HasRelation(fd.relation())) continue;
      const Relation& rel = result.database.relation(fd.relation());
      // Find a violating pair.
      for (std::size_t i = 0; !changed && i < rel.size(); ++i) {
        for (std::size_t j = i + 1; !changed && j < rel.size(); ++j) {
          const Tuple& t1 = rel.tuples()[i];
          const Tuple& t2 = rel.tuples()[j];
          bool lhs_agree = true;
          for (std::size_t p : fd.lhs()) {
            if (t1[p] != t2[p]) {
              lhs_agree = false;
              break;
            }
          }
          if (!lhs_agree) continue;
          Value a = t1[fd.rhs()];
          Value b = t2[fd.rhs()];
          if (a == b) continue;
          // A violation: resolve per the three chase cases.
          if (a.is_null() && b.is_constant()) {
            ZO_COUNTER_INC("chase.fd_repairs");
            ReplaceEverywhere(a, b, &result.database, &result.null_mapping);
          } else if (b.is_null() && a.is_constant()) {
            ZO_COUNTER_INC("chase.fd_repairs");
            ReplaceEverywhere(b, a, &result.database, &result.null_mapping);
          } else if (a.is_null() && b.is_null()) {
            ZO_COUNTER_INC("chase.fd_repairs");
            ReplaceEverywhere(b, a, &result.database, &result.null_mapping);
          } else {
            result.success = false;
            result.failure_reason = "chase failure on " + fd.ToString() +
                                    ": tuples " + t1.ToString() + " and " +
                                    t2.ToString() +
                                    " force distinct constants " +
                                    a.ToString() + " = " + b.ToString();
            return result;
          }
          changed = true;
        }
      }
    }
  }
  result.success = true;
  return result;
}

}  // namespace zeroone
