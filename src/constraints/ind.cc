#include "constraints/ind.h"

#include <cassert>

namespace zeroone {

InclusionDependency::InclusionDependency(
    std::string from_relation, std::size_t from_arity,
    std::vector<std::size_t> from_positions, std::string to_relation,
    std::size_t to_arity, std::vector<std::size_t> to_positions)
    : from_relation_(std::move(from_relation)),
      from_arity_(from_arity),
      from_positions_(std::move(from_positions)),
      to_relation_(std::move(to_relation)),
      to_arity_(to_arity),
      to_positions_(std::move(to_positions)) {
  assert(!from_positions_.empty() && "IND needs at least one position");
  assert(from_positions_.size() == to_positions_.size() &&
         "IND position lists must have equal length");
  for (std::size_t p : from_positions_) {
    assert(p < from_arity_ && "IND from-position out of range");
    (void)p;
  }
  for (std::size_t p : to_positions_) {
    assert(p < to_arity_ && "IND to-position out of range");
    (void)p;
  }
}

FormulaPtr InclusionDependency::ToFormula() const {
  // Variables 0..from_arity-1 for x̄, from_arity..from_arity+to_arity-1
  // for ȳ.
  std::vector<Term> xs;
  std::vector<std::size_t> x_vars;
  for (std::size_t i = 0; i < from_arity_; ++i) {
    xs.push_back(Term::Variable(i));
    x_vars.push_back(i);
  }
  std::vector<Term> ys;
  std::vector<std::size_t> y_vars;
  for (std::size_t i = 0; i < to_arity_; ++i) {
    ys.push_back(Term::Variable(from_arity_ + i));
    y_vars.push_back(from_arity_ + i);
  }
  std::vector<FormulaPtr> conjuncts = {Formula::Atom(to_relation_, ys)};
  for (std::size_t l = 0; l < from_positions_.size(); ++l) {
    conjuncts.push_back(
        Formula::Equals(ys[to_positions_[l]], xs[from_positions_[l]]));
  }
  FormulaPtr body = Formula::Implies(
      Formula::Atom(from_relation_, xs),
      Formula::Exists(y_vars, Formula::And(std::move(conjuncts))));
  return Formula::Forall(x_vars, std::move(body));
}

std::string InclusionDependency::ToString() const {
  auto positions = [](const std::vector<std::size_t>& ps) {
    std::string out = "[";
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(ps[i]);
    }
    return out + "]";
  };
  return from_relation_ + positions(from_positions_) + " ⊆ " + to_relation_ +
         positions(to_positions_);
}

}  // namespace zeroone
