#ifndef ZEROONE_CONSTRAINTS_IND_H_
#define ZEROONE_CONSTRAINTS_IND_H_

#include <cstddef>
#include <string>
#include <vector>

#include "constraints/constraint.h"

namespace zeroone {

// An inclusion dependency R[i₁,…,i_n] ⊆ S[j₁,…,j_n]: the projection of R to
// positions ī is contained in the projection of S to positions j̄. These are
// the constraints that break the 0–1 law in Section 4: with a single IND,
// µ(Q|Σ,D) can be any rational in [0,1] (Proposition 4).
class InclusionDependency : public Constraint {
 public:
  // Preconditions: equal numbers of from/to positions (nonempty), positions
  // within the respective arities.
  InclusionDependency(std::string from_relation, std::size_t from_arity,
                      std::vector<std::size_t> from_positions,
                      std::string to_relation, std::size_t to_arity,
                      std::vector<std::size_t> to_positions);

  const std::string& from_relation() const { return from_relation_; }
  std::size_t from_arity() const { return from_arity_; }
  const std::vector<std::size_t>& from_positions() const {
    return from_positions_;
  }
  const std::string& to_relation() const { return to_relation_; }
  std::size_t to_arity() const { return to_arity_; }
  const std::vector<std::size_t>& to_positions() const {
    return to_positions_;
  }

  // ∀x̄ (R(x̄) → ∃ȳ S(ȳ) ∧ ⋀_l y_{j_l} = x_{i_l}).
  FormulaPtr ToFormula() const override;
  std::string ToString() const override;

 private:
  std::string from_relation_;
  std::size_t from_arity_;
  std::vector<std::size_t> from_positions_;
  std::string to_relation_;
  std::size_t to_arity_;
  std::vector<std::size_t> to_positions_;
};

}  // namespace zeroone

#endif  // ZEROONE_CONSTRAINTS_IND_H_
