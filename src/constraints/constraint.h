#ifndef ZEROONE_CONSTRAINTS_CONSTRAINT_H_
#define ZEROONE_CONSTRAINTS_CONSTRAINT_H_

#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace zeroone {

// An integrity constraint, viewed (as in Section 4) as a generic Boolean
// query: satisfied or violated by each complete database. Concrete
// constraint classes (functional and inclusion dependencies) compile
// themselves to first-order sentences, so the whole measure machinery —
// conditional measures µ(Q|Σ,D), the partition-polynomial algorithm — works
// uniformly on constraints.
class Constraint {
 public:
  virtual ~Constraint() = default;

  // The constraint as a closed first-order sentence (no free variables).
  virtual FormulaPtr ToFormula() const = 0;

  // Human-readable rendering, e.g. "R: {1} -> 2" or "R[1] ⊆ U[1]".
  virtual std::string ToString() const = 0;
};

using ConstraintPtr = std::shared_ptr<const Constraint>;

// A finite set Σ of constraints.
using ConstraintSet = std::vector<ConstraintPtr>;

// Σ as a single Boolean query: the conjunction of all members, or the
// constant-true query when Σ is empty.
Query ConstraintSetQuery(const ConstraintSet& constraints);

}  // namespace zeroone

#endif  // ZEROONE_CONSTRAINTS_CONSTRAINT_H_
