#include "constraints/constraint.h"

namespace zeroone {

Query ConstraintSetQuery(const ConstraintSet& constraints) {
  if (constraints.empty()) {
    return Query("Sigma", {}, Formula::True(), {});
  }
  std::vector<FormulaPtr> conjuncts;
  conjuncts.reserve(constraints.size());
  for (const ConstraintPtr& constraint : constraints) {
    conjuncts.push_back(constraint->ToFormula());
  }
  return Query("Sigma", {}, Formula::And(std::move(conjuncts)), {});
}

}  // namespace zeroone
