#ifndef ZEROONE_OBS_METRICS_H_
#define ZEROONE_OBS_METRICS_H_

// Process-global observability registry: named monotonic counters and
// latency histograms, in the spirit of absl/prometheus client metrics.
//
// Hot-path contract: a counter handle is resolved ONCE per call-site (a
// function-local static reference into the registry), after which each
// increment is a single relaxed atomic add. Registration takes a mutex and
// only happens the first time a call-site executes.
//
// The ZO_COUNTER_* macros (and ZO_TRACE_SPAN in obs/trace.h) compile to
// nothing when the library is configured with -DZEROONE_OBS=OFF, which
// defines ZEROONE_OBS_ENABLED=0; instrumented translation units then carry
// no reference to zeroone::obs at all.

#if !defined(ZEROONE_OBS_ENABLED)
#define ZEROONE_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zeroone {
namespace obs {

// A monotonically increasing counter. Thread-safe; increments are relaxed
// atomic adds. Instances live forever inside the Registry, so handles taken
// once stay valid for the process lifetime.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// A latency histogram over exponential (power-of-two) microsecond buckets:
// bucket i counts samples with value <= 2^i µs (i < kBucketCount - 1); the
// last bucket is unbounded. Thread-safe via relaxed atomics.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 20;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Upper bound (inclusive, in µs) of bucket i; the last bucket has no
  // bound and reports UINT64_MAX.
  static std::uint64_t BucketUpperBound(std::size_t i);
  // Index of the bucket that receives a sample of `micros`.
  static std::size_t BucketIndex(std::uint64_t micros);

  void Record(std::uint64_t micros);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_micros_{0};
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
};

// Process-global registry of counters and histograms. Lookup-or-create is
// mutex-protected; returned references are stable for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // All counter values by name, captured atomically enough for reporting
  // (each value is an independent relaxed load).
  std::map<std::string, std::uint64_t> CounterValues() const;

  // Dumps every counter and histogram as a JSON object:
  //   {"counters": {name: value, ...},
  //    "histograms": {name: {"count": n, "sum_micros": s,
  //                          "buckets": [{"le_micros": b, "count": c}, ...]},
  //                   ...}}
  void DumpJson(std::ostream& os) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Captures all counter values at construction; Delta() reports how much a
// counter grew since then. Used by tests and the bench harness to attribute
// work to one call region.
class ScopedSnapshot {
 public:
  ScopedSnapshot();

  // Growth of `name` since construction (0 for unknown counters).
  std::uint64_t Delta(std::string_view name) const;
  // All counters with a nonzero delta since construction.
  std::map<std::string, std::uint64_t> Deltas() const;

 private:
  std::map<std::string, std::uint64_t> baseline_;
};

// Escapes and quotes `text` as a JSON string literal (shared by the metric
// and trace dumpers).
void AppendJsonString(std::ostream& os, std::string_view text);

}  // namespace obs
}  // namespace zeroone

#define ZO_OBS_CONCAT_INNER_(a, b) a##b
#define ZO_OBS_CONCAT_(a, b) ZO_OBS_CONCAT_INNER_(a, b)

#if ZEROONE_OBS_ENABLED

// Increments the named counter. The registry lookup happens once per
// call-site; afterwards this is one relaxed atomic add.
#define ZO_COUNTER_INC(name) ZO_COUNTER_ADD(name, 1)

#define ZO_COUNTER_ADD(name, n)                                        \
  do {                                                                 \
    static ::zeroone::obs::Counter& ZO_OBS_CONCAT_(zo_counter_,        \
                                                   __LINE__) =         \
        ::zeroone::obs::Registry::Global().GetCounter(name);           \
    ZO_OBS_CONCAT_(zo_counter_, __LINE__).Add(n);                      \
  } while (0)

#else  // !ZEROONE_OBS_ENABLED

#define ZO_COUNTER_INC(name) ((void)0)
#define ZO_COUNTER_ADD(name, n) ((void)0)

#endif  // ZEROONE_OBS_ENABLED

#endif  // ZEROONE_OBS_METRICS_H_
