#ifndef ZEROONE_OBS_TRACE_H_
#define ZEROONE_OBS_TRACE_H_

// Scoped wall-time spans recorded into a bounded ring buffer, exportable in
// the Chrome trace_events JSON format (open in chrome://tracing or Perfetto
// https://ui.perfetto.dev).
//
// Usage — one statement at the top of a function or block:
//
//   void CountSupport(...) {
//     ZO_TRACE_SPAN("CountSupport");
//     ...
//   }
//
// Every span always records its duration into the latency histogram
// "latency.<name>" (see obs/metrics.h); it additionally appends a ring
// buffer event when tracing is enabled (TraceBuffer::Global().Enable(),
// done by `zeroone_cli --trace=FILE`). When the build is configured with
// -DZEROONE_OBS=OFF the macro expands to nothing.

#include "obs/metrics.h"

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace zeroone {
namespace obs {

// One completed span. `name` must be a string literal (or otherwise outlive
// the buffer); spans store the pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_micros = 0;   // Start, relative to process start.
  std::uint64_t dur_micros = 0;  // Wall-clock duration.
  std::uint32_t tid = 0;         // Small dense thread id.
};

// Microseconds since the first call in this process (a fixed epoch shared
// by all spans, so trace timestamps are comparable).
std::uint64_t MicrosSinceProcessStart();

// Bounded ring buffer of completed spans. Appends are mutex-protected and
// only attempted when `enabled()`; the enabled check itself is one relaxed
// atomic load, so instrumented code pays almost nothing while tracing is
// off. When the buffer is full the oldest events are overwritten.
class TraceBuffer {
 public:
  static constexpr std::size_t kCapacity = 1 << 14;

  static TraceBuffer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Append(const TraceEvent& event);

  // Events in append order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;
  // Total events ever appended (including overwritten ones).
  std::uint64_t total_appended() const;
  std::size_t capacity() const { return kCapacity; }
  void Clear();

  // Writes the buffer as Chrome trace_events JSON:
  //   {"displayTimeUnit": "ms", "traceEvents": [
  //     {"name": ..., "cat": "zeroone", "ph": "X", "pid": 1, "tid": ...,
  //      "ts": ..., "dur": ...}, ...]}
  void WriteChromeTrace(std::ostream& os) const;

 private:
  TraceBuffer() : ring_(kCapacity) {}

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_ = 0;  // Total appended; next slot is next_ % kCapacity.
};

// RAII span: records wall time from construction to destruction into the
// given histogram, and into the global trace buffer when tracing is on.
// Instantiate via ZO_TRACE_SPAN rather than directly.
class TraceSpan {
 public:
  TraceSpan(const char* name, Histogram* histogram)
      : name_(name),
        histogram_(histogram),
        start_micros_(MicrosSinceProcessStart()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;
  Histogram* histogram_;
  std::uint64_t start_micros_;
};

}  // namespace obs
}  // namespace zeroone

#if ZEROONE_OBS_ENABLED

// `name` must be a string literal. One per scope (uses __LINE__ for
// uniqueness).
#define ZO_TRACE_SPAN(name)                                                 \
  static ::zeroone::obs::Histogram& ZO_OBS_CONCAT_(zo_span_histogram_,      \
                                                   __LINE__) =              \
      ::zeroone::obs::Registry::Global().GetHistogram(std::string(          \
          "latency.") += (name));                                           \
  ::zeroone::obs::TraceSpan ZO_OBS_CONCAT_(zo_span_, __LINE__)(             \
      (name), &ZO_OBS_CONCAT_(zo_span_histogram_, __LINE__))

#else  // !ZEROONE_OBS_ENABLED

#define ZO_TRACE_SPAN(name) ((void)0)

#endif  // ZEROONE_OBS_ENABLED

#endif  // ZEROONE_OBS_TRACE_H_
