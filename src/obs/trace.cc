#include "obs/trace.h"

#include <ostream>
#include <thread>

namespace zeroone {
namespace obs {

namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

// Small dense per-thread id for trace readability (std::thread::id values
// are opaque and large).
std::uint32_t CurrentTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

}  // namespace

std::uint64_t MicrosSinceProcessStart() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count());
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_ % kCapacity] = event;
  ++next_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  if (next_ <= kCapacity) {
    events.assign(ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    events.reserve(kCapacity);
    for (std::uint64_t i = next_ - kCapacity; i < next_; ++i) {
      events.push_back(ring_[i % kCapacity]);
    }
  }
  return events;
}

std::uint64_t TraceBuffer::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  next_ = 0;
}

void TraceBuffer::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events = Snapshot();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": ";
    AppendJsonString(os, e.name == nullptr ? "" : e.name);
    os << ", \"cat\": \"zeroone\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.tid << ", \"ts\": " << e.ts_micros << ", \"dur\": "
       << e.dur_micros << "}";
  }
  os << "\n]}\n";
}

TraceSpan::~TraceSpan() {
  std::uint64_t end = MicrosSinceProcessStart();
  std::uint64_t duration = end - start_micros_;
  if (histogram_ != nullptr) histogram_->Record(duration);
  TraceBuffer& buffer = TraceBuffer::Global();
  if (buffer.enabled()) {
    TraceEvent event;
    event.name = name_;
    event.ts_micros = start_micros_;
    event.dur_micros = duration;
    event.tid = CurrentTid();
    buffer.Append(event);
  }
}

}  // namespace obs
}  // namespace zeroone
