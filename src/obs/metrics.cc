#include "obs/metrics.h"

#include <limits>
#include <ostream>

namespace zeroone {
namespace obs {

std::uint64_t Histogram::BucketUpperBound(std::size_t i) {
  if (i + 1 >= kBucketCount) return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1} << i;
}

std::size_t Histogram::BucketIndex(std::uint64_t micros) {
  for (std::size_t i = 0; i + 1 < kBucketCount; ++i) {
    if (micros <= BucketUpperBound(i)) return i;
  }
  return kBucketCount - 1;
}

void Histogram::Record(std::uint64_t micros) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> Registry::CounterValues() const {
  std::map<std::string, std::uint64_t> values;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    values[name] = counter->value();
  }
  return values;
}

void AppendJsonString(std::ostream& os, std::string_view text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Registry::DumpJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ", ";
    first = false;
    AppendJsonString(os, name);
    os << ": " << counter->value();
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ", ";
    first = false;
    AppendJsonString(os, name);
    os << ": {\"count\": " << histogram->count()
       << ", \"sum_micros\": " << histogram->sum_micros() << ", \"buckets\": [";
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (i > 0) os << ", ";
      os << "{\"le_micros\": ";
      if (i + 1 == Histogram::kBucketCount) {
        os << "null";
      } else {
        os << Histogram::BucketUpperBound(i);
      }
      os << ", \"count\": " << histogram->bucket(i) << "}";
    }
    os << "]}";
  }
  os << "}}";
}

ScopedSnapshot::ScopedSnapshot()
    : baseline_(Registry::Global().CounterValues()) {}

std::uint64_t ScopedSnapshot::Delta(std::string_view name) const {
  std::uint64_t current =
      Registry::Global().GetCounter(name).value();
  auto it = baseline_.find(std::string(name));
  std::uint64_t before = it == baseline_.end() ? 0 : it->second;
  return current - before;
}

std::map<std::string, std::uint64_t> ScopedSnapshot::Deltas() const {
  std::map<std::string, std::uint64_t> deltas;
  for (const auto& [name, value] : Registry::Global().CounterValues()) {
    auto it = baseline_.find(name);
    std::uint64_t before = it == baseline_.end() ? 0 : it->second;
    if (value > before) deltas[name] = value - before;
  }
  return deltas;
}

}  // namespace obs
}  // namespace zeroone
