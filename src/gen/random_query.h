#ifndef ZEROONE_GEN_RANDOM_QUERY_H_
#define ZEROONE_GEN_RANDOM_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace zeroone {

// Seeded random query generation for property-based tests: randomized
// cross-validation of the polynomial algorithms against the exhaustive
// definitions requires many small query/database pairs.
struct RandomQueryOptions {
  struct RelationSpec {
    std::string name;
    std::size_t arity;
  };
  std::vector<RelationSpec> relations;
  std::size_t free_variables = 1;
  std::size_t existential_variables = 2;
  std::size_t clauses = 2;            // Disjuncts (UCQ) / conjunct groups.
  std::size_t atoms_per_clause = 2;
  // Constants the query may mention, as c0..c{constant_pool-1} (matching
  // GenerateRandomDatabase's constant naming).
  std::size_t constant_pool = 3;
  double constant_probability = 0.2;  // Per atom position.
  std::uint64_t seed = 1;
};

// A union of conjunctive queries: each clause is an ∃-quantified
// conjunction of atoms; every free variable is made to occur in every
// clause (range restriction).
Query GenerateRandomUcq(const RandomQueryOptions& options);

// A first-order query: like a UCQ, but each atom may be negated with
// probability `negation_probability`, and every free variable still occurs
// in a positive atom of each clause.
Query GenerateRandomFo(const RandomQueryOptions& options,
                       double negation_probability);

}  // namespace zeroone

#endif  // ZEROONE_GEN_RANDOM_QUERY_H_
