#include "gen/random_db.h"

#include <random>

namespace zeroone {

Database GenerateRandomDatabase(const RandomDatabaseOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> constant_pick(
      0, options.constant_pool == 0 ? 0 : options.constant_pool - 1);
  std::uniform_int_distribution<std::size_t> null_pick(
      0, options.null_pool == 0 ? 0 : options.null_pool - 1);

  std::vector<Value> constants;
  constants.reserve(options.constant_pool);
  for (std::size_t i = 0; i < options.constant_pool; ++i) {
    constants.push_back(Value::Constant("c" + std::to_string(i)));
  }
  std::vector<Value> nulls;
  nulls.reserve(options.null_pool);
  for (std::size_t i = 0; i < options.null_pool; ++i) {
    nulls.push_back(Value::Null("s" + std::to_string(options.seed) + "n" +
                                std::to_string(i)));
  }

  Database db;
  for (const auto& spec : options.relations) {
    Relation& relation = db.AddRelation(spec.name, spec.arity);
    std::vector<Tuple> batch;
    batch.reserve(spec.tuple_count);
    for (std::size_t t = 0; t < spec.tuple_count; ++t) {
      std::vector<Value> values;
      values.reserve(spec.arity);
      for (std::size_t p = 0; p < spec.arity; ++p) {
        bool use_null = !nulls.empty() &&
                        coin(rng) < options.null_probability;
        if (use_null) {
          values.push_back(nulls[null_pick(rng)]);
        } else if (!constants.empty()) {
          values.push_back(constants[constant_pick(rng)]);
        } else {
          values.push_back(nulls[null_pick(rng)]);
        }
      }
      batch.push_back(Tuple(std::move(values)));
    }
    relation.InsertBatch(batch);
  }
  return db;
}

}  // namespace zeroone
