#include "gen/random_query.h"

#include <cassert>
#include <random>
#include <set>

namespace zeroone {

namespace {

// Builds one clause: a conjunction of (possibly negated) atoms over the
// variable ids [0, free + existential), with every free variable forced to
// occur in at least one positive atom.
FormulaPtr BuildClause(const RandomQueryOptions& options,
                       double negation_probability, std::mt19937_64* rng) {
  assert(!options.relations.empty());
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> relation_pick(
      0, options.relations.size() - 1);
  std::size_t variable_count =
      options.free_variables + options.existential_variables;
  std::uniform_int_distribution<std::size_t> variable_pick(
      0, variable_count == 0 ? 0 : variable_count - 1);
  std::uniform_int_distribution<std::size_t> constant_pick(
      0, options.constant_pool == 0 ? 0 : options.constant_pool - 1);

  struct RawAtom {
    std::size_t relation;
    std::vector<Term> terms;
    bool negated;
  };
  std::vector<RawAtom> atoms;
  for (std::size_t i = 0; i < options.atoms_per_clause; ++i) {
    RawAtom atom;
    atom.relation = relation_pick(*rng);
    std::size_t arity = options.relations[atom.relation].arity;
    for (std::size_t p = 0; p < arity; ++p) {
      bool use_constant = options.constant_pool > 0 &&
                          coin(*rng) < options.constant_probability;
      if (use_constant || variable_count == 0) {
        atom.terms.push_back(Term::Val(
            Value::Constant("c" + std::to_string(constant_pick(*rng)))));
      } else {
        atom.terms.push_back(Term::Variable(variable_pick(*rng)));
      }
    }
    atom.negated = coin(*rng) < negation_probability;
    atoms.push_back(std::move(atom));
  }

  // Range restriction: every free variable must occur in a positive atom.
  for (std::size_t v = 0; v < options.free_variables; ++v) {
    bool occurs = false;
    for (const RawAtom& atom : atoms) {
      if (atom.negated) continue;
      for (const Term& t : atom.terms) {
        occurs = occurs || (t.is_variable() && t.variable_id() == v);
      }
    }
    if (occurs) continue;
    // Place v into a random position of a positive atom (creating one if
    // all atoms are negated).
    std::vector<std::size_t> positive;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (!atoms[i].negated && !atoms[i].terms.empty()) positive.push_back(i);
    }
    if (positive.empty()) {
      for (RawAtom& atom : atoms) {
        if (!atom.terms.empty()) {
          atom.negated = false;
          positive.push_back(&atom - atoms.data());
          break;
        }
      }
    }
    if (positive.empty()) continue;  // Only 0-ary atoms; nothing to do.
    std::uniform_int_distribution<std::size_t> atom_pick(0,
                                                         positive.size() - 1);
    RawAtom& host = atoms[positive[atom_pick(*rng)]];
    std::uniform_int_distribution<std::size_t> position_pick(
        0, host.terms.size() - 1);
    host.terms[position_pick(*rng)] = Term::Variable(v);
  }

  std::vector<FormulaPtr> literals;
  for (const RawAtom& atom : atoms) {
    FormulaPtr f = Formula::Atom(options.relations[atom.relation].name,
                                 atom.terms);
    literals.push_back(atom.negated ? Formula::Not(std::move(f))
                                    : std::move(f));
  }
  FormulaPtr body = Formula::And(std::move(literals));
  // Existentially quantify the non-free variables that occur.
  std::vector<std::size_t> existential;
  for (std::size_t v = options.free_variables; v < variable_count; ++v) {
    existential.push_back(v);
  }
  return Formula::Exists(existential, std::move(body));
}

Query BuildQuery(const RandomQueryOptions& options,
                 double negation_probability) {
  std::mt19937_64 rng(options.seed);
  std::vector<FormulaPtr> clauses;
  for (std::size_t i = 0; i < options.clauses; ++i) {
    clauses.push_back(BuildClause(options, negation_probability, &rng));
  }
  FormulaPtr formula = Formula::Or(std::move(clauses));
  std::vector<std::size_t> free_variables;
  std::vector<std::string> names;
  for (std::size_t v = 0; v < options.free_variables; ++v) {
    free_variables.push_back(v);
    names.push_back("x" + std::to_string(v));
  }
  for (std::size_t v = options.free_variables;
       v < options.free_variables + options.existential_variables; ++v) {
    names.push_back("y" + std::to_string(v));
  }
  return Query("Qrand", std::move(free_variables), std::move(formula),
               std::move(names));
}

}  // namespace

Query GenerateRandomUcq(const RandomQueryOptions& options) {
  return BuildQuery(options, 0.0);
}

Query GenerateRandomFo(const RandomQueryOptions& options,
                       double negation_probability) {
  return BuildQuery(options, negation_probability);
}

}  // namespace zeroone
