#ifndef ZEROONE_GEN_RANDOM_DB_H_
#define ZEROONE_GEN_RANDOM_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/database.h"

namespace zeroone {

// Seeded random incomplete-database generation for property tests and
// benchmark workloads. Generation is deterministic in the options
// (including the seed): the same options always produce the same database,
// with constants named c0..c{constant_pool-1} and nulls labeled
// s<seed>n0..s<seed>n{null_pool-1} (fresh labels per seed, so databases
// from different seeds do not share nulls).
struct RandomDatabaseOptions {
  struct RelationSpec {
    std::string name;
    std::size_t arity;
    std::size_t tuple_count;
  };
  std::vector<RelationSpec> relations;
  // Number of distinct constants values are drawn from.
  std::size_t constant_pool = 8;
  // Number of distinct nulls values are drawn from (shared across
  // relations, producing the correlations that make marked nulls
  // interesting).
  std::size_t null_pool = 3;
  // Probability that a position holds a null rather than a constant.
  double null_probability = 0.3;
  std::uint64_t seed = 1;
};

Database GenerateRandomDatabase(const RandomDatabaseOptions& options);

}  // namespace zeroone

#endif  // ZEROONE_GEN_RANDOM_DB_H_
