#include "gen/scenarios.h"

#include <cassert>
#include <random>

#include "query/parser.h"

namespace zeroone {

namespace {

// All scenario queries are fixed strings; parsing them cannot fail, which
// the assert documents.
Query MustParse(const char* text) {
  StatusOr<Query> query = ParseQuery(text);
  assert(query.ok() && "scenario query failed to parse");
  return std::move(query).value();
}

}  // namespace

IntroExample PaperIntroExample() {
  IntroExample example;
  Value c1 = Value::Constant("c1");
  Value c2 = Value::Constant("c2");
  Value n1 = Value::Null("1");
  Value n2 = Value::Null("2");
  Value n3 = Value::Null("3");
  Relation& r1 = example.db.AddRelation("R1", 2);
  r1.Insert({c1, n1});
  r1.Insert({c2, n1});
  r1.Insert({c2, n2});
  Relation& r2 = example.db.AddRelation("R2", 2);
  r2.Insert({c1, n2});
  r2.Insert({c2, n1});
  r2.Insert({n3, n1});
  example.query = MustParse("Q(x, y) := R1(x, y) & !R2(x, y)");
  return example;
}

IntroExample ScaledIntroExample(std::size_t customers,
                                std::size_t orders_per_customer,
                                double null_fraction, std::uint64_t seed) {
  IntroExample example;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Relation& r1 = example.db.AddRelation("R1", 2);
  Relation& r2 = example.db.AddRelation("R2", 2);
  std::size_t next_null = 0;
  for (std::size_t c = 0; c < customers; ++c) {
    Value customer = Value::Constant("cust" + std::to_string(c));
    for (std::size_t o = 0; o < orders_per_customer; ++o) {
      Value product =
          Value::Constant("prod" + std::to_string((c * 7 + o * 13) % (customers * orders_per_customer)));
      bool nullify = coin(rng) < null_fraction;
      if (!nullify) {
        r1.Insert({customer, product});
        r2.Insert({customer, product});
        continue;
      }
      // An unknown product; with probability 1/2 the same unknown product
      // was bought from both suppliers (a shared null, as ⊥1 in the paper).
      Value unknown = Value::Null("intro" + std::to_string(seed) + "_" +
                                  std::to_string(next_null++));
      r1.Insert({customer, unknown});
      if (coin(rng) < 0.5) {
        r2.Insert({customer, unknown});
      } else {
        r2.Insert({customer, product});
      }
    }
  }
  example.query = MustParse("Q(x, y) := R1(x, y) & !R2(x, y)");
  return example;
}

ConditionalExample PaperConditionalExample() {
  ConditionalExample example;
  Value one = Value::Constant("1");
  Value two = Value::Constant("2");
  Value three = Value::Constant("3");
  Value null = Value::Null("cond");
  Relation& r = example.db.AddRelation("R", 2);
  r.Insert({two, one});
  r.Insert({null, null});
  Relation& u = example.db.AddRelation("U", 1);
  u.Insert({one});
  u.Insert({two});
  u.Insert({three});
  example.query = MustParse("Q(x, y) := R(x, y)");
  example.constraints.push_back(std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0}));
  example.tuple_a = Tuple{one, null};
  example.tuple_b = Tuple{two, null};
  return example;
}

RationalValueExample Proposition4Example(std::size_t p, std::size_t r) {
  assert(p >= 1 && p <= r && "Proposition 4 requires 0 < p <= r");
  RationalValueExample example;
  Relation& rel_r = example.db.AddRelation("R", 2);
  for (std::size_t i = 1; i + 1 <= p; ++i) {
    Value v = Value::Int(static_cast<std::int64_t>(i));
    rel_r.Insert({v, v});
  }
  Value null = Value::Null("prop4");
  rel_r.Insert({null, Value::Int(static_cast<std::int64_t>(p))});
  Relation& rel_s = example.db.AddRelation("S", 2);
  rel_s.Insert({null, null});
  Relation& rel_u = example.db.AddRelation("U", 1);
  for (std::size_t i = 1; i <= r; ++i) {
    rel_u.Insert({Value::Int(static_cast<std::int64_t>(i))});
  }
  example.query = MustParse(":= exists x, y . R(x, y) & S(x, y)");
  example.constraints.push_back(std::make_shared<InclusionDependency>(
      "R", 2, std::vector<std::size_t>{0}, "U", 1,
      std::vector<std::size_t>{0}));
  return example;
}

NaiveBreaksExample PaperNaiveBreaksExample() {
  NaiveBreaksExample example;
  Value null_r = Value::Null("nb1");
  Value null_s = Value::Null("nb2");
  example.db.AddRelation("R", 1).Insert({null_r});
  example.db.AddRelation("S", 1).Insert({null_s});
  example.db.AddRelation("U", 1).Insert({null_r});
  example.db.AddRelation("V", 1).Insert({Value::Constant("1")});
  example.query = MustParse(":= forall x . U(x) -> (R(x) & !S(x))");
  example.constraints.push_back(std::make_shared<InclusionDependency>(
      "R", 1, std::vector<std::size_t>{0}, "V", 1,
      std::vector<std::size_t>{0}));
  example.constraints.push_back(std::make_shared<InclusionDependency>(
      "S", 1, std::vector<std::size_t>{0}, "V", 1,
      std::vector<std::size_t>{0}));
  return example;
}

BestAnswerExample PaperBestAnswerExample() {
  BestAnswerExample example;
  Value one = Value::Constant("1");
  Value two = Value::Constant("2");
  Value n1 = Value::Null("ba1");
  Value n2 = Value::Null("ba2");
  Value n3 = Value::Null("ba3");
  Relation& r = example.db.AddRelation("R", 2);
  r.Insert({one, n1});
  r.Insert({two, n2});
  Relation& s = example.db.AddRelation("S", 2);
  s.Insert({one, n2});
  s.Insert({n3, n1});
  example.query = MustParse("Q(x, y) := R(x, y) & !S(x, y)");
  example.tuple_a = Tuple{one, n1};
  example.tuple_b = Tuple{two, n2};
  return example;
}

OrthogonalityExample Proposition7Example(bool with_g) {
  OrthogonalityExample example;
  Value a = Value::Constant("a");
  Value b = Value::Constant("b");
  Value n1 = Value::Null("or1");
  Value n2 = Value::Null("or2");
  example.db.AddRelation("A", 1).Insert({a});
  example.db.AddRelation("B", 1).Insert({b});
  Relation& r = example.db.AddRelation("R", 2);
  r.Insert({n1, n2});
  if (with_g) {
    example.db.AddRelation("G", 1).Insert({Value::Constant("g")});
    example.query = MustParse(
        "Q(x) := G(x) | (B(x) & (exists y . R(y, y))) | "
        "(A(x) & !(exists y . R(y, y)))");
  } else {
    example.query = MustParse(
        "Q(x) := (B(x) & (exists y . R(y, y))) | "
        "(A(x) & !(exists y . R(y, y)))");
  }
  example.tuple_a = Tuple{a};
  example.tuple_b = Tuple{b};
  return example;
}

OwaExample Proposition2Example() {
  OwaExample example;
  example.db.AddRelation("U", 1);
  example.q1 = MustParse(":= !(exists x . U(x))");
  example.q2 = MustParse(":= exists x . U(x)");
  return example;
}

}  // namespace zeroone
