#ifndef ZEROONE_GEN_SCENARIOS_H_
#define ZEROONE_GEN_SCENARIOS_H_

#include <cstdint>

#include "constraints/constraint.h"
#include "constraints/ind.h"
#include "data/database.h"
#include "query/query.h"

namespace zeroone {

// The worked examples of the paper, reproduced exactly, plus scalable
// variants for benchmarking. Each returns the database/query/constraints a
// section of the paper reasons about, so tests and benches can check the
// claimed numbers verbatim.

// Section 1 (decision support): relations R1, R2 with customers c1, c2 and
// nulls ⊥1, ⊥2, ⊥3; query Q(x,y) = R1(x,y) ∧ ¬R2(x,y). The paper's claims:
// certain answers are empty; naïve answers are (c1,⊥1) and (c2,⊥2); tuple
// (c2,⊥2) has strictly more support; under the FD customer→product both
// naïve answers become almost certainly false.
struct IntroExample {
  Database db;
  Query query;
};
IntroExample PaperIntroExample();

// A scalable version of the intro scenario: `customers` customers each
// buying `orders_per_customer` products from two suppliers, a fraction of
// product fields null (some shared between suppliers, as in the paper).
IntroExample ScaledIntroExample(std::size_t customers,
                                std::size_t orders_per_customer,
                                double null_fraction, std::uint64_t seed);

// Section 4 (conditional probability): R = {(2,1), (⊥,⊥)}, U = {1,2,3},
// Σ = { R[0] ⊆ U[0] }, Q(x,y) = R(x,y). Claims: µ(Q|Σ,D,(1,⊥)) = 1/3 and
// µ(Q|Σ,D,(2,⊥)) = 2/3.
struct ConditionalExample {
  Database db;
  Query query;
  ConstraintSet constraints;
  Tuple tuple_a;  // (1, ⊥)
  Tuple tuple_b;  // (2, ⊥)
};
ConditionalExample PaperConditionalExample();

// Proposition 4: for s = p/r (0 < p ≤ r), a database, one inclusion
// dependency, and a Boolean conjunctive query with µ(Q|Σ,D) = p/r:
// R = {(1,1), …, (p−1,p−1), (⊥,p)}, S = {(⊥,⊥)}, U = {1..r},
// Σ = { R[0] ⊆ U[0] }, Q = ∃x,y R(x,y) ∧ S(x,y).
struct RationalValueExample {
  Database db;
  Query query;
  ConstraintSet constraints;
};
RationalValueExample Proposition4Example(std::size_t p, std::size_t r);

// Section 4.3 (constraints break naïve evaluation): R = {⊥}, S = {⊥′},
// U = {⊥}, V = {1}, Σ = { R ⊆ V, S ⊆ V },
// Q = ∀x U(x) → (R(x) ∧ ¬S(x)). Claims: Q^naive(D) and (Σ→Q)^naive(D) are
// true but µ(Q|Σ,D) = 0.
struct NaiveBreaksExample {
  Database db;
  Query query;
  ConstraintSet constraints;
};
NaiveBreaksExample PaperNaiveBreaksExample();

// Section 5 (best answers): R = {(1,⊥1),(2,⊥2)}, S = {(1,⊥2),(⊥3,⊥1)},
// Q(x,y) = R(x,y) ∧ ¬S(x,y). Claims: certain answers empty;
// (1,⊥1) ◁ (2,⊥2); Best(Q,D) = {(2,⊥2)}.
struct BestAnswerExample {
  Database db;
  Query query;
  Tuple tuple_a;  // (1, ⊥1)
  Tuple tuple_b;  // (2, ⊥2)
};
BestAnswerExample PaperBestAnswerExample();

// Proposition 7 (best vs almost-certain orthogonality): relations A = {a},
// B = {b}, R = {(⊥,⊥′)} and Q(x) = (B(x) ∧ ∃y R(y,y)) ∨ (A(x) ∧ ¬∃y R(y,y)).
// Claims: Best = {a, b}, µ(Q,D,a) = 1, µ(Q,D,b) = 0. The expanded variant
// adds G = {g} and Q′(x) = G(x) ∨ Q(x), making a and b non-best with
// unchanged measures.
struct OrthogonalityExample {
  Database db;          // With relation G already present (add_g == true).
  Query query;          // Q or Q′ depending on with_g.
  Tuple tuple_a;        // (a)
  Tuple tuple_b;        // (b)
};
OrthogonalityExample Proposition7Example(bool with_g);

// Proposition 2 (OWA): D with a single empty unary relation U;
// Q1 = ¬∃x U(x) (owa-m = 0, naïve true), Q2 = ∃x U(x) (owa-m = 1, naïve
// false).
struct OwaExample {
  Database db;
  Query q1;
  Query q2;
};
OwaExample Proposition2Example();

}  // namespace zeroone

#endif  // ZEROONE_GEN_SCENARIOS_H_
