#!/usr/bin/env bash
# Serving smoke test: start zeroone_server on an ephemeral port, drive it
# with zeroone_loadgen, SIGTERM it, and assert a clean drain (exit 0) plus
# a valid --metrics JSON dump. Used by CI (plain and TSan builds) and
# runnable locally:
#
#   scripts/smoke_serving.sh [build-dir]   # default: build
set -euo pipefail

build_dir="${1:-build}"
server="$build_dir/tools/zeroone_server"
loadgen="$build_dir/tools/zeroone_loadgen"
for binary in "$server" "$loadgen"; do
  if [[ ! -x "$binary" ]]; then
    echo "missing binary: $binary (build the zeroone_server and" \
         "zeroone_loadgen targets first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
metrics="$workdir/metrics.json"
server_out="$workdir/server.out"
loadgen_out="$workdir/loadgen.json"

"$server" --port=0 --threads=2 --queue=16 --metrics="$metrics" \
  > "$server_out" 2> "$workdir/server.err" &
server_pid=$!

# The server prints exactly one line: "listening on HOST:PORT".
port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$server_out")"
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "server did not announce a port; stderr:" >&2
  cat "$workdir/server.err" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
fi
echo "server up on port $port (pid $server_pid)"

"$loadgen" --port="$port" --connections=2 --requests=40 --deadline-ms=5000 \
  > "$loadgen_out"
echo "loadgen summary: $(cat "$loadgen_out")"

# Graceful drain: SIGTERM, then the server must exit 0 by itself.
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
if [[ "$server_rc" -ne 0 ]]; then
  echo "server exited $server_rc after SIGTERM (expected 0); stderr:" >&2
  cat "$workdir/server.err" >&2
  exit 1
fi
echo "server drained cleanly"

# The metrics dump must be valid JSON with the serving counters present.
python3 - "$metrics" "$loadgen_out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    metrics = json.load(f)
if not isinstance(metrics, dict):
    sys.exit("metrics dump is not a JSON object")
# With ZEROONE_OBS=OFF the dump is valid but empty; when instrumentation
# is compiled in, the serving counters must be present.
counters = json.dumps(metrics)
if any(metrics.values()) and "svc." not in counters:
    sys.exit("metrics dump has counters but no svc.* ones")

with open(sys.argv[2]) as f:
    summary = json.load(f)
if summary.get("transport_failures", 1) != 0:
    sys.exit("loadgen saw transport failures: %s" % summary)
if summary.get("ok", 0) <= 0:
    sys.exit("loadgen saw no OK responses: %s" % summary)
print("metrics JSON valid; loadgen: %d ok, %d answered"
      % (summary["ok"], summary["answered"]))
EOF
echo "smoke_serving: PASS"
