#!/usr/bin/env bash
# Serving smoke test: start zeroone_server on an ephemeral port, drive it
# with zeroone_loadgen, SIGTERM it, and assert a clean drain (exit 0) plus
# a valid --metrics JSON dump. Used by CI (plain and TSan builds) and
# runnable locally:
#
#   scripts/smoke_serving.sh [build-dir]   # default: build
set -euo pipefail

build_dir="${1:-build}"
server="$build_dir/tools/zeroone_server"
loadgen="$build_dir/tools/zeroone_loadgen"
router="$build_dir/tools/zeroone_router"
for binary in "$server" "$loadgen" "$router"; do
  if [[ ! -x "$binary" ]]; then
    echo "missing binary: $binary (build the zeroone_server," \
         "zeroone_loadgen, and zeroone_router targets first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
metrics="$workdir/metrics.json"
server_out="$workdir/server.out"
loadgen_out="$workdir/loadgen.json"

# Waits until "$2 listening on HOST:PORT" appears in file $1 and echoes the
# port ("" prefix matches the plain ZO1 announcement, "http " the gateway).
wait_port() {
  local out="$1" prefix="$2" port=""
  for _ in $(seq 1 50); do
    port="$(sed -n "s/^${prefix}listening on .*:\([0-9][0-9]*\)$/\1/p" \
      "$out")"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  return 1
}

"$server" --port=0 --http-port=0 --threads=2 --queue=16 \
  --metrics="$metrics" > "$server_out" 2> "$workdir/server.err" &
server_pid=$!

port="$(wait_port "$server_out" "")" || {
  echo "server did not announce a port; stderr:" >&2
  cat "$workdir/server.err" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
}
http_port="$(wait_port "$server_out" "http ")" || {
  echo "server did not announce an HTTP port; stderr:" >&2
  cat "$workdir/server.err" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
}
echo "server up on port $port, http $http_port (pid $server_pid)"

"$loadgen" --port="$port" --connections=2 --requests=40 --deadline-ms=5000 \
  > "$loadgen_out"
echo "loadgen summary: $(cat "$loadgen_out")"

# HTTP gateway: the same dispatcher answers JSON over HTTP (docs/serving.md,
# "HTTP gateway"). ping must pong with 200, bad JSON must 400, and /metrics
# must expose the serving counters.
http_body="$(curl -sS -X POST "http://127.0.0.1:$http_port/v1/query" \
  -d '{"command": "ping"}')"
case "$http_body" in
  *'"status":"OK"'*'"payload":"pong"'*) ;;
  *) echo "HTTP ping gave unexpected body: $http_body" >&2; exit 1 ;;
esac
http_code="$(curl -sS -o /dev/null -w '%{http_code}' \
  -X POST "http://127.0.0.1:$http_port/v1/query" -d '{nope')"
if [[ "$http_code" != "400" ]]; then
  echo "HTTP malformed JSON gave $http_code (expected 400)" >&2
  exit 1
fi
# With ZEROONE_OBS=OFF the dump is valid but empty, mirroring the metrics
# file check below.
metrics_body="$(curl -sS "http://127.0.0.1:$http_port/metrics")"
case "$metrics_body" in
  *svc.server.requests*) ;;
  '{}'|*'"counters": {}'*) ;;
  *) echo "HTTP /metrics has counters but not svc.server.requests:" \
       "$metrics_body" >&2; exit 1 ;;
esac
echo "http gateway: ping/400/metrics OK"

# Graceful drain: SIGTERM, then the server must exit 0 by itself.
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
if [[ "$server_rc" -ne 0 ]]; then
  echo "server exited $server_rc after SIGTERM (expected 0); stderr:" >&2
  cat "$workdir/server.err" >&2
  exit 1
fi
echo "server drained cleanly"

# The metrics dump must be valid JSON with the serving counters present.
python3 - "$metrics" "$loadgen_out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    metrics = json.load(f)
if not isinstance(metrics, dict):
    sys.exit("metrics dump is not a JSON object")
# With ZEROONE_OBS=OFF the dump is valid but empty; when instrumentation
# is compiled in, the serving counters must be present.
counters = json.dumps(metrics)
if any(metrics.values()) and "svc." not in counters:
    sys.exit("metrics dump has counters but no svc.* ones")

with open(sys.argv[2]) as f:
    summary = json.load(f)
if summary.get("transport_failures", 1) != 0:
    sys.exit("loadgen saw transport failures: %s" % summary)
if summary.get("ok", 0) <= 0:
    sys.exit("loadgen saw no OK responses: %s" % summary)
print("metrics JSON valid; loadgen: %d ok, %d answered"
      % (summary["ok"], summary["answered"]))
EOF

# --- Sharded phase: three backends behind the consistent-hash router ----
# (docs/serving.md, "Scaling out"). loadgen targets the router, then
# recomputes the ring via --endpoints and asserts every session with state
# actually lives on its predicted shard; --verify must find every
# acknowledged tuple on some endpoint.
backend_pids=()
endpoints=""
for i in 0 1 2; do
  out="$workdir/backend$i.out"
  "$server" --port=0 --threads=2 --snapshot-dir="$workdir/backend$i" \
    > "$out" 2> "$workdir/backend$i.err" &
  backend_pids+=($!)
  bport="$(wait_port "$out" "")" || {
    echo "backend $i did not announce a port; stderr:" >&2
    cat "$workdir/backend$i.err" >&2
    exit 1
  }
  endpoints+="${endpoints:+,}127.0.0.1:$bport"
done
"$router" --backends="$endpoints" --port=0 \
  > "$workdir/router.out" 2> "$workdir/router.err" &
router_pid=$!
router_port="$(wait_port "$workdir/router.out" "")" || {
  echo "router did not announce a port; stderr:" >&2
  cat "$workdir/router.err" >&2
  exit 1
}
echo "router up on port $router_port -> $endpoints"

shard_out="$workdir/shard_loadgen.json"
"$loadgen" --port="$router_port" --connections=6 --requests=10 --mutate \
  --ack-log="$workdir/shard.acks" --endpoints="$endpoints" > "$shard_out"
echo "shard loadgen summary: $(cat "$shard_out")"
"$loadgen" --port="$router_port" --verify="$workdir/shard.acks" \
  --endpoints="$endpoints" > "$workdir/shard_verify.json"

python3 - "$shard_out" "$workdir/shard_verify.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
if summary.get("transport_failures", 1) != 0:
    sys.exit("shard loadgen saw transport failures: %s" % summary)
if summary.get("acked", 0) <= 0:
    sys.exit("shard loadgen acknowledged nothing: %s" % summary)
placement = summary.get("placement", {})
if placement.get("checked", 0) <= 0:
    sys.exit("shard loadgen checked no placements: %s" % summary)
if placement["matches"] != placement["checked"]:
    sys.exit("placement mismatch (no backend was killed): %s" % placement)
predicted = placement.get("predicted_sessions", {})
if len(predicted) != 3 or sum(predicted.values()) != 6:
    sys.exit("bad predicted-session tally: %s" % predicted)

with open(sys.argv[2]) as f:
    verify = json.load(f)
if verify.get("missing", 1) != 0:
    sys.exit("acknowledged writes went missing: %s" % verify)
if verify.get("verified", 0) != summary["acked"]:
    sys.exit("verified %s tuples but %s were acked"
             % (verify.get("verified"), summary["acked"]))
print("shard placement %d/%d, %d acked tuples all visible"
      % (placement["matches"], placement["checked"], verify["verified"]))
EOF

# Graceful drain, router first (it must answer SHUTTING_DOWN, not crash,
# while its backends are still up), then the backends.
kill -TERM "$router_pid"
rc=0; wait "$router_pid" || rc=$?
if [[ "$rc" -ne 0 ]]; then
  echo "router exited $rc after SIGTERM (expected 0); stderr:" >&2
  cat "$workdir/router.err" >&2
  exit 1
fi
for i in 0 1 2; do
  kill -TERM "${backend_pids[$i]}"
  rc=0; wait "${backend_pids[$i]}" || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "backend $i exited $rc after SIGTERM (expected 0); stderr:" >&2
    cat "$workdir/backend$i.err" >&2
    exit 1
  fi
done
echo "router and backends drained cleanly"
echo "smoke_serving: PASS"
