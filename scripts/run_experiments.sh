#!/usr/bin/env bash
# Runs the full experiment harness (E1-E16 + ablations), teeing per-bench
# outputs into results/. Usage: scripts/run_experiments.sh [build-dir]
set -u
BUILD_DIR="${1:-build}"
OUT_DIR="results"
mkdir -p "$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if ! "$bench" 2>&1 | tee "$OUT_DIR/$name.txt"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  echo
done
exit $status
