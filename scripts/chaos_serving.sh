#!/usr/bin/env bash
# Serving chaos test: run a mutating workload against zeroone_server while
# SIGKILLing and restarting the server repeatedly, then assert the two
# robustness contracts from docs/robustness.md:
#
#   1. Zero acknowledged-mutation loss: every tuple the loadgen recorded in
#      its ack-log (insert + `save` OK with no intervening reconnect) is
#      still visible after the final restart.
#   2. 100% eventual client success: no request exhausts its retries even
#      though the server dies mid-flight several times.
#
# Also checks that snapshots written by a SIGKILLed server are never
# quarantined on reload (crash-atomic temp->fsync->rename), and that a
# deliberately corrupted snapshot IS quarantined, not loaded.
#
# On ZEROONE_FAULT=ON builds a deterministic fault plan is injected on top
# of the kills (partial sends, dropped cache inserts, client send faults);
# on OFF builds the SIGKILL cycle alone provides the chaos.
#
# The whole battery runs twice: once with the server's default epoll
# configuration and once with --event-threads=2, so the zero-acked-loss
# invariant is checked under an explicitly constrained event-loop pool.
# EXTRA_SERVER_FLAGS (space-separated) is appended to every server start.
#
#   scripts/chaos_serving.sh [build-dir]   # default: build
set -euo pipefail

build_dir="${1:-build}"
extra_server_flags=()
if [[ -n "${EXTRA_SERVER_FLAGS:-}" ]]; then
  read -r -a extra_server_flags <<<"$EXTRA_SERVER_FLAGS"
  echo "extra server flags: ${extra_server_flags[*]}"
fi
server="$build_dir/tools/zeroone_server"
loadgen="$build_dir/tools/zeroone_loadgen"
for binary in "$server" "$loadgen"; do
  if [[ ! -x "$binary" ]]; then
    echo "missing binary: $binary (build the zeroone_server and" \
         "zeroone_loadgen targets first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
server_pid=""
primary_pid=""
follower_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -KILL "$server_pid" 2>/dev/null || true
  [[ -n "$primary_pid" ]] && kill -KILL "$primary_pid" 2>/dev/null || true
  [[ -n "$follower_pid" ]] && kill -KILL "$follower_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

snapdir="$workdir/snapshots"
acklog="$workdir/acks.log"
kills=5
connections=16
requests=500  # Sized so traffic spans every kill cycle below.
seed=42

# Detect whether fault injection is compiled in: --faults on an OFF build
# fails fast with a distinctive message before any sockets are touched.
server_faults=()
client_faults=()
probe_err="$("$loadgen" --port=1 --connections=1 --requests=1 \
    --retry-attempts=1 --faults=chaos.probe=0.0 2>&1 >/dev/null)" || true
if grep -q "ZEROONE_FAULT=ON" <<<"$probe_err"; then
  echo "fault injection not compiled in; relying on SIGKILL alone"
else
  server_faults=("--faults=seed=$seed,svc.send.partial=0.02,svc.session.mutate.fail=0.02,svc.cache.insert.drop=0.1")
  client_faults=("--faults=seed=7,svc.client.send.fail=0.02")
  echo "fault injection active: ${server_faults[0]#--faults=}"
fi

# A fixed port so restarted servers are reachable at the same address; the
# server's --bind-retry-ms absorbs any lingering socket from the old pid.
port="$(python3 -c 'import socket; s = socket.socket();
s.bind(("127.0.0.1", 0)); print(s.getsockname()[1])')"

epoch=0
start_server() {
  epoch=$((epoch + 1))
  local out="$workdir/server.$epoch.out" err="$workdir/server.$epoch.err"
  # --par-threads=2 pins a real morsel team regardless of host core count,
  # so the µ-heavy readers below chaos-test parallel evaluation, not the
  # serial fallback a 1-core CI box would otherwise pick.
  "$server" --port="$port" --threads=4 --queue=64 --par-threads=2 \
    --snapshot-dir="$snapdir" --bind-retry-ms=5000 "${server_faults[@]}" \
    ${extra_server_flags[@]+"${extra_server_flags[@]}"} \
    > "$out" 2> "$err" &
  server_pid=$!
  for _ in $(seq 1 100); do
    grep -q "^listening on " "$out" && return 0
    if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  echo "server epoch $epoch did not come up; stderr:" >&2
  cat "$err" >&2
  return 1
}

start_server
echo "server epoch $epoch up on port $port (pid $server_pid)"

"$loadgen" --port="$port" --mutate --connections="$connections" \
  --requests="$requests" --ack-log="$acklog" --seed="$seed" \
  --retry-attempts=10 --retry-backoff-ms=20 "${client_faults[@]}" \
  > "$workdir/loadgen.json" 2> "$workdir/loadgen.err" &
loadgen_pid=$!

# µ-heavy analytical readers share the kill windows: uncached muk requests
# (the heaviest wire command, evaluated on the server's morsel pool) must
# also ride out every SIGKILL with 100% eventual success. Before PR 9 the
# chaos battery only ever killed the server under cheap reads and writes.
"$loadgen" --port="$port" --mu-heavy --nocache --connections=4 \
  --requests=400 --seconds=12 --seed="$((seed + 1000))" \
  --retry-attempts=10 --retry-backoff-ms=20 "${client_faults[@]}" \
  > "$workdir/muheavy.json" 2> "$workdir/muheavy.err" &
muheavy_pid=$!

# The kill cycle: SIGKILL (no drain, no final save) and restart. Restarted
# epochs must reload every snapshot the dead server managed to write —
# quarantines here would mean a torn write escaped the rename protocol.
for cycle in $(seq 1 "$kills"); do
  sleep 0.4
  if ! kill -0 "$loadgen_pid" 2>/dev/null; then
    echo "chaos_serving: FAIL — loadgen finished before kill cycle $cycle;" \
         "raise requests= so traffic spans every kill" >&2
    exit 1
  fi
  kill -KILL "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  start_server
  echo "cycle $cycle: killed and restarted (epoch $epoch, pid $server_pid)"
done

loadgen_rc=0
wait "$loadgen_pid" || loadgen_rc=$?
cat "$workdir/loadgen.err" >&2
echo "loadgen summary: $(cat "$workdir/loadgen.json")"
if [[ "$loadgen_rc" -ne 0 ]]; then
  echo "chaos_serving: FAIL — loadgen exited $loadgen_rc (a request" \
       "exhausted its retries: eventual success violated)" >&2
  exit 1
fi

muheavy_rc=0
wait "$muheavy_pid" || muheavy_rc=$?
cat "$workdir/muheavy.err" >&2
echo "mu-heavy summary: $(cat "$workdir/muheavy.json")"
if [[ "$muheavy_rc" -ne 0 ]]; then
  echo "chaos_serving: FAIL — mu-heavy loadgen exited $muheavy_rc (a heavy" \
       "analytical request exhausted its retries across the kills)" >&2
  exit 1
fi

# No restart may have quarantined a snapshot: SIGKILL must never produce a
# torn .zo1snap file.
for err in "$workdir"/server.*.err; do
  if grep -q "quarantined [1-9]" "$err"; then
    echo "chaos_serving: FAIL — snapshots quarantined after SIGKILL:" >&2
    grep "snapshots:" "$err" >&2
    exit 1
  fi
done

# Final restart + verify: every acknowledged tuple must still be visible.
kill -KILL "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
start_server
echo "verify epoch $epoch: $(wc -l < "$acklog") acknowledged mutations"
if ! "$loadgen" --port="$port" --verify="$acklog" --seed="$seed"; then
  echo "chaos_serving: FAIL — acknowledged mutations lost" >&2
  exit 1
fi

# Graceful drain of the last healthy epoch.
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
if [[ "$server_rc" -ne 0 ]]; then
  echo "chaos_serving: FAIL — final server exited $server_rc on SIGTERM" >&2
  exit 1
fi

# Corruption drill: damage one snapshot on purpose; the next epoch must
# quarantine exactly that file (renamed *.corrupt) and still come up.
victim="$(ls "$snapdir"/*.zo1snap | head -1)"
python3 - "$victim" <<'EOF'
import sys
path = sys.argv[1]
data = open(path, "rb").read()
open(path, "wb").write(data[: len(data) // 2])
EOF
start_server
if ! grep -q "quarantined 1" "$workdir/server.$epoch.err"; then
  echo "chaos_serving: FAIL — corrupt snapshot was not quarantined:" >&2
  cat "$workdir/server.$epoch.err" >&2
  exit 1
fi
if [[ ! -f "$victim.corrupt" ]]; then
  echo "chaos_serving: FAIL — corrupt snapshot not renamed aside" >&2
  exit 1
fi
kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "chaos_serving: PASS ($kills kills survived, $(wc -l < "$acklog")" \
     "acknowledged mutations verified, corrupt snapshot quarantined)"

# Second pass: the same battery with a constrained event-loop pool, so the
# epoll path is chaos-tested at a thread count CI machines can't vary away.
if [[ -z "${CHAOS_SECOND_PASS:-}" ]]; then
  echo ""
  echo "chaos_serving: second pass with --event-threads=2"
  CHAOS_SECOND_PASS=1 \
    EXTRA_SERVER_FLAGS="--event-threads=2 ${EXTRA_SERVER_FLAGS:-}" \
    "$0" "$build_dir"
fi

# ---------------------------------------------------------------------------
# Failover pass: an --ack-mode=fsync primary is SIGKILLed mid-load $kills
# times with a warm standby pulling its log the whole time, then killed for
# good. The standby (restarted with a fast promotion timeout, recovering
# from its OWN snapshots + log) must promote, accept writes, and serve 100%
# of the acked writes from every phase — the verify runs against the dead
# primary's port with --standby-port, so every hit comes from the standby.
# Set CHAOS_SKIP_FAILOVER=1 to run only the single-server battery.
if [[ -z "${CHAOS_SECOND_PASS:-}" && -z "${CHAOS_SKIP_FAILOVER:-}" ]]; then
  echo ""
  echo "chaos_serving: failover pass (--ack-mode=fsync primary + standby," \
       "$kills kills)"
  fo="$workdir/failover"
  mkdir -p "$fo"
  fo_acklog="$fo/acks.log"
  primary_port="$port"
  follower_port="$(python3 -c 'import socket; s = socket.socket();
s.bind(("127.0.0.1", 0)); print(s.getsockname()[1])')"

  primary_epoch=0
  start_primary() {
    primary_epoch=$((primary_epoch + 1))
    local out="$fo/primary.$primary_epoch.out"
    "$server" --port="$primary_port" --threads=4 --queue=64 \
      --par-threads=2 --snapshot-dir="$fo/primary-snapshots" \
      --ack-mode=fsync --bind-retry-ms=5000 \
      > "$out" 2> "$fo/primary.$primary_epoch.err" &
    primary_pid=$!
    for _ in $(seq 1 100); do
      grep -q "^listening on " "$out" && return 0
      if ! kill -0 "$primary_pid" 2>/dev/null; then break; fi
      sleep 0.1
    done
    echo "failover primary epoch $primary_epoch did not come up:" >&2
    cat "$fo/primary.$primary_epoch.err" >&2
    return 1
  }

  follower_gen=0
  start_follower() {  # $1 = --promote-after-ms value
    follower_gen=$((follower_gen + 1))
    local out="$fo/follower.$follower_gen.out"
    "$server" --port="$follower_port" --threads=2 --queue=64 \
      --snapshot-dir="$fo/follower-snapshots" \
      --follow="127.0.0.1:$primary_port" --pull-interval-ms=20 \
      --promote-after-ms="$1" --bind-retry-ms=5000 \
      > "$out" 2> "$fo/follower.$follower_gen.err" &
    follower_pid=$!
    for _ in $(seq 1 100); do
      grep -q "^listening on " "$out" && return 0
      if ! kill -0 "$follower_pid" 2>/dev/null; then break; fi
      sleep 0.1
    done
    echo "follower gen $follower_gen did not come up:" >&2
    cat "$fo/follower.$follower_gen.err" >&2
    return 1
  }

  start_primary
  # A promotion timeout far above a restart gap: the standby keeps
  # following the restarted primary instead of splitting the brain.
  start_follower 60000
  echo "primary up on $primary_port, standby following on $follower_port"

  # µ-heavy analytical readers span the failover kill cycles too: fsync
  # acks and log pulls must not starve a long parallel µ^k evaluation, and
  # the heavy reads must survive every primary SIGKILL.
  "$loadgen" --port="$primary_port" --mu-heavy --nocache --connections=2 \
    --requests=2000 --seconds=20 --seed="$((seed + 2000))" \
    --retry-attempts=12 --retry-backoff-ms=20 \
    > "$fo/muheavy.json" 2> "$fo/muheavy.err" &
  fo_muheavy_pid=$!

  for cycle in $(seq 1 "$kills"); do
    "$loadgen" --port="$primary_port" --mutate \
      --connections="$connections" --requests=120 --ack-log="$fo_acklog" \
      --phase="cycle$cycle" --seed="$((seed + cycle))" \
      --retry-attempts=12 --retry-backoff-ms=20 \
      > "$fo/loadgen.$cycle.json" 2> "$fo/loadgen.$cycle.err" &
    loadgen_pid=$!
    sleep 0.4
    if ! kill -0 "$loadgen_pid" 2>/dev/null; then
      echo "chaos_serving: FAIL — failover loadgen finished before kill" \
           "cycle $cycle; raise requests= so traffic spans the kill" >&2
      exit 1
    fi
    kill -KILL "$primary_pid" 2>/dev/null || true
    wait "$primary_pid" 2>/dev/null || true
    start_primary
    loadgen_rc=0
    wait "$loadgen_pid" || loadgen_rc=$?
    if [[ "$loadgen_rc" -ne 0 ]]; then
      cat "$fo/loadgen.$cycle.err" >&2
      echo "chaos_serving: FAIL — failover cycle $cycle loadgen exited" \
           "$loadgen_rc (eventual success violated)" >&2
      exit 1
    fi
    echo "failover cycle $cycle: primary killed mid-load, restarted" \
         "(epoch $primary_epoch)"
  done

  fo_muheavy_rc=0
  wait "$fo_muheavy_pid" || fo_muheavy_rc=$?
  cat "$fo/muheavy.err" >&2
  echo "failover mu-heavy summary: $(cat "$fo/muheavy.json")"
  if [[ "$fo_muheavy_rc" -ne 0 ]]; then
    echo "chaos_serving: FAIL — failover mu-heavy loadgen exited" \
         "$fo_muheavy_rc (heavy analytical reads violated eventual" \
         "success)" >&2
    exit 1
  fi

  # Quiesce so the standby's next pulls drain the acked tail, then fail the
  # primary permanently.
  sleep 1
  kill -KILL "$primary_pid" 2>/dev/null || true
  wait "$primary_pid" 2>/dev/null || true
  primary_pid=""

  # Bounce the standby onto a fast promotion timeout. It recovers from its
  # own snapshots + log, finds the primary dead, and must promote.
  kill -TERM "$follower_pid"
  follower_rc=0
  wait "$follower_pid" || follower_rc=$?
  follower_pid=""
  if [[ "$follower_rc" -ne 0 ]]; then
    echo "chaos_serving: FAIL — standby exited $follower_rc on SIGTERM" >&2
    exit 1
  fi
  start_follower 300

  # Promotion probe: writes are refused (read-only) until the standby
  # promotes, then a one-shot mutate succeeds.
  promoted=""
  for _ in $(seq 1 100); do
    if "$loadgen" --port="$follower_port" --mutate --connections=1 \
        --requests=1 --ack-log="$fo_acklog" --phase=probe \
        --retry-attempts=1 --retry-backoff-ms=10 \
        > /dev/null 2>&1; then
      promoted=1
      break
    fi
    sleep 0.2
  done
  if [[ -z "$promoted" ]]; then
    echo "chaos_serving: FAIL — standby never promoted after primary" \
         "death:" >&2
    cat "$fo/follower.$follower_gen.err" >&2
    exit 1
  fi
  echo "standby promoted; running post-failover load"

  "$loadgen" --port="$follower_port" --mutate --connections="$connections" \
    --requests=20 --ack-log="$fo_acklog" --phase=postfailover \
    --retry-attempts=10 --retry-backoff-ms=20 \
    > "$fo/loadgen.post.json" 2> "$fo/loadgen.post.err" || {
    cat "$fo/loadgen.post.err" >&2
    echo "chaos_serving: FAIL — post-failover load failed on the" \
         "promoted standby" >&2
    exit 1
  }

  # The moment of truth: the primary is gone, so every acked write from
  # every phase must be served by the promoted standby.
  echo "failover verify: $(wc -l < "$fo_acklog") acknowledged mutations" \
       "across $((kills + 2)) phases"
  if ! "$loadgen" --port="$primary_port" --standby-port="$follower_port" \
      --verify="$fo_acklog" --retry-attempts=2 --retry-backoff-ms=10 \
      > "$fo/verify.json" 2> "$fo/verify.err"; then
    cat "$fo/verify.err" >&2
    echo "chaos_serving: FAIL — acked writes lost across failover" >&2
    exit 1
  fi
  cat "$fo/verify.err" >&2
  echo "failover verify summary: $(cat "$fo/verify.json")"
  if ! grep -q '"primary_hits": 0' "$fo/verify.json"; then
    echo "chaos_serving: FAIL — verify counted hits on the dead primary" >&2
    exit 1
  fi
  for phase in $(seq 1 "$kills" | sed 's/^/cycle/') postfailover; do
    if ! grep -q "\"$phase\"" "$fo/verify.json"; then
      echo "chaos_serving: FAIL — phase $phase missing from the verify" \
           "tally (its acks never landed?)" >&2
      exit 1
    fi
  done

  # Crash-safe standby logs: no restart may have quarantined a snapshot.
  for err in "$fo"/primary.*.err "$fo"/follower.*.err; do
    if grep -q "quarantined [1-9]" "$err"; then
      echo "chaos_serving: FAIL — snapshots quarantined in $err:" >&2
      grep "snapshots:" "$err" >&2
      exit 1
    fi
  done

  kill -TERM "$follower_pid"
  follower_rc=0
  wait "$follower_pid" || follower_rc=$?
  follower_pid=""
  if [[ "$follower_rc" -ne 0 ]]; then
    echo "chaos_serving: FAIL — promoted standby exited $follower_rc on" \
         "SIGTERM" >&2
    exit 1
  fi
  echo "chaos_serving failover: PASS ($kills primary kills + permanent" \
       "death survived, $(wc -l < "$fo_acklog") acked mutations all served" \
       "by the promoted standby)"
fi

# ---------------------------------------------------------------------------
# Shard pass: the same zero-acked-loss and eventual-success contracts behind
# the consistent-hash router — three backends, one SIGKILLed mid-load and
# restarted, placement re-checked against the recomputed ring
# (scripts/shard_serving.sh has the battery). Requires the zeroone_router
# binary; set CHAOS_SKIP_SHARD=1 to run only the single-server batteries.
if [[ -z "${CHAOS_SECOND_PASS:-}" && -z "${CHAOS_SKIP_SHARD:-}" ]]; then
  echo ""
  echo "chaos_serving: shard pass (3 backends behind the router)"
  "$(dirname "$0")/shard_serving.sh" "$build_dir"
fi
