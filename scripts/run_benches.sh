#!/usr/bin/env bash
# Runs every benchmark and collects the BENCH_<name>.json artifacts (metric
# deltas + paper-claim check results, see bench/bench_common.h) into
# bench/results/. Benches exit nonzero when a paper-claim check fails; this
# script propagates that. Usage: scripts/run_benches.sh [build-dir] [extra
# bench args...], e.g. scripts/run_benches.sh build --benchmark_min_time=0.01
set -u
BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
OUT_DIR="bench/results"
mkdir -p "$OUT_DIR"
export ZEROONE_BENCH_DIR="$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if ! "$bench" "$@"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  echo
done
echo "Collected $(ls "$OUT_DIR"/BENCH_*.json 2>/dev/null | wc -l) result files in $OUT_DIR/"
# One-line pass/fail claim summary across every BENCH_*.json artifact.
total_claims=0
failed_claims=0
for json in "$OUT_DIR"/BENCH_*.json; do
  [ -f "$json" ] || continue
  total_claims=$(( total_claims + $(grep -o '"ok": ' "$json" | wc -l) ))
  failed_claims=$(( failed_claims + $(grep -o '"ok": false' "$json" | wc -l) ))
done
if [ "$failed_claims" -eq 0 ]; then
  echo "CLAIMS: PASS ($total_claims/$total_claims paper-claim checks ok)"
else
  echo "CLAIMS: FAIL ($failed_claims of $total_claims paper-claim checks failed)"
  status=1
fi
exit $status
