#!/usr/bin/env bash
# Runs every benchmark and collects the BENCH_<name>.json artifacts (metric
# deltas + paper-claim check results, see bench/bench_common.h) into
# bench/results/. Benches exit nonzero when a paper-claim check fails; this
# script propagates that. Usage: scripts/run_benches.sh [build-dir] [extra
# bench args...], e.g. scripts/run_benches.sh build --benchmark_min_time=0.01
set -u
BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
OUT_DIR="bench/results"
mkdir -p "$OUT_DIR"
export ZEROONE_BENCH_DIR="$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if ! "$bench" "$@"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  echo
done
echo "Collected $(ls "$OUT_DIR"/BENCH_*.json 2>/dev/null | wc -l) result files in $OUT_DIR/"
exit $status
