#!/usr/bin/env bash
# Sharded serving chaos test: three zeroone_server backends (each with its
# own snapshot dir) behind the consistent-hash zeroone_router
# (docs/serving.md, "Scaling out"), then assert the scale-out contracts:
#
#   1. Deterministic placement: loadgen recomputes the router's ring via
#      --endpoints and every session with state must live on the shard the
#      ring predicts — before AND after a backend was killed and restarted.
#   2. Zero acknowledged-mutation loss across a backend SIGKILL: every
#      tuple in the ack-log must be visible on SOME endpoint. Writes acked
#      while the owner was dead live on a failover backend; writes acked
#      before the kill reload from the owner's snapshot dir.
#   3. 100% eventual client success: the mid-kill load must finish without
#      exhausting retries (the router fails over, then routes back).
#   4. The HTTP/JSON gateway speaks through the same router: a JSON
#      mutation must land on the ring and read back through HTTP.
#
#   scripts/shard_serving.sh [build-dir]   # default: build
set -euo pipefail

build_dir="${1:-build}"
server="$build_dir/tools/zeroone_server"
loadgen="$build_dir/tools/zeroone_loadgen"
router="$build_dir/tools/zeroone_router"
for binary in "$server" "$loadgen" "$router"; do
  if [[ ! -x "$binary" ]]; then
    echo "missing binary: $binary (build the zeroone_server," \
         "zeroone_loadgen, and zeroone_router targets first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
backend_pids=("" "" "")
router_pid=""
cleanup() {
  [[ -n "$router_pid" ]] && kill -KILL "$router_pid" 2>/dev/null || true
  for pid in "${backend_pids[@]}"; do
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

acklog="$workdir/acks.log"
connections=8
seed=71

# Fixed ports so a restarted backend is reachable at the same ring slot;
# --bind-retry-ms absorbs lingering sockets from the killed pid.
pick_port() {
  python3 -c 'import socket; s = socket.socket();
s.bind(("127.0.0.1", 0)); print(s.getsockname()[1])'
}
backend_ports=("$(pick_port)" "$(pick_port)" "$(pick_port)")
endpoints="127.0.0.1:${backend_ports[0]},127.0.0.1:${backend_ports[1]}"
endpoints+=",127.0.0.1:${backend_ports[2]}"

backend_epoch=(0 0 0)
start_backend() {  # $1 = backend index
  local i="$1"
  backend_epoch[$i]=$((backend_epoch[$i] + 1))
  local out="$workdir/backend$i.${backend_epoch[$i]}.out"
  local err="$workdir/backend$i.${backend_epoch[$i]}.err"
  "$server" --port="${backend_ports[$i]}" --threads=2 --queue=64 \
    --snapshot-dir="$workdir/backend$i" --bind-retry-ms=5000 \
    > "$out" 2> "$err" &
  backend_pids[$i]=$!
  for _ in $(seq 1 100); do
    grep -q "^listening on " "$out" && return 0
    if ! kill -0 "${backend_pids[$i]}" 2>/dev/null; then break; fi
    sleep 0.1
  done
  echo "backend $i epoch ${backend_epoch[$i]} did not come up; stderr:" >&2
  cat "$err" >&2
  return 1
}

for i in 0 1 2; do start_backend "$i"; done
router_port="$(pick_port)"
router_http_port="$(pick_port)"
"$router" --backends="$endpoints" --port="$router_port" \
  --http-port="$router_http_port" --down-cooldown-ms=200 \
  > "$workdir/router.out" 2> "$workdir/router.err" &
router_pid=$!
for _ in $(seq 1 100); do
  grep -q "^http listening on " "$workdir/router.out" && break
  sleep 0.1
done
echo "router on $router_port (http $router_http_port) -> $endpoints"

run_mutate() {  # $1 = phase, extra flags follow
  local phase="$1"; shift
  "$loadgen" --port="$router_port" --mutate \
    --connections="$connections" --ack-log="$acklog" --phase="$phase" \
    --seed="$seed" --retry-attempts=12 --retry-backoff-ms=20 "$@"
}

# Phase 1 (prekill): all backends healthy; placement must be perfect.
run_mutate prekill --requests=20 --endpoints="$endpoints" \
  > "$workdir/prekill.json" 2> "$workdir/prekill.err"
cat "$workdir/prekill.err" >&2
python3 - "$workdir/prekill.json" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
placement = summary.get("placement", {})
if summary.get("acked", 0) <= 0:
    sys.exit("prekill acked nothing: %s" % summary)
if placement.get("checked", 0) <= 0 or \
        placement["matches"] != placement["checked"]:
    sys.exit("prekill placement not deterministic: %s" % placement)
print("prekill: %d acked, placement %d/%d"
      % (summary["acked"], placement["matches"], placement["checked"]))
EOF

# HTTP leg through the router's gateway: insert via JSON, read it back.
http_body="$(curl -sS -X POST \
  "http://127.0.0.1:$router_http_port/v1/query" \
  -d '{"command": "db", "session": "httpshard",
       "args": "H(1) = { (via_http) }"}')"
case "$http_body" in
  *'"status":"OK"'*) ;;
  *) echo "HTTP mutation through router failed: $http_body" >&2; exit 1 ;;
esac
http_body="$(curl -sS -X POST \
  "http://127.0.0.1:$router_http_port/v1/query" \
  -d '{"command": "show", "session": "httpshard"}')"
case "$http_body" in
  *via_http*) ;;
  *) echo "HTTP read-back through router failed: $http_body" >&2; exit 1 ;;
esac
echo "http gateway through router: mutation visible"

# Phase 2 (midkill): SIGKILL backend 0 while the load is running. The
# router must fail its sessions over; every request must still succeed.
run_mutate midkill --requests=4000 --seconds=6 \
  > "$workdir/midkill.json" 2> "$workdir/midkill.err" &
loadgen_pid=$!
sleep 0.4
if ! kill -0 "$loadgen_pid" 2>/dev/null; then
  echo "shard_serving: FAIL — midkill loadgen finished before the kill;" \
       "raise requests= so traffic spans it" >&2
  exit 1
fi
kill -KILL "${backend_pids[0]}" 2>/dev/null || true
wait "${backend_pids[0]}" 2>/dev/null || true
echo "backend 0 SIGKILLed mid-load"
sleep 1
start_backend 0
echo "backend 0 restarted on port ${backend_ports[0]}" \
     "(epoch ${backend_epoch[0]})"
loadgen_rc=0
wait "$loadgen_pid" || loadgen_rc=$?
cat "$workdir/midkill.err" >&2
echo "midkill summary: $(cat "$workdir/midkill.json")"
if [[ "$loadgen_rc" -ne 0 ]]; then
  echo "shard_serving: FAIL — midkill loadgen exited $loadgen_rc" \
       "(eventual success violated across the backend kill)" >&2
  exit 1
fi

# Let the router's down-cooldown lapse so sessions route home again.
sleep 0.5

# Phase 3 (postkill): the restarted backend is back on its ring slot, so
# placement must be perfect again — same ring, same owners.
run_mutate postkill --requests=20 --endpoints="$endpoints" \
  > "$workdir/postkill.json" 2> "$workdir/postkill.err"
cat "$workdir/postkill.err" >&2
python3 - "$workdir/postkill.json" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
placement = summary.get("placement", {})
if summary.get("acked", 0) <= 0:
    sys.exit("postkill acked nothing: %s" % summary)
if placement.get("checked", 0) <= 0 or \
        placement["matches"] != placement["checked"]:
    sys.exit("postkill placement not deterministic after the restart: %s"
             % placement)
print("postkill: %d acked, placement %d/%d"
      % (summary["acked"], placement["matches"], placement["checked"]))
EOF

# The moment of truth: every acknowledged tuple from every phase must be
# visible on some endpoint — the owner's reloaded snapshot, or wherever the
# failover landed it while the owner was dead.
echo "verify: $(wc -l < "$acklog") acknowledged mutations across 3 phases"
if ! "$loadgen" --port="$router_port" --verify="$acklog" \
    --endpoints="$endpoints" > "$workdir/verify.json" \
    2> "$workdir/verify.err"; then
  cat "$workdir/verify.err" >&2
  echo "shard_serving: FAIL — acknowledged writes lost across the kill" >&2
  exit 1
fi
cat "$workdir/verify.err" >&2
echo "verify summary: $(cat "$workdir/verify.json")"
python3 - "$workdir/verify.json" <<'EOF'
import json, sys
verify = json.load(open(sys.argv[1]))
if verify.get("missing", 1) != 0:
    sys.exit("acked writes missing: %s" % verify)
for phase in ("prekill", "midkill", "postkill"):
    tally = verify.get("phases", {}).get(phase)
    if not tally or tally.get("verified", 0) <= 0:
        sys.exit("phase %s has no verified writes: %s" % (phase, verify))
print("all phases verified: %d tuples, 0 missing" % verify["verified"])
EOF

# Graceful drain: router first, then every backend, all exiting 0.
kill -TERM "$router_pid"
rc=0; wait "$router_pid" || rc=$?
router_pid=""
if [[ "$rc" -ne 0 ]]; then
  echo "shard_serving: FAIL — router exited $rc on SIGTERM" >&2
  cat "$workdir/router.err" >&2
  exit 1
fi
for i in 0 1 2; do
  kill -TERM "${backend_pids[$i]}"
  rc=0; wait "${backend_pids[$i]}" || rc=$?
  backend_pids[$i]=""
  if [[ "$rc" -ne 0 ]]; then
    echo "shard_serving: FAIL — backend $i exited $rc on SIGTERM" >&2
    exit 1
  fi
done

echo "shard_serving: PASS (backend kill survived," \
     "$(wc -l < "$acklog") acked mutations verified, placement" \
     "deterministic before and after the restart)"
