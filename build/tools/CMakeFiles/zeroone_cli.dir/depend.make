# Empty dependencies file for zeroone_cli.
# This may be replaced when dependencies are built.
