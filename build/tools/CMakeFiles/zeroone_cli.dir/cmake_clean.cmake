file(REMOVE_RECURSE
  "CMakeFiles/zeroone_cli.dir/zeroone_cli.cc.o"
  "CMakeFiles/zeroone_cli.dir/zeroone_cli.cc.o.d"
  "zeroone_cli"
  "zeroone_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
