# Empty compiler generated dependencies file for bench_zero_one_law.
# This may be replaced when dependencies are built.
