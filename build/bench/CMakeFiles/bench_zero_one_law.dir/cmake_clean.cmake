file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_one_law.dir/bench_zero_one_law.cc.o"
  "CMakeFiles/bench_zero_one_law.dir/bench_zero_one_law.cc.o.d"
  "bench_zero_one_law"
  "bench_zero_one_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_one_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
