file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_ucq.dir/bench_comparison_ucq.cc.o"
  "CMakeFiles/bench_comparison_ucq.dir/bench_comparison_ucq.cc.o.d"
  "bench_comparison_ucq"
  "bench_comparison_ucq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_ucq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
