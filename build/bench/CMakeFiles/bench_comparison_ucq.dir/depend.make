# Empty dependencies file for bench_comparison_ucq.
# This may be replaced when dependencies are built.
