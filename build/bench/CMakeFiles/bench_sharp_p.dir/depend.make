# Empty dependencies file for bench_sharp_p.
# This may be replaced when dependencies are built.
