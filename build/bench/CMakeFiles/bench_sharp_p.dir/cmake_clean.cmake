file(REMOVE_RECURSE
  "CMakeFiles/bench_sharp_p.dir/bench_sharp_p.cc.o"
  "CMakeFiles/bench_sharp_p.dir/bench_sharp_p.cc.o.d"
  "bench_sharp_p"
  "bench_sharp_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharp_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
