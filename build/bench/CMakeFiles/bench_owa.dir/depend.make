# Empty dependencies file for bench_owa.
# This may be replaced when dependencies are built.
