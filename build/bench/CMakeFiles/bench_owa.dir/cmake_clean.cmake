file(REMOVE_RECURSE
  "CMakeFiles/bench_owa.dir/bench_owa.cc.o"
  "CMakeFiles/bench_owa.dir/bench_owa.cc.o.d"
  "bench_owa"
  "bench_owa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_owa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
