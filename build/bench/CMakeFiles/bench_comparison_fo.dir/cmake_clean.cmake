file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_fo.dir/bench_comparison_fo.cc.o"
  "CMakeFiles/bench_comparison_fo.dir/bench_comparison_fo.cc.o.d"
  "bench_comparison_fo"
  "bench_comparison_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
