# Empty dependencies file for bench_comparison_fo.
# This may be replaced when dependencies are built.
