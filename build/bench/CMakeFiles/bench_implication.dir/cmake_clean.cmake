file(REMOVE_RECURSE
  "CMakeFiles/bench_implication.dir/bench_implication.cc.o"
  "CMakeFiles/bench_implication.dir/bench_implication.cc.o.d"
  "bench_implication"
  "bench_implication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
