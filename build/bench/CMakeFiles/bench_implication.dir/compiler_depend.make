# Empty compiler generated dependencies file for bench_implication.
# This may be replaced when dependencies are built.
