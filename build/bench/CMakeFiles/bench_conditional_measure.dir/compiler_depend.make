# Empty compiler generated dependencies file for bench_conditional_measure.
# This may be replaced when dependencies are built.
