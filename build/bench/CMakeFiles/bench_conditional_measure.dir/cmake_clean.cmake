file(REMOVE_RECURSE
  "CMakeFiles/bench_conditional_measure.dir/bench_conditional_measure.cc.o"
  "CMakeFiles/bench_conditional_measure.dir/bench_conditional_measure.cc.o.d"
  "bench_conditional_measure"
  "bench_conditional_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditional_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
