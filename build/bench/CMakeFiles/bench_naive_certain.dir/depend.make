# Empty dependencies file for bench_naive_certain.
# This may be replaced when dependencies are built.
