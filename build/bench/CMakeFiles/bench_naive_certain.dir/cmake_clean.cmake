file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_certain.dir/bench_naive_certain.cc.o"
  "CMakeFiles/bench_naive_certain.dir/bench_naive_certain.cc.o.d"
  "bench_naive_certain"
  "bench_naive_certain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_certain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
