# Empty dependencies file for bench_datalog.
# This may be replaced when dependencies are built.
