file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog.dir/bench_datalog.cc.o"
  "CMakeFiles/bench_datalog.dir/bench_datalog.cc.o.d"
  "bench_datalog"
  "bench_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
