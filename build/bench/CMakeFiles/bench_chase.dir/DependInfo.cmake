
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_chase.cc" "bench/CMakeFiles/bench_chase.dir/bench_chase.cc.o" "gcc" "bench/CMakeFiles/bench_chase.dir/bench_chase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/zeroone_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zeroone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/zeroone_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/zeroone_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/zeroone_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zeroone_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
