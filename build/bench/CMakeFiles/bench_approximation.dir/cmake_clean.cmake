file(REMOVE_RECURSE
  "CMakeFiles/bench_approximation.dir/bench_approximation.cc.o"
  "CMakeFiles/bench_approximation.dir/bench_approximation.cc.o.d"
  "bench_approximation"
  "bench_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
