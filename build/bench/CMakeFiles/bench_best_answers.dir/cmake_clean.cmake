file(REMOVE_RECURSE
  "CMakeFiles/bench_best_answers.dir/bench_best_answers.cc.o"
  "CMakeFiles/bench_best_answers.dir/bench_best_answers.cc.o.d"
  "bench_best_answers"
  "bench_best_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_best_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
