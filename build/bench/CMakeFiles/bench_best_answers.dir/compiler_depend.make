# Empty compiler generated dependencies file for bench_best_answers.
# This may be replaced when dependencies are built.
