file(REMOVE_RECURSE
  "CMakeFiles/bench_alternative_measure.dir/bench_alternative_measure.cc.o"
  "CMakeFiles/bench_alternative_measure.dir/bench_alternative_measure.cc.o.d"
  "bench_alternative_measure"
  "bench_alternative_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alternative_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
