# Empty dependencies file for bench_alternative_measure.
# This may be replaced when dependencies are built.
