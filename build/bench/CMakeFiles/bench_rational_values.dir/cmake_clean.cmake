file(REMOVE_RECURSE
  "CMakeFiles/bench_rational_values.dir/bench_rational_values.cc.o"
  "CMakeFiles/bench_rational_values.dir/bench_rational_values.cc.o.d"
  "bench_rational_values"
  "bench_rational_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rational_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
