# Empty dependencies file for bench_rational_values.
# This may be replaced when dependencies are built.
