file(REMOVE_RECURSE
  "CMakeFiles/constraints_and_chase.dir/constraints_and_chase.cc.o"
  "CMakeFiles/constraints_and_chase.dir/constraints_and_chase.cc.o.d"
  "constraints_and_chase"
  "constraints_and_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraints_and_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
