# Empty dependencies file for constraints_and_chase.
# This may be replaced when dependencies are built.
