# Empty compiler generated dependencies file for preference_diagnosis.
# This may be replaced when dependencies are built.
