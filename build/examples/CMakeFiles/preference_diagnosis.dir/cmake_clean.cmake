file(REMOVE_RECURSE
  "CMakeFiles/preference_diagnosis.dir/preference_diagnosis.cc.o"
  "CMakeFiles/preference_diagnosis.dir/preference_diagnosis.cc.o.d"
  "preference_diagnosis"
  "preference_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
