# Empty dependencies file for best_answers.
# This may be replaced when dependencies are built.
