file(REMOVE_RECURSE
  "CMakeFiles/best_answers.dir/best_answers.cc.o"
  "CMakeFiles/best_answers.dir/best_answers.cc.o.d"
  "best_answers"
  "best_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
