file(REMOVE_RECURSE
  "CMakeFiles/data_exchange.dir/data_exchange.cc.o"
  "CMakeFiles/data_exchange.dir/data_exchange.cc.o.d"
  "data_exchange"
  "data_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
