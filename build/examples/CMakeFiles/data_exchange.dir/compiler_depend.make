# Empty compiler generated dependencies file for data_exchange.
# This may be replaced when dependencies are built.
