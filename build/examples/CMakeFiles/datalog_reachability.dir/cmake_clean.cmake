file(REMOVE_RECURSE
  "CMakeFiles/datalog_reachability.dir/datalog_reachability.cc.o"
  "CMakeFiles/datalog_reachability.dir/datalog_reachability.cc.o.d"
  "datalog_reachability"
  "datalog_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
