# Empty dependencies file for datalog_reachability.
# This may be replaced when dependencies are built.
