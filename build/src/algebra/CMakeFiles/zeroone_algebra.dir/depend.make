# Empty dependencies file for zeroone_algebra.
# This may be replaced when dependencies are built.
