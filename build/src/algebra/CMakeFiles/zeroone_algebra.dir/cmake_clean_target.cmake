file(REMOVE_RECURSE
  "libzeroone_algebra.a"
)
