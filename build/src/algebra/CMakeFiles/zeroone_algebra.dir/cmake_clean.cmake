file(REMOVE_RECURSE
  "CMakeFiles/zeroone_algebra.dir/algebra.cc.o"
  "CMakeFiles/zeroone_algebra.dir/algebra.cc.o.d"
  "CMakeFiles/zeroone_algebra.dir/ra_parser.cc.o"
  "CMakeFiles/zeroone_algebra.dir/ra_parser.cc.o.d"
  "libzeroone_algebra.a"
  "libzeroone_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
