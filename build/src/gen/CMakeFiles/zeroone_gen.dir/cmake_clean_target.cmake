file(REMOVE_RECURSE
  "libzeroone_gen.a"
)
