# Empty dependencies file for zeroone_gen.
# This may be replaced when dependencies are built.
