file(REMOVE_RECURSE
  "CMakeFiles/zeroone_gen.dir/random_db.cc.o"
  "CMakeFiles/zeroone_gen.dir/random_db.cc.o.d"
  "CMakeFiles/zeroone_gen.dir/random_query.cc.o"
  "CMakeFiles/zeroone_gen.dir/random_query.cc.o.d"
  "CMakeFiles/zeroone_gen.dir/scenarios.cc.o"
  "CMakeFiles/zeroone_gen.dir/scenarios.cc.o.d"
  "libzeroone_gen.a"
  "libzeroone_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
