file(REMOVE_RECURSE
  "CMakeFiles/zeroone_common.dir/bigint.cc.o"
  "CMakeFiles/zeroone_common.dir/bigint.cc.o.d"
  "CMakeFiles/zeroone_common.dir/partitions.cc.o"
  "CMakeFiles/zeroone_common.dir/partitions.cc.o.d"
  "CMakeFiles/zeroone_common.dir/polynomial.cc.o"
  "CMakeFiles/zeroone_common.dir/polynomial.cc.o.d"
  "CMakeFiles/zeroone_common.dir/rational.cc.o"
  "CMakeFiles/zeroone_common.dir/rational.cc.o.d"
  "libzeroone_common.a"
  "libzeroone_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
