# Empty compiler generated dependencies file for zeroone_common.
# This may be replaced when dependencies are built.
