
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bigint.cc" "src/common/CMakeFiles/zeroone_common.dir/bigint.cc.o" "gcc" "src/common/CMakeFiles/zeroone_common.dir/bigint.cc.o.d"
  "/root/repo/src/common/partitions.cc" "src/common/CMakeFiles/zeroone_common.dir/partitions.cc.o" "gcc" "src/common/CMakeFiles/zeroone_common.dir/partitions.cc.o.d"
  "/root/repo/src/common/polynomial.cc" "src/common/CMakeFiles/zeroone_common.dir/polynomial.cc.o" "gcc" "src/common/CMakeFiles/zeroone_common.dir/polynomial.cc.o.d"
  "/root/repo/src/common/rational.cc" "src/common/CMakeFiles/zeroone_common.dir/rational.cc.o" "gcc" "src/common/CMakeFiles/zeroone_common.dir/rational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
