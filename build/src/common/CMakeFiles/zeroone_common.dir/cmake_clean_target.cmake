file(REMOVE_RECURSE
  "libzeroone_common.a"
)
