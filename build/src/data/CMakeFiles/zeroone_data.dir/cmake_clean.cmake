file(REMOVE_RECURSE
  "CMakeFiles/zeroone_data.dir/database.cc.o"
  "CMakeFiles/zeroone_data.dir/database.cc.o.d"
  "CMakeFiles/zeroone_data.dir/homomorphism.cc.o"
  "CMakeFiles/zeroone_data.dir/homomorphism.cc.o.d"
  "CMakeFiles/zeroone_data.dir/io.cc.o"
  "CMakeFiles/zeroone_data.dir/io.cc.o.d"
  "CMakeFiles/zeroone_data.dir/isomorphism.cc.o"
  "CMakeFiles/zeroone_data.dir/isomorphism.cc.o.d"
  "CMakeFiles/zeroone_data.dir/relation.cc.o"
  "CMakeFiles/zeroone_data.dir/relation.cc.o.d"
  "CMakeFiles/zeroone_data.dir/tuple.cc.o"
  "CMakeFiles/zeroone_data.dir/tuple.cc.o.d"
  "CMakeFiles/zeroone_data.dir/valuation.cc.o"
  "CMakeFiles/zeroone_data.dir/valuation.cc.o.d"
  "CMakeFiles/zeroone_data.dir/value.cc.o"
  "CMakeFiles/zeroone_data.dir/value.cc.o.d"
  "libzeroone_data.a"
  "libzeroone_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
