
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/database.cc" "src/data/CMakeFiles/zeroone_data.dir/database.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/database.cc.o.d"
  "/root/repo/src/data/homomorphism.cc" "src/data/CMakeFiles/zeroone_data.dir/homomorphism.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/homomorphism.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/zeroone_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/io.cc.o.d"
  "/root/repo/src/data/isomorphism.cc" "src/data/CMakeFiles/zeroone_data.dir/isomorphism.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/isomorphism.cc.o.d"
  "/root/repo/src/data/relation.cc" "src/data/CMakeFiles/zeroone_data.dir/relation.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/relation.cc.o.d"
  "/root/repo/src/data/tuple.cc" "src/data/CMakeFiles/zeroone_data.dir/tuple.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/tuple.cc.o.d"
  "/root/repo/src/data/valuation.cc" "src/data/CMakeFiles/zeroone_data.dir/valuation.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/valuation.cc.o.d"
  "/root/repo/src/data/value.cc" "src/data/CMakeFiles/zeroone_data.dir/value.cc.o" "gcc" "src/data/CMakeFiles/zeroone_data.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
