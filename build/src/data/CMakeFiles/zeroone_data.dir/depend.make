# Empty dependencies file for zeroone_data.
# This may be replaced when dependencies are built.
