file(REMOVE_RECURSE
  "libzeroone_data.a"
)
