file(REMOVE_RECURSE
  "CMakeFiles/zeroone_constraints.dir/constraint.cc.o"
  "CMakeFiles/zeroone_constraints.dir/constraint.cc.o.d"
  "CMakeFiles/zeroone_constraints.dir/dependencies.cc.o"
  "CMakeFiles/zeroone_constraints.dir/dependencies.cc.o.d"
  "CMakeFiles/zeroone_constraints.dir/fd.cc.o"
  "CMakeFiles/zeroone_constraints.dir/fd.cc.o.d"
  "CMakeFiles/zeroone_constraints.dir/ind.cc.o"
  "CMakeFiles/zeroone_constraints.dir/ind.cc.o.d"
  "CMakeFiles/zeroone_constraints.dir/keys.cc.o"
  "CMakeFiles/zeroone_constraints.dir/keys.cc.o.d"
  "libzeroone_constraints.a"
  "libzeroone_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
