file(REMOVE_RECURSE
  "libzeroone_constraints.a"
)
