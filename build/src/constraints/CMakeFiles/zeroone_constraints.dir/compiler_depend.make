# Empty compiler generated dependencies file for zeroone_constraints.
# This may be replaced when dependencies are built.
