
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint.cc" "src/constraints/CMakeFiles/zeroone_constraints.dir/constraint.cc.o" "gcc" "src/constraints/CMakeFiles/zeroone_constraints.dir/constraint.cc.o.d"
  "/root/repo/src/constraints/dependencies.cc" "src/constraints/CMakeFiles/zeroone_constraints.dir/dependencies.cc.o" "gcc" "src/constraints/CMakeFiles/zeroone_constraints.dir/dependencies.cc.o.d"
  "/root/repo/src/constraints/fd.cc" "src/constraints/CMakeFiles/zeroone_constraints.dir/fd.cc.o" "gcc" "src/constraints/CMakeFiles/zeroone_constraints.dir/fd.cc.o.d"
  "/root/repo/src/constraints/ind.cc" "src/constraints/CMakeFiles/zeroone_constraints.dir/ind.cc.o" "gcc" "src/constraints/CMakeFiles/zeroone_constraints.dir/ind.cc.o.d"
  "/root/repo/src/constraints/keys.cc" "src/constraints/CMakeFiles/zeroone_constraints.dir/keys.cc.o" "gcc" "src/constraints/CMakeFiles/zeroone_constraints.dir/keys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/zeroone_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zeroone_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
