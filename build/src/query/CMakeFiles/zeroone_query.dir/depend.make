# Empty dependencies file for zeroone_query.
# This may be replaced when dependencies are built.
