
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/eval.cc" "src/query/CMakeFiles/zeroone_query.dir/eval.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/eval.cc.o.d"
  "/root/repo/src/query/formula.cc" "src/query/CMakeFiles/zeroone_query.dir/formula.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/formula.cc.o.d"
  "/root/repo/src/query/fragments.cc" "src/query/CMakeFiles/zeroone_query.dir/fragments.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/fragments.cc.o.d"
  "/root/repo/src/query/matcher.cc" "src/query/CMakeFiles/zeroone_query.dir/matcher.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/matcher.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/zeroone_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/zeroone_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/query.cc.o.d"
  "/root/repo/src/query/safety.cc" "src/query/CMakeFiles/zeroone_query.dir/safety.cc.o" "gcc" "src/query/CMakeFiles/zeroone_query.dir/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/zeroone_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
