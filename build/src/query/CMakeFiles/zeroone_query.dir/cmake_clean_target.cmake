file(REMOVE_RECURSE
  "libzeroone_query.a"
)
