file(REMOVE_RECURSE
  "CMakeFiles/zeroone_query.dir/eval.cc.o"
  "CMakeFiles/zeroone_query.dir/eval.cc.o.d"
  "CMakeFiles/zeroone_query.dir/formula.cc.o"
  "CMakeFiles/zeroone_query.dir/formula.cc.o.d"
  "CMakeFiles/zeroone_query.dir/fragments.cc.o"
  "CMakeFiles/zeroone_query.dir/fragments.cc.o.d"
  "CMakeFiles/zeroone_query.dir/matcher.cc.o"
  "CMakeFiles/zeroone_query.dir/matcher.cc.o.d"
  "CMakeFiles/zeroone_query.dir/parser.cc.o"
  "CMakeFiles/zeroone_query.dir/parser.cc.o.d"
  "CMakeFiles/zeroone_query.dir/query.cc.o"
  "CMakeFiles/zeroone_query.dir/query.cc.o.d"
  "CMakeFiles/zeroone_query.dir/safety.cc.o"
  "CMakeFiles/zeroone_query.dir/safety.cc.o.d"
  "libzeroone_query.a"
  "libzeroone_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
