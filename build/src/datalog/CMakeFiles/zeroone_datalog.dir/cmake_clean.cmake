file(REMOVE_RECURSE
  "CMakeFiles/zeroone_datalog.dir/eval.cc.o"
  "CMakeFiles/zeroone_datalog.dir/eval.cc.o.d"
  "CMakeFiles/zeroone_datalog.dir/measure.cc.o"
  "CMakeFiles/zeroone_datalog.dir/measure.cc.o.d"
  "CMakeFiles/zeroone_datalog.dir/parser.cc.o"
  "CMakeFiles/zeroone_datalog.dir/parser.cc.o.d"
  "CMakeFiles/zeroone_datalog.dir/program.cc.o"
  "CMakeFiles/zeroone_datalog.dir/program.cc.o.d"
  "libzeroone_datalog.a"
  "libzeroone_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
