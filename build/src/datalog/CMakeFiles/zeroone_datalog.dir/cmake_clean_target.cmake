file(REMOVE_RECURSE
  "libzeroone_datalog.a"
)
