# Empty compiler generated dependencies file for zeroone_datalog.
# This may be replaced when dependencies are built.
