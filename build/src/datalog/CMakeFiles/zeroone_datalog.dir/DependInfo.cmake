
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/eval.cc" "src/datalog/CMakeFiles/zeroone_datalog.dir/eval.cc.o" "gcc" "src/datalog/CMakeFiles/zeroone_datalog.dir/eval.cc.o.d"
  "/root/repo/src/datalog/measure.cc" "src/datalog/CMakeFiles/zeroone_datalog.dir/measure.cc.o" "gcc" "src/datalog/CMakeFiles/zeroone_datalog.dir/measure.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/zeroone_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/zeroone_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/zeroone_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/zeroone_datalog.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zeroone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/zeroone_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zeroone_data.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/zeroone_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
