
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparison.cc" "src/core/CMakeFiles/zeroone_core.dir/comparison.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/comparison.cc.o.d"
  "/root/repo/src/core/conditional.cc" "src/core/CMakeFiles/zeroone_core.dir/conditional.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/conditional.cc.o.d"
  "/root/repo/src/core/generic_instance.cc" "src/core/CMakeFiles/zeroone_core.dir/generic_instance.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/generic_instance.cc.o.d"
  "/root/repo/src/core/measure.cc" "src/core/CMakeFiles/zeroone_core.dir/measure.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/measure.cc.o.d"
  "/root/repo/src/core/owa.cc" "src/core/CMakeFiles/zeroone_core.dir/owa.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/owa.cc.o.d"
  "/root/repo/src/core/preference.cc" "src/core/CMakeFiles/zeroone_core.dir/preference.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/preference.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/zeroone_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/ranking.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/zeroone_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/support.cc" "src/core/CMakeFiles/zeroone_core.dir/support.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/support.cc.o.d"
  "/root/repo/src/core/support_polynomial.cc" "src/core/CMakeFiles/zeroone_core.dir/support_polynomial.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/support_polynomial.cc.o.d"
  "/root/repo/src/core/threevalued.cc" "src/core/CMakeFiles/zeroone_core.dir/threevalued.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/threevalued.cc.o.d"
  "/root/repo/src/core/ucq_compare.cc" "src/core/CMakeFiles/zeroone_core.dir/ucq_compare.cc.o" "gcc" "src/core/CMakeFiles/zeroone_core.dir/ucq_compare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/zeroone_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/zeroone_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zeroone_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zeroone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
