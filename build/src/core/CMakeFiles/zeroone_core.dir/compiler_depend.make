# Empty compiler generated dependencies file for zeroone_core.
# This may be replaced when dependencies are built.
