file(REMOVE_RECURSE
  "CMakeFiles/zeroone_core.dir/comparison.cc.o"
  "CMakeFiles/zeroone_core.dir/comparison.cc.o.d"
  "CMakeFiles/zeroone_core.dir/conditional.cc.o"
  "CMakeFiles/zeroone_core.dir/conditional.cc.o.d"
  "CMakeFiles/zeroone_core.dir/generic_instance.cc.o"
  "CMakeFiles/zeroone_core.dir/generic_instance.cc.o.d"
  "CMakeFiles/zeroone_core.dir/measure.cc.o"
  "CMakeFiles/zeroone_core.dir/measure.cc.o.d"
  "CMakeFiles/zeroone_core.dir/owa.cc.o"
  "CMakeFiles/zeroone_core.dir/owa.cc.o.d"
  "CMakeFiles/zeroone_core.dir/preference.cc.o"
  "CMakeFiles/zeroone_core.dir/preference.cc.o.d"
  "CMakeFiles/zeroone_core.dir/ranking.cc.o"
  "CMakeFiles/zeroone_core.dir/ranking.cc.o.d"
  "CMakeFiles/zeroone_core.dir/sampling.cc.o"
  "CMakeFiles/zeroone_core.dir/sampling.cc.o.d"
  "CMakeFiles/zeroone_core.dir/support.cc.o"
  "CMakeFiles/zeroone_core.dir/support.cc.o.d"
  "CMakeFiles/zeroone_core.dir/support_polynomial.cc.o"
  "CMakeFiles/zeroone_core.dir/support_polynomial.cc.o.d"
  "CMakeFiles/zeroone_core.dir/threevalued.cc.o"
  "CMakeFiles/zeroone_core.dir/threevalued.cc.o.d"
  "CMakeFiles/zeroone_core.dir/ucq_compare.cc.o"
  "CMakeFiles/zeroone_core.dir/ucq_compare.cc.o.d"
  "libzeroone_core.a"
  "libzeroone_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
