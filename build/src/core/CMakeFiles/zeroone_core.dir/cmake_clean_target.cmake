file(REMOVE_RECURSE
  "libzeroone_core.a"
)
