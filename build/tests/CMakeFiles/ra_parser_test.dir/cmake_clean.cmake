file(REMOVE_RECURSE
  "CMakeFiles/ra_parser_test.dir/ra_parser_test.cc.o"
  "CMakeFiles/ra_parser_test.dir/ra_parser_test.cc.o.d"
  "ra_parser_test"
  "ra_parser_test.pdb"
  "ra_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
