# Empty compiler generated dependencies file for ra_parser_test.
# This may be replaced when dependencies are built.
