file(REMOVE_RECURSE
  "CMakeFiles/conditional_test.dir/conditional_test.cc.o"
  "CMakeFiles/conditional_test.dir/conditional_test.cc.o.d"
  "conditional_test"
  "conditional_test.pdb"
  "conditional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
