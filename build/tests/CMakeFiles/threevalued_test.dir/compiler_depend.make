# Empty compiler generated dependencies file for threevalued_test.
# This may be replaced when dependencies are built.
