file(REMOVE_RECURSE
  "CMakeFiles/threevalued_test.dir/threevalued_test.cc.o"
  "CMakeFiles/threevalued_test.dir/threevalued_test.cc.o.d"
  "threevalued_test"
  "threevalued_test.pdb"
  "threevalued_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threevalued_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
