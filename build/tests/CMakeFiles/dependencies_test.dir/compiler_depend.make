# Empty compiler generated dependencies file for dependencies_test.
# This may be replaced when dependencies are built.
