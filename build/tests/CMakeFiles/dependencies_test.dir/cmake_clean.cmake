file(REMOVE_RECURSE
  "CMakeFiles/dependencies_test.dir/dependencies_test.cc.o"
  "CMakeFiles/dependencies_test.dir/dependencies_test.cc.o.d"
  "dependencies_test"
  "dependencies_test.pdb"
  "dependencies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependencies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
