file(REMOVE_RECURSE
  "CMakeFiles/owa_test.dir/owa_test.cc.o"
  "CMakeFiles/owa_test.dir/owa_test.cc.o.d"
  "owa_test"
  "owa_test.pdb"
  "owa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/owa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
