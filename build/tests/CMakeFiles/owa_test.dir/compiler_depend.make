# Empty compiler generated dependencies file for owa_test.
# This may be replaced when dependencies are built.
