# Empty dependencies file for fragments_test.
# This may be replaced when dependencies are built.
