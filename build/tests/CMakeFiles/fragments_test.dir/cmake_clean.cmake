file(REMOVE_RECURSE
  "CMakeFiles/fragments_test.dir/fragments_test.cc.o"
  "CMakeFiles/fragments_test.dir/fragments_test.cc.o.d"
  "fragments_test"
  "fragments_test.pdb"
  "fragments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
