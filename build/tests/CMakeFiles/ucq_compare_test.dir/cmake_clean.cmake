file(REMOVE_RECURSE
  "CMakeFiles/ucq_compare_test.dir/ucq_compare_test.cc.o"
  "CMakeFiles/ucq_compare_test.dir/ucq_compare_test.cc.o.d"
  "ucq_compare_test"
  "ucq_compare_test.pdb"
  "ucq_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucq_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
