# Empty dependencies file for ucq_compare_test.
# This may be replaced when dependencies are built.
