file(REMOVE_RECURSE
  "CMakeFiles/propositions_test.dir/propositions_test.cc.o"
  "CMakeFiles/propositions_test.dir/propositions_test.cc.o.d"
  "propositions_test"
  "propositions_test.pdb"
  "propositions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propositions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
