# Empty compiler generated dependencies file for propositions_test.
# This may be replaced when dependencies are built.
