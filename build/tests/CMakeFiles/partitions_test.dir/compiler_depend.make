# Empty compiler generated dependencies file for partitions_test.
# This may be replaced when dependencies are built.
