file(REMOVE_RECURSE
  "CMakeFiles/partitions_test.dir/partitions_test.cc.o"
  "CMakeFiles/partitions_test.dir/partitions_test.cc.o.d"
  "partitions_test"
  "partitions_test.pdb"
  "partitions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
