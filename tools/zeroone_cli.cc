// zeroone_cli — an interactive shell over the library.
//
// Reads commands from a script file (first non-flag argument) or stdin.
// Flags: --metrics[=FILE] dumps the observability counter registry as JSON
// on exit; --trace=FILE records scoped spans and writes Chrome trace_events
// JSON (load in chrome://tracing or https://ui.perfetto.dev). Lines starting
// with '#' are comments. Commands:
//
//   load <file>             load a database file (ParseDatabase format)
//   db <statement>          add one relation statement inline
//   show                    print the current database
//   query <text>            set the current query (ParseQuery syntax)
//   naive                   naive answers (= almost certainly true, Thm 1)
//   certain                 certain answers (exact, exponential in nulls)
//   possible                possible answers
//   best                    Best(Q,D) — support-maximal answers
//   bestmu                  Best_µ(Q,D) — best ∩ almost certainly true
//   mu <tuple>              µ(Q,D,ā) limit (0 or 1, by the 0-1 law)
//   muk <k> <tuple>         exact µ^k(Q,D,ā)
//   poly <tuple>            support-count polynomial |Supp^k| in k
//   compare <t1> <t2>       Supp inclusion between two tuples
//   fd <R> <arity> <l1,..> <rhs>    add a functional dependency
//   ind <R> <ar> <pos,..> <S> <ar> <pos,..>   add an inclusion dependency
//   constraints             list constraints
//   clear                   drop all constraints
//   cond <tuple>            exact conditional µ(Q|Σ,D,ā)
//   chase                   chase the database with the FD constraints
//   ra <expr>               evaluate a relational-algebra plan (naive);
//                           syntax in algebra/ra_parser.h
//   dlog <file>             load a datalog program (datalog/parser.h
//                           syntax) and print its goal relation over the
//                           current database (naive answers)
//   help                    this text
//   quit                    exit
//
// Example session:
//   db R1(2) = { (c1, _1), (c2, _1), (c2, _2) }
//   db R2(2) = { (c1, _2), (c2, _1), (_3, _1) }
//   query Q(x, y) := R1(x, y) & !R2(x, y)
//   naive
//   mu (c1, _1)
//   best

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/ra_parser.h"
#include "constraints/fd.h"
#include "constraints/ind.h"
#include "core/comparison.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "data/io.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/eval.h"
#include "query/parser.h"

namespace zeroone {
namespace {

struct Session {
  Database db;
  Query query;
  bool has_query = false;
  bool done = false;
  bool explain = false;  // --explain: print plans instead of evaluating.
  ConstraintSet constraints;
  std::vector<FunctionalDependency> fds;
};

// Commands whose evaluation --explain replaces with the chosen plan.
bool IsEvalCommand(const std::string& command) {
  return command == "naive" || command == "certain" ||
         command == "possible" || command == "best" || command == "bestmu" ||
         command == "mu" || command == "muk" || command == "poly" ||
         command == "compare" || command == "cond";
}

void PrintTuples(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) {
    std::cout << "  (none)\n";
    return;
  }
  for (const Tuple& t : tuples) std::cout << "  " << t.ToString() << "\n";
}

bool RequireQuery(const Session& session) {
  if (!session.has_query) {
    std::cout << "error: no query set (use `query <text>`)\n";
    return false;
  }
  return true;
}

StatusOr<Tuple> ParseTupleArg(const Session& session,
                              const std::string& text) {
  StatusOr<Tuple> tuple = ParseTuple(text);
  if (!tuple.ok()) return tuple;
  if (session.has_query && tuple->arity() != session.query.arity()) {
    return Status::Error("tuple arity " + std::to_string(tuple->arity()) +
                         " does not match query arity " +
                         std::to_string(session.query.arity()));
  }
  return tuple;
}

// Splits a comma list of numbers, e.g. "0,2".
StatusOr<std::vector<std::size_t>> ParsePositions(const std::string& text) {
  std::vector<std::size_t> positions;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) return Status::Error("empty position in '" + text + "'");
    std::size_t value = 0;
    for (char c : item) {
      if (c < '0' || c > '9') {
        return Status::Error("bad position list '" + text + "'");
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    positions.push_back(value);
  }
  if (positions.empty()) return Status::Error("empty position list");
  return positions;
}

void Handle(Session* session, const std::string& line) {
  std::stringstream stream(line);
  std::string command;
  stream >> command;
  if (command.empty() || command[0] == '#') return;
  std::string rest;
  std::getline(stream, rest);
  while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());

  if (session->explain && IsEvalCommand(command)) {
    if (!RequireQuery(*session)) return;
    std::cout << ExplainQueryPlan(session->query, session->db);
    return;
  }
  if (session->explain && command == "dlog") {
    std::ifstream file(rest);
    if (!file) {
      std::cout << "error: cannot open '" << rest << "'\n";
      return;
    }
    std::stringstream contents;
    contents << file.rdbuf();
    StatusOr<DatalogProgram> program = ParseDatalogProgram(contents.str());
    if (!program.ok()) {
      std::cout << "error: " << program.status().message() << "\n";
      return;
    }
    std::cout << ExplainDatalogPlan(*program, session->db);
    return;
  }
  if (command == "help") {
    std::cout << "commands: load db show query naive certain possible best ra dlog "
                 "bestmu mu muk poly compare fd ind constraints clear cond "
                 "chase help quit\n";
  } else if (command == "load") {
    std::ifstream file(rest);
    if (!file) {
      std::cout << "error: cannot open '" << rest << "'\n";
      return;
    }
    std::stringstream contents;
    contents << file.rdbuf();
    StatusOr<Database> db = ParseDatabase(contents.str());
    if (!db.ok()) {
      std::cout << "error: " << db.status().message() << "\n";
      return;
    }
    session->db = std::move(*db);
    std::cout << "loaded " << session->db.TupleCount() << " tuples\n";
  } else if (command == "db") {
    StatusOr<Database> parsed = ParseDatabase(rest);
    if (!parsed.ok()) {
      std::cout << "error: " << parsed.status().message() << "\n";
      return;
    }
    for (const auto& [name, rel] : parsed->relations()) {
      Relation& target = session->db.AddRelation(name, rel.arity());
      target.InsertBatch(rel);
    }
  } else if (command == "show") {
    std::cout << session->db.ToString() << "\n";
  } else if (command == "query") {
    StatusOr<Query> query = ParseQuery(rest);
    if (!query.ok()) {
      std::cout << "error: " << query.status().message() << "\n";
      return;
    }
    session->query = std::move(*query);
    session->has_query = true;
    std::cout << session->query.ToString() << "\n";
  } else if (command == "naive") {
    if (!RequireQuery(*session)) return;
    PrintTuples(NaiveEvaluate(session->query, session->db));
  } else if (command == "certain") {
    if (!RequireQuery(*session)) return;
    PrintTuples(CertainAnswers(session->query, session->db));
  } else if (command == "possible") {
    if (!RequireQuery(*session)) return;
    PrintTuples(PossibleAnswers(session->query, session->db));
  } else if (command == "best") {
    if (!RequireQuery(*session)) return;
    PrintTuples(BestAnswers(session->query, session->db));
  } else if (command == "bestmu") {
    if (!RequireQuery(*session)) return;
    PrintTuples(BestMuAnswers(session->query, session->db));
  } else if (command == "mu") {
    if (!RequireQuery(*session)) return;
    StatusOr<Tuple> tuple = ParseTupleArg(*session, rest);
    if (!tuple.ok()) {
      std::cout << "error: " << tuple.status().message() << "\n";
      return;
    }
    std::cout << "mu = " << MuLimit(session->query, session->db, *tuple)
              << "\n";
  } else if (command == "muk") {
    if (!RequireQuery(*session)) return;
    std::stringstream args(rest);
    std::size_t k = 0;
    args >> k;
    std::string tuple_text;
    std::getline(args, tuple_text);
    StatusOr<Tuple> tuple = ParseTupleArg(*session, tuple_text);
    if (!tuple.ok() || k == 0) {
      std::cout << "usage: muk <k> <tuple>\n";
      return;
    }
    SupportInstance instance =
        MakeSupportInstance(session->query, session->db, *tuple);
    if (k < instance.prefix.size()) {
      std::cout << "error: k must be at least |C ∪ Const(D)| = "
                << instance.prefix.size() << "\n";
      return;
    }
    Rational mu = MuK(session->query, session->db, *tuple, k);
    std::cout << "mu^" << k << " = " << mu.ToString() << " ≈ "
              << mu.ToDouble() << "\n";
  } else if (command == "poly") {
    if (!RequireQuery(*session)) return;
    StatusOr<Tuple> tuple = ParseTupleArg(*session, rest);
    if (!tuple.ok()) {
      std::cout << "error: " << tuple.status().message() << "\n";
      return;
    }
    SupportPolynomial poly =
        ComputeSupportPolynomial(session->query, session->db, *tuple);
    std::cout << "|Supp^k| = " << poly.count.ToString()
              << "   (valid for k >= " << poly.valid_from << "; |V^k| = "
              << TotalCountPolynomial(session->db).ToString() << ")\n";
  } else if (command == "compare") {
    if (!RequireQuery(*session)) return;
    // Two tuples: split at the closing parenthesis.
    std::size_t split = rest.find(')');
    if (split == std::string::npos) {
      std::cout << "usage: compare (t1) (t2)\n";
      return;
    }
    StatusOr<Tuple> a = ParseTupleArg(*session, rest.substr(0, split + 1));
    StatusOr<Tuple> b = ParseTupleArg(*session, rest.substr(split + 1));
    if (!a.ok() || !b.ok()) {
      std::cout << "usage: compare (t1) (t2)\n";
      return;
    }
    bool ab = WeaklyDominated(session->query, session->db, *a, *b);
    bool ba = WeaklyDominated(session->query, session->db, *b, *a);
    std::cout << "Supp(a) ⊆ Supp(b): " << (ab ? "yes" : "no")
              << "; Supp(b) ⊆ Supp(a): " << (ba ? "yes" : "no") << "\n";
    if (ab && !ba) std::cout << "a ◁ b (b is the better answer)\n";
    if (ba && !ab) std::cout << "b ◁ a (a is the better answer)\n";
    if (ab && ba) std::cout << "equal support\n";
    if (!ab && !ba) std::cout << "incomparable\n";
  } else if (command == "fd") {
    std::stringstream args(rest);
    std::string relation;
    std::size_t arity = 0;
    std::string lhs_text;
    std::size_t rhs = 0;
    args >> relation >> arity >> lhs_text >> rhs;
    StatusOr<std::vector<std::size_t>> lhs = ParsePositions(lhs_text);
    if (relation.empty() || arity == 0 || !lhs.ok()) {
      std::cout << "usage: fd <R> <arity> <l1,l2,..> <rhs>\n";
      return;
    }
    FunctionalDependency fd(relation, arity, *lhs, rhs);
    session->fds.push_back(fd);
    session->constraints.push_back(
        std::make_shared<FunctionalDependency>(fd));
    std::cout << "added " << fd.ToString() << "\n";
  } else if (command == "ind") {
    std::stringstream args(rest);
    std::string from, to, from_pos, to_pos;
    std::size_t from_arity = 0, to_arity = 0;
    args >> from >> from_arity >> from_pos >> to >> to_arity >> to_pos;
    StatusOr<std::vector<std::size_t>> fp = ParsePositions(from_pos);
    StatusOr<std::vector<std::size_t>> tp = ParsePositions(to_pos);
    if (from.empty() || to.empty() || !fp.ok() || !tp.ok()) {
      std::cout << "usage: ind <R> <arity> <pos,..> <S> <arity> <pos,..>\n";
      return;
    }
    auto ind = std::make_shared<InclusionDependency>(from, from_arity, *fp,
                                                     to, to_arity, *tp);
    std::cout << "added " << ind->ToString() << "\n";
    session->constraints.push_back(std::move(ind));
  } else if (command == "constraints") {
    if (session->constraints.empty()) std::cout << "  (none)\n";
    for (const ConstraintPtr& c : session->constraints) {
      std::cout << "  " << c->ToString() << "\n";
    }
  } else if (command == "clear") {
    session->constraints.clear();
    session->fds.clear();
  } else if (command == "cond") {
    if (!RequireQuery(*session)) return;
    StatusOr<Tuple> tuple = ParseTupleArg(*session, rest);
    if (!tuple.ok()) {
      std::cout << "error: " << tuple.status().message() << "\n";
      return;
    }
    ConditionalMeasure result = ComputeConditionalMu(
        session->query, session->constraints, session->db, *tuple);
    std::cout << "mu(Q|Sigma) = " << result.value.ToString();
    if (!result.sigma_satisfiable) std::cout << "   (Sigma unsatisfiable)";
    std::cout << "\n";
  } else if (command == "chase") {
    ChaseResult result = ChaseFds(session->fds, session->db);
    if (!result.success) {
      std::cout << "chase failed: " << result.failure_reason << "\n";
      return;
    }
    session->db = result.database;
    std::cout << session->db.ToString() << "\n";
  } else if (command == "ra") {
    StatusOr<RaExprPtr> plan = ParseRaExpr(rest, session->db.schema());
    if (!plan.ok()) {
      std::cout << "error: " << plan.status().message() << "\n";
      return;
    }
    std::cout << (*plan)->ToString() << "\n";
    PrintTuples((*plan)->Evaluate(session->db));
  } else if (command == "dlog") {
    std::ifstream file(rest);
    if (!file) {
      std::cout << "error: cannot open '" << rest << "'\n";
      return;
    }
    std::stringstream contents;
    contents << file.rdbuf();
    StatusOr<DatalogProgram> program = ParseDatalogProgram(contents.str());
    if (!program.ok()) {
      std::cout << "error: " << program.status().message() << "\n";
      return;
    }
    std::cout << program->ToString();
    PrintTuples(EvaluateDatalog(*program, session->db));
  } else if (command == "quit" || command == "exit") {
    session->done = true;
  } else {
    std::cout << "unknown command '" << command << "' (try `help`)\n";
  }
}

}  // namespace
}  // namespace zeroone

int main(int argc, char** argv) {
  // Observability flags, recognized anywhere on the command line:
  //   --metrics[=FILE]   dump the counter/histogram registry as JSON at exit
  //   --trace=FILE       record trace spans and write Chrome trace_events JSON
  bool dump_metrics = false;
  bool explain = false;
  std::string metrics_file;
  std::string trace_file;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      dump_metrics = true;
      metrics_file = arg.substr(std::string("--metrics=").size());
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_file = arg.substr(std::string("--trace=").size());
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help") {
      std::cout
          << "usage: zeroone_cli [--metrics[=FILE]] [--trace=FILE] "
             "[--explain] [script]\n"
             "\n"
             "Interactive REPL (or script runner) for certain-answer and\n"
             "almost-certain-answer evaluation over incomplete databases.\n"
             "\n"
             "  --metrics[=FILE]  dump the observability counter registry as\n"
             "                    JSON on exit (stdout when FILE is omitted)\n"
             "  --trace=FILE      record spans, write Chrome trace_events\n"
             "  --explain         evaluation commands print the cost-based\n"
             "                    plan (docs/planner.md) instead of running\n"
             "  script            newline-delimited command file; '#' starts\n"
             "                    a comment. Omit for an interactive prompt.\n"
             "\n"
             "Commands (type `help` at the prompt): load db show query naive\n"
             "certain possible best bestmu mu muk poly compare fd ind\n"
             "constraints clear cond chase ra dlog help quit.\n"
             "The same command surface is served over TCP by zeroone_server\n"
             "(see docs/serving.md).\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n"
                << "usage: zeroone_cli [--metrics[=FILE]] [--trace=FILE] "
                   "[--explain] [script] (try --help)\n";
      return 1;
    } else if (script.empty()) {
      script = arg;
    } else {
      std::cerr << "unexpected extra argument '" << arg << "'\n"
                << "usage: zeroone_cli [--metrics[=FILE]] [--trace=FILE] "
                   "[--explain] [script] (try --help)\n";
      return 1;
    }
  }
  if (!trace_file.empty()) {
    zeroone::obs::TraceBuffer::Global().Enable();
  }

  zeroone::Session session;
  session.explain = explain;
  std::istream* input = &std::cin;
  std::ifstream file;
  bool interactive = true;
  if (!script.empty()) {
    file.open(script);
    if (!file) {
      std::cerr << "cannot open script '" << script << "'\n";
      return 1;
    }
    input = &file;
    interactive = false;
  }
  std::string line;
  while (!session.done) {
    if (interactive) std::cout << "zeroone> " << std::flush;
    if (!std::getline(*input, line)) break;
    if (!interactive && !line.empty() && line[0] != '#') {
      std::cout << "zeroone> " << line << "\n";
    }
    zeroone::Handle(&session, line);
  }

  if (!trace_file.empty()) {
    zeroone::obs::TraceBuffer::Global().Disable();
    std::ofstream out(trace_file);
    if (!out) {
      std::cerr << "cannot write trace file '" << trace_file << "'\n";
      return 1;
    }
    zeroone::obs::TraceBuffer::Global().WriteChromeTrace(out);
  }
  if (dump_metrics) {
    if (metrics_file.empty()) {
      zeroone::obs::Registry::Global().DumpJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(metrics_file);
      if (!out) {
        std::cerr << "cannot write metrics file '" << metrics_file << "'\n";
        return 1;
      }
      zeroone::obs::Registry::Global().DumpJson(out);
      out << "\n";
    }
  }
  return 0;
}
