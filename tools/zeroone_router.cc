// zeroone_router — consistent-hash shard router (docs/serving.md,
// "Scaling out").
//
// Listens on the ZO1 wire protocol (and optionally the HTTP/JSON gateway)
// and forwards each request to one of a pool of zeroone_server backends,
// chosen by consistent-hashing the request's @session key. Sessions are
// the unit of state, so every request of a session lands on the same
// backend; backend death is answered with one same-backend reconnect, then
// failover to the next backend on the ring (bounded by --retry-backends),
// then UNAVAILABLE — which retrying clients treat as transient.
//
// Flags:
//   --backends=H:P,H:P,...  ordered backend list (required; the order is
//                           part of the hash-ring contract — every process
//                           that knows the list recomputes the placement)
//   --host=ADDR             listen address (default 127.0.0.1)
//   --port=N                ZO1 listen port; 0 = ephemeral (default 0)
//   --http-port=N           also serve the HTTP gateway on this port;
//                           0 = ephemeral; unset disables it
//   --threads=N             forwarding worker threads (default 4)
//   --queue=N               bounded admission queue (default 64)
//   --event-threads=N       epoll event-loop threads; 0 = auto (default 0)
//   --max-conns=N           refuse connections beyond N live ones
//   --ring-replicas=N       virtual nodes per backend (default 64)
//   --retry-backends=N      fallback backends after the owner (default 2)
//   --down-cooldown-ms=N    skip a twice-failed backend for N ms
//                           (default 1000)
//   --connect-timeout-ms=N  backend connect timeout (default 1000)
//   --io-timeout-ms=N       backend send/recv timeout (default 30000)
//   --bind-retry-ms=N       keep retrying EADDRINUSE binds for N ms
//   --metrics[=FILE]        dump the obs counter registry as JSON on exit
//   --help                  usage
//
// On startup the router prints one line to stdout:
//   listening on HOST:PORT
// and, when --http-port is set, a second line:
//   http listening on HOST:PORT
// (the same contract as zeroone_server, so scripts reuse their parsers).

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/net.h"
#include "obs/metrics.h"
#include "svc/router.h"

namespace {

zeroone::svc::Router* g_router = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: one write to the router's self-pipe; the main
  // thread performs the actual drain.
  if (g_router != nullptr) g_router->Notify();
}

void PrintUsage(std::ostream& os) {
  os << "usage: zeroone_router --backends=HOST:PORT,HOST:PORT,...\n"
        "                      [--host=ADDR] [--port=N] [--http-port=N]\n"
        "                      [--threads=N] [--queue=N] "
        "[--event-threads=N]\n"
        "                      [--max-conns=N] [--ring-replicas=N]\n"
        "                      [--retry-backends=N] [--down-cooldown-ms=N]\n"
        "                      [--connect-timeout-ms=N] [--io-timeout-ms=N]\n"
        "                      [--bind-retry-ms=N] [--metrics[=FILE]]\n"
        "Routes zeroone wire-protocol requests to backends by "
        "consistent-hashing the\n"
        "session key (docs/serving.md); SIGINT/SIGTERM drain gracefully.\n";
}

bool ParseUintFlag(const std::string& arg, const std::string& prefix,
                   std::uint64_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  if (value.empty()) return false;
  std::uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  zeroone::svc::RouterOptions options;
  bool have_backends = false;
  bool dump_metrics = false;
  std::string metrics_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--help") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("--backends=", 0) == 0) {
      zeroone::StatusOr<std::vector<zeroone::HostPort>> backends =
          zeroone::ParseEndpointList(arg.substr(11));
      if (!backends.ok()) {
        std::cerr << "bad --backends list: " << backends.status().message()
                  << "\n";
        PrintUsage(std::cerr);
        return 1;
      }
      options.backends = std::move(*backends);
      have_backends = true;
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (ParseUintFlag(arg, "--port=", &value)) {
      options.port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--http-port=", &value)) {
      options.http_port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--threads=", &value)) {
      options.threads = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--queue=", &value)) {
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--event-threads=", &value)) {
      options.event_threads = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--max-conns=", &value)) {
      options.max_conns = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--ring-replicas=", &value)) {
      options.ring_replicas = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--retry-backends=", &value)) {
      options.retry_backends = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--down-cooldown-ms=", &value)) {
      options.down_cooldown_ms = value;
    } else if (ParseUintFlag(arg, "--connect-timeout-ms=", &value)) {
      options.connect_timeout_ms = value;
    } else if (ParseUintFlag(arg, "--io-timeout-ms=", &value)) {
      options.io_timeout_ms = value;
    } else if (ParseUintFlag(arg, "--bind-retry-ms=", &value)) {
      options.bind_retry_ms = value;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      dump_metrics = true;
      metrics_file = arg.substr(10);
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }
  if (!have_backends || options.backends.empty()) {
    std::cerr << "error: --backends is required\n";
    PrintUsage(std::cerr);
    return 1;
  }

  zeroone::svc::Router router(options);
  g_router = &router;
  zeroone::Status started = router.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.message() << "\n";
    return 1;
  }

  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::cout << "listening on " << options.host << ":" << router.port()
            << std::endl;
  if (router.http_port() >= 0) {
    std::cout << "http listening on " << options.host << ":"
              << router.http_port() << std::endl;
  }
  std::cerr << "routing to " << options.backends.size() << " backends ("
            << options.ring_replicas << " ring replicas, "
            << options.retry_backends << " fallbacks):\n";
  for (const zeroone::HostPort& backend : options.backends) {
    std::cerr << "  " << zeroone::FormatHostPort(backend) << "\n";
  }

  router.WaitForShutdownRequest();
  std::cerr << "draining: finishing in-flight requests...\n";
  router.Shutdown();
  zeroone::svc::Router::Stats stats = router.stats();
  std::cerr << "drained: " << stats.requests_received << " requests ("
            << stats.forwarded << " forwarded, " << stats.failovers
            << " failovers, " << stats.unavailable << " unavailable, "
            << stats.bad_requests << " bad, " << stats.overloaded
            << " overloaded)\n";
  for (std::size_t i = 0; i < stats.per_backend_forwarded.size(); ++i) {
    std::cerr << "backend " << i << " ("
              << zeroone::FormatHostPort(options.backends[i])
              << "): " << stats.per_backend_forwarded[i] << " forwarded\n";
  }

  if (dump_metrics) {
    if (metrics_file.empty()) {
      zeroone::obs::Registry::Global().DumpJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(metrics_file);
      if (!out) {
        std::cerr << "cannot write metrics file '" << metrics_file << "'\n";
        return 1;
      }
      zeroone::obs::Registry::Global().DumpJson(out);
      out << "\n";
    }
  }
  return 0;
}
