// zeroone_loadgen — closed-loop load generator for zeroone_server.
//
// Opens N connections, each on its own session. In the default (read) mode
// every connection first runs a preamble (a small incomplete database plus
// a query with joins over nulls), then issues a rotating mix of read
// commands (certain / possible / naive) back-to-back, measuring per-request
// latency and tallying wire statuses. With --mu-heavy the preamble loads a
// null-rich database instead and the rotation leads with uncached `muk`
// requests — the heaviest analytical command the wire carries, evaluated on
// the server's morsel pool — so chaos runs exercise long parallel
// evaluations across kill windows, not just cheap reads. With --mutate
// each iteration instead
// inserts a unique tuple and persists it with `save`; a tuple is recorded
// in --ack-log only once it is durably acknowledged (save returned OK with
// no reconnect since the insert — see docs/robustness.md). --verify=FILE
// replays an ack-log against a (restarted) server and fails unless every
// acknowledged tuple is still visible.
//
// Failover verification: --phase=NAME stamps every ack-log line with a
// phase label (e.g. prekill3, postfailover), and --standby-port=N gives
// --verify a second endpoint — a tuple missing from the primary is
// re-checked against the standby, so a promoted follower that absorbed the
// acked writes still counts. The verify summary breaks results down per
// phase and reports how many tuples each endpoint served.
//
// Sharded serving (docs/serving.md, "Scaling out"): --endpoints=H:P,H:P,...
// names the backend pool behind a zeroone_router. Loadgen recomputes the
// router's consistent-hash placement with the same HashRing (the ordered
// endpoint list is the ring contract) and, after the run, asks each
// session's predicted backend directly whether it holds the session's
// state — the deterministic-placement assertion scripts/shard_serving.sh
// checks. The JSON summary gains a per-endpoint section (predicted
// sessions, placement checks). In --verify mode the endpoint list widens
// the search instead: an acknowledged tuple counts as visible if ANY
// endpoint serves it, so acked writes survive verification even after a
// backend death rehashed its sessions elsewhere.
//
// All traffic goes through svc::RetryingClient: transient failures
// (transport errors, OVERLOADED, UNAVAILABLE, SHUTTING_DOWN) are retried
// with jittered exponential backoff, and the summary reports how hard the
// retry machinery had to work. At the end it prints a human summary to
// stderr and a single JSON line to stdout (consumed by
// scripts/smoke_serving.sh and scripts/chaos_serving.sh).
//
// Flags:
//   --host=ADDR          server address (default 127.0.0.1)
//   --port=N             server port (required)
//   --connections=N      concurrent connections/threads (default 2)
//   --requests=N         iterations per connection after preamble (default 50)
//   --seconds=N          optional wall-clock cap; stop early when exceeded
//   --deadline-ms=N      attach @deadline_ms=N to every read request
//   --nocache            attach @nocache to every read request
//   --mu-heavy           analytical read mix: null-rich preamble, rotation
//                        led by uncached muk (µ^k) requests
//   --mutate             insert-and-save mode (see above)
//   --ack-log=FILE       append "session token [phase]" per acknowledged
//                        mutation
//   --phase=NAME         label this run's ack-log lines (default: none)
//   --verify=FILE        check every tuple in FILE is visible, then exit
//   --standby-port=N     verify fallback endpoint (same --host); a tuple
//                        counts if the primary OR the standby serves it
//   --endpoints=H:P,...  ordered backend list behind the router; enables
//                        per-endpoint tallies + placement checks (load
//                        mode) and any-endpoint search (--verify mode)
//   --ring-replicas=N    vnodes per backend for placement prediction; must
//                        match the router's --ring-replicas (default 64)
//   --retry-attempts=N   attempts per request incl. the first (default 5)
//   --retry-backoff-ms=N initial backoff; doubles, capped at 1000 (default 10)
//   --seed=N             base seed for retry jitter (default 1)
//   --faults=SPEC        install a client-side fault plan (ZEROONE_FAULT=ON
//                        builds only), e.g. seed=7,svc.client.send.fail=0.01
//   --help               usage
//
// Exit status 0 iff no request exhausted its retries (OVERLOADED /
// DEADLINE_EXCEEDED answers are the server working as designed) and at
// least one request returned OK; in --verify mode, iff every acknowledged
// tuple is visible.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "fault/fault.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/router.h"

namespace {

using zeroone::HostPort;
using zeroone::Status;
using zeroone::StatusOr;
using zeroone::svc::ClientOptions;
using zeroone::svc::Request;
using zeroone::svc::Response;
using zeroone::svc::RetryingClient;
using zeroone::svc::RetryPolicy;
using zeroone::svc::WireStatus;

constexpr const char* kDatabase =
    "R(2) = { (a, _1), (b, _1), (b, _2), (c, _3), (d, _4) } "
    "S(1) = { (a), (b), (_2) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y) & S(x)";

// --mu-heavy: four nulls make `muk 6` enumerate 6^4 valuations per request
// — tens of milliseconds of evaluation on the server's morsel pool, heavy
// enough to straddle a chaos kill window but bounded for CI.
constexpr const char* kMuHeavyDatabase =
    "R(2) = { (c1, _1), (c2, _2), (c3, _3), (c4, _4) }";
constexpr const char* kMuHeavyQuery = "Q(x) := exists y . R(x, y)";
constexpr const char* kMuHeavyArgs = "6 (c1)";

const char* const kReadCommands[] = {"certain", "possible", "naive", "certain"};
const char* const kMuHeavyCommands[] = {"muk", "certain", "muk", "naive"};

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t err = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t other = 0;
  std::uint64_t transport_failures = 0;  // Requests that exhausted retries.
  // Retry effort (aggregated from RetryingClient::Stats).
  std::uint64_t retried_requests = 0;  // Requests needing >1 attempt.
  std::uint64_t total_retries = 0;
  std::uint64_t max_retries = 0;  // Worst single request.
  std::uint64_t backoff_ms = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t acked = 0;  // --mutate: durably acknowledged tuples.
};

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 2;
  std::size_t requests = 50;
  std::uint64_t seconds = 0;
  std::uint64_t deadline_ms = 0;
  bool no_cache = false;
  bool mu_heavy = false;
  bool mutate = false;
  std::string ack_log;
  std::string phase;  // Optional third ack-log field; tallied by --verify.
  std::string verify_file;
  int standby_port = 0;  // --verify fallback endpoint; 0 = none.
  // --endpoints: the backend pool behind a router (order = ring contract).
  std::vector<HostPort> endpoints;
  std::size_t ring_replicas = 64;  // Must match the router's.
  int retry_attempts = 5;
  std::uint64_t retry_backoff_ms = 10;
  std::uint64_t seed = 1;
};

// Serializes ack-log appends across workers; each line is flushed so a
// SIGKILLed *loadgen* also leaves only fully-acknowledged lines behind.
class AckLog {
 public:
  explicit AckLog(const std::string& path) : out_(path, std::ios::app) {}
  bool ok() const { return out_.good(); }
  void Append(const std::string& session, const std::string& token,
              const std::string& phase) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << session << ' ' << token;
    if (!phase.empty()) out_ << ' ' << phase;
    out_ << '\n';
    out_.flush();
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

void PrintUsage(std::ostream& os) {
  os << "usage: zeroone_loadgen --port=N [--host=ADDR] [--connections=N]\n"
        "                       [--requests=N] [--seconds=N] "
        "[--deadline-ms=N] [--nocache]\n"
        "                       [--mu-heavy] [--mutate] [--ack-log=FILE] "
        "[--phase=NAME]\n"
        "                       [--verify=FILE] [--standby-port=N]\n"
        "                       [--endpoints=HOST:PORT,...] "
        "[--ring-replicas=N]\n"
        "                       [--retry-attempts=N] [--retry-backoff-ms=N] "
        "[--seed=N]\n"
        "                       [--faults=SPEC]\n";
}

bool ParseUintFlag(const std::string& arg, const std::string& prefix,
                   std::uint64_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  if (value.empty()) return false;
  std::uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

void Tally(WireStatus status, WorkerResult* result) {
  switch (status) {
    case WireStatus::kOk:
      ++result->ok;
      break;
    case WireStatus::kErr:
    case WireStatus::kBadRequest:
      ++result->err;
      break;
    case WireStatus::kOverloaded:
      ++result->overloaded;
      break;
    case WireStatus::kDeadlineExceeded:
      ++result->deadline_exceeded;
      break;
    case WireStatus::kUnavailable:
      ++result->unavailable;
      break;
    case WireStatus::kShuttingDown:
      ++result->shutting_down;
      break;
    default:
      ++result->other;
      break;
  }
}

RetryingClient MakeClient(const LoadgenOptions& options, std::size_t index) {
  RetryPolicy policy;
  policy.max_attempts = options.retry_attempts;
  policy.initial_backoff_ms = options.retry_backoff_ms;
  policy.seed = options.seed + index * 7919;  // Distinct jitter per worker.
  return RetryingClient(options.host, options.port, policy, ClientOptions());
}

// One retried call; updates per-request retry accounting and the tally.
// Returns the response when one arrived (transient or not); counts a
// transport failure when retries were exhausted without any response.
StatusOr<Response> TrackedCall(RetryingClient* client, const Request& request,
                               WorkerResult* result) {
  const RetryingClient::Stats before = client->stats();
  StatusOr<Response> response = client->CallWithRetry(request);
  const RetryingClient::Stats after = client->stats();
  std::uint64_t attempts = after.attempts - before.attempts;
  if (attempts > 1) {
    ++result->retried_requests;
    result->total_retries += attempts - 1;
    result->max_retries = std::max(result->max_retries, attempts - 1);
  }
  result->backoff_ms += after.backoff_ms - before.backoff_ms;
  result->reconnects += after.reconnects - before.reconnects;
  if (!response.ok()) {
    ++result->transport_failures;
  } else {
    Tally(response->status, result);
  }
  return response;
}

void RunReadWorker(const LoadgenOptions& options, std::size_t index,
                   std::chrono::steady_clock::time_point stop_at,
                   WorkerResult* result) {
  RetryingClient client = MakeClient(options, index);
  const std::string session = "loadgen" + std::to_string(index);
  std::uint64_t next_id = 1;
  auto make_request = [&](const std::string& command, const std::string& args,
                          bool read) {
    Request request;
    request.id = std::to_string(next_id++);
    request.session = session;
    request.command = command;
    request.args = args;
    if (read) {
      request.deadline_ms = options.deadline_ms;
      request.no_cache = options.no_cache;
    }
    return request;
  };

  StatusOr<Response> db_response = TrackedCall(
      &client,
      make_request("db", options.mu_heavy ? kMuHeavyDatabase : kDatabase,
                   false),
      result);
  StatusOr<Response> query_response = TrackedCall(
      &client,
      make_request("query", options.mu_heavy ? kMuHeavyQuery : kQuery, false),
      result);
  if (!db_response.ok() || !query_response.ok()) return;

  for (std::size_t i = 0; i < options.requests; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    const char* command =
        options.mu_heavy
            ? kMuHeavyCommands[i % (sizeof(kMuHeavyCommands) /
                                    sizeof(kMuHeavyCommands[0]))]
            : kReadCommands[i % (sizeof(kReadCommands) /
                                 sizeof(kReadCommands[0]))];
    const bool is_muk = std::string(command) == "muk";
    auto start = std::chrono::steady_clock::now();
    StatusOr<Response> response = TrackedCall(
        &client, make_request(command, is_muk ? kMuHeavyArgs : "", true),
        result);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!response.ok()) return;  // Retries exhausted: server unreachable.
    result->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
}

// --mutate: each iteration inserts one unique tuple into M(1) and persists
// it with `save`. The tuple is *acknowledged* (written to the ack-log) only
// when save returned OK and no reconnect happened between the insert and
// the save — after a reconnect the server may have restarted from a
// snapshot that predates the insert, so the pair is redone (Relation::
// Insert is idempotent, making the redo safe).
void RunMutateWorker(const LoadgenOptions& options, std::size_t index,
                     std::chrono::steady_clock::time_point stop_at,
                     AckLog* ack_log, WorkerResult* result) {
  RetryingClient client = MakeClient(options, index);
  const std::string session = "chaos" + std::to_string(index);
  std::uint64_t next_id = 1;
  auto make_request = [&](const std::string& command,
                          const std::string& args) {
    Request request;
    request.id = std::to_string(next_id++);
    request.session = session;
    request.command = command;
    request.args = args;
    return request;
  };

  for (std::size_t i = 0; i < options.requests; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    // The phase prefix keeps tokens from different run phases distinct, so
    // a multi-phase ack log tallies each phase's writes separately.
    const std::string token =
        (options.phase.empty() ? "m" : options.phase + "_m") +
        std::to_string(index) + "_" + std::to_string(i);
    const std::string args = "M(1) = { (" + token + ") }";
    auto start = std::chrono::steady_clock::now();
    bool acked = false;
    // Insert+save as a unit: redo both while the durability of the insert
    // is in doubt. The bound only guards against a server that never comes
    // back — each redo is cheap and idempotent.
    for (int round = 0; round < 64 && !acked; ++round) {
      StatusOr<Response> inserted =
          TrackedCall(&client, make_request("db", args), result);
      if (!inserted.ok()) return;  // Retries exhausted.
      if (inserted->status != WireStatus::kOk) {
        if (!zeroone::svc::IsTransientWireStatus(inserted->status)) return;
        continue;  // Gave up on a transient status; redo the pair.
      }
      const std::uint64_t reconnects_before = client.stats().reconnects;
      StatusOr<Response> saved =
          TrackedCall(&client, make_request("save", ""), result);
      if (!saved.ok()) return;
      if (saved->status != WireStatus::kOk) {
        if (!zeroone::svc::IsTransientWireStatus(saved->status)) return;
        continue;
      }
      if (client.stats().reconnects != reconnects_before) {
        // The save landed on a fresh connection — possibly a restarted
        // server that never saw the insert. Not durable; redo.
        continue;
      }
      acked = true;
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!acked) return;
    ++result->acked;
    if (ack_log != nullptr) ack_log->Append(session, token, options.phase);
    result->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
}

// --verify: every acknowledged tuple in the log must be visible via `show`
// on its session — on the primary, or (with --standby-port) on the standby
// endpoint, so acked writes absorbed by a promoted follower still count.
// Ack-log lines are "session token" or "session token phase"; tallies are
// kept per phase so a failover run can show that pre-kill and
// post-failover writes both survived. Returns the number of missing
// tuples.
std::uint64_t RunVerify(const LoadgenOptions& options) {
  std::ifstream in(options.verify_file);
  if (!in) {
    std::cerr << "cannot read ack log '" << options.verify_file << "'\n";
    return 1;
  }
  // session -> token -> phase ("" when the line had no phase field).
  std::map<std::string, std::map<std::string, std::string>> acked_by_session;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string session, token, phase;
    if (!(fields >> session >> token)) continue;  // Blank/partial line.
    fields >> phase;                              // Optional third field.
    acked_by_session[session][token] = phase;
  }

  // The search order: --endpoints (a sharded pool — any backend may hold a
  // rehashed session) wins; otherwise the primary --port plus the optional
  // --standby-port, preserving the failover-verify contract.
  std::vector<HostPort> targets;
  if (!options.endpoints.empty()) {
    targets = options.endpoints;
  } else {
    targets.push_back(HostPort{options.host, options.port});
    if (options.standby_port != 0) {
      targets.push_back(HostPort{options.host, options.standby_port});
    }
  }
  std::vector<std::unique_ptr<RetryingClient>> clients;
  clients.reserve(targets.size());
  for (std::size_t e = 0; e < targets.size(); ++e) {
    LoadgenOptions endpoint_options = options;
    endpoint_options.host = targets[e].host;
    endpoint_options.port = targets[e].port;
    clients.push_back(
        std::make_unique<RetryingClient>(MakeClient(endpoint_options, e)));
  }

  struct PhaseTally {
    std::uint64_t verified = 0;
    std::uint64_t missing = 0;
  };
  std::map<std::string, PhaseTally> by_phase;
  std::uint64_t verified = 0;
  std::uint64_t missing = 0;
  // endpoint_hits[e]: tuples first served by targets[e] (earlier endpoints
  // are asked first, so a tuple on several backends counts once).
  std::vector<std::uint64_t> endpoint_hits(targets.size(), 0);
  std::uint64_t id = 1;

  // One `show` per session per endpoint, fetched lazily: endpoint e is
  // asked only when endpoints 0..e-1 are missing some tuple.
  auto fetch = [&id](RetryingClient* client, const std::string& name,
                     std::string* payload) {
    Request request;
    request.id = std::to_string(id++);
    request.session = name;
    request.command = "show";
    StatusOr<Response> response = client->CallWithRetry(request);
    if (!response.ok() || response->status != WireStatus::kOk) return false;
    *payload = response->payload;
    return true;
  };

  for (const auto& [name, tokens] : acked_by_session) {
    std::vector<int> fetched(targets.size(), 0);  // 0 new, 1 ok, -1 failed.
    std::vector<std::string> payloads(targets.size());
    bool any_reachable = false;
    for (const auto& [t, phase] : tokens) {
      // Tuple constants render as "(token)"; substring match on the
      // parenthesized form avoids false hits on token prefixes.
      const std::string needle = "(" + t + ")";
      bool found = false;
      for (std::size_t e = 0; e < targets.size() && !found; ++e) {
        if (fetched[e] == 0) {
          fetched[e] = fetch(clients[e].get(), name, &payloads[e]) ? 1 : -1;
        }
        if (fetched[e] != 1) continue;
        any_reachable = true;
        if (payloads[e].find(needle) != std::string::npos) {
          found = true;
          ++endpoint_hits[e];
        }
      }
      if (found) {
        ++verified;
        ++by_phase[phase].verified;
      } else {
        if (!any_reachable) {
          std::cerr << "verify: cannot read session '" << name
                    << "' on any endpoint\n";
        }
        ++missing;
        ++by_phase[phase].missing;
        std::cerr << "verify: session '" << name << "' lost acknowledged "
                  << "tuple '" << t << "'";
        if (!phase.empty()) std::cerr << " (phase " << phase << ")";
        std::cerr << "\n";
      }
    }
  }

  std::cerr << "verify: " << verified << " acknowledged tuples visible, "
            << missing << " missing";
  if (targets.size() > 1) {
    std::cerr << " (";
    for (std::size_t e = 0; e < targets.size(); ++e) {
      if (e > 0) std::cerr << ", ";
      std::cerr << endpoint_hits[e] << " on "
                << zeroone::FormatHostPort(targets[e]);
    }
    std::cerr << ")";
  }
  std::cerr << "\n";
  for (const auto& [phase, tally] : by_phase) {
    if (phase.empty() && by_phase.size() == 1) break;  // Unphased log.
    std::cerr << "verify: phase " << (phase.empty() ? "(none)" : phase)
              << ": " << tally.verified << " visible, " << tally.missing
              << " missing\n";
  }

  // Legacy fields: the first endpoint is "primary"; everything an earlier
  // endpoint missed but a later one served is a "standby" hit.
  std::uint64_t standby_hits = 0;
  for (std::size_t e = 1; e < targets.size(); ++e) {
    standby_hits += endpoint_hits[e];
  }
  std::cout << "{\"verified\": " << verified << ", \"missing\": " << missing
            << ", \"primary_hits\": " << endpoint_hits[0]
            << ", \"standby_hits\": " << standby_hits
            << ", \"endpoint_hits\": {";
  for (std::size_t e = 0; e < targets.size(); ++e) {
    if (e > 0) std::cout << ", ";
    std::cout << "\"" << zeroone::FormatHostPort(targets[e])
              << "\": " << endpoint_hits[e];
  }
  std::cout << "}, \"phases\": {";
  bool first = true;
  for (const auto& [phase, tally] : by_phase) {
    if (!first) std::cout << ", ";
    first = false;
    std::cout << "\"" << (phase.empty() ? "unphased" : phase)
              << "\": {\"verified\": " << tally.verified
              << ", \"missing\": " << tally.missing << "}";
  }
  std::cout << "}}" << std::endl;
  return missing;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[index];
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  std::string faults_spec;
  bool have_faults_flag = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--help") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (ParseUintFlag(arg, "--port=", &value)) {
      options.port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--connections=", &value)) {
      options.connections = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--requests=", &value)) {
      options.requests = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--seconds=", &value)) {
      options.seconds = value;
    } else if (ParseUintFlag(arg, "--deadline-ms=", &value)) {
      options.deadline_ms = value;
    } else if (arg == "--nocache") {
      options.no_cache = true;
    } else if (arg == "--mu-heavy") {
      options.mu_heavy = true;
    } else if (arg == "--mutate") {
      options.mutate = true;
    } else if (arg.rfind("--ack-log=", 0) == 0) {
      options.ack_log = arg.substr(10);
    } else if (arg.rfind("--phase=", 0) == 0) {
      options.phase = arg.substr(8);
    } else if (arg.rfind("--verify=", 0) == 0) {
      options.verify_file = arg.substr(9);
    } else if (ParseUintFlag(arg, "--standby-port=", &value)) {
      options.standby_port = static_cast<int>(value);
    } else if (arg.rfind("--endpoints=", 0) == 0) {
      StatusOr<std::vector<HostPort>> endpoints =
          zeroone::ParseEndpointList(arg.substr(12));
      if (!endpoints.ok()) {
        std::cerr << "bad --endpoints list: " << endpoints.status().message()
                  << "\n";
        PrintUsage(std::cerr);
        return 1;
      }
      options.endpoints = std::move(*endpoints);
    } else if (ParseUintFlag(arg, "--ring-replicas=", &value)) {
      options.ring_replicas = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--retry-attempts=", &value)) {
      options.retry_attempts = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--retry-backoff-ms=", &value)) {
      options.retry_backoff_ms = value;
    } else if (ParseUintFlag(arg, "--seed=", &value)) {
      options.seed = value;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_spec = arg.substr(9);
      have_faults_flag = true;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }
  if (options.port == 0) {
    std::cerr << "missing required --port=N\n";
    PrintUsage(std::cerr);
    return 1;
  }
  if (options.connections == 0) options.connections = 1;
  for (char c : options.phase) {
    // The phase is embedded in mutate tokens, which must stay valid tuple
    // constants; letters, digits, and underscores only.
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      std::cerr << "--phase must be alphanumeric (plus '_')\n";
      return 1;
    }
  }

#if ZEROONE_FAULT_ENABLED
  {
    Status configured =
        have_faults_flag
            ? zeroone::fault::Registry::Global().Configure(faults_spec)
            : zeroone::fault::Registry::Global().ConfigureFromEnv();
    if (!configured.ok()) {
      std::cerr << "error: bad fault spec: " << configured.message() << "\n";
      return 1;
    }
  }
#else
  if (have_faults_flag) {
    std::cerr << "error: --faults requires a build with ZEROONE_FAULT=ON\n";
    return 1;
  }
#endif

  if (!options.verify_file.empty()) {
    return RunVerify(options) == 0 ? 0 : 1;
  }

  std::unique_ptr<AckLog> ack_log;
  if (!options.ack_log.empty()) {
    ack_log = std::make_unique<AckLog>(options.ack_log);
    if (!ack_log->ok()) {
      std::cerr << "cannot open ack log '" << options.ack_log << "'\n";
      return 1;
    }
  }

  auto start = std::chrono::steady_clock::now();
  auto stop_at = options.seconds == 0
                     ? std::chrono::steady_clock::time_point::max()
                     : start + std::chrono::seconds(options.seconds);

  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (options.mutate) {
      workers.emplace_back(RunMutateWorker, std::cref(options), i, stop_at,
                           ack_log.get(), &results[i]);
    } else {
      workers.emplace_back(RunReadWorker, std::cref(options), i, stop_at,
                           &results[i]);
    }
  }
  for (std::thread& worker : workers) worker.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.err += r.err;
    total.overloaded += r.overloaded;
    total.deadline_exceeded += r.deadline_exceeded;
    total.unavailable += r.unavailable;
    total.shutting_down += r.shutting_down;
    total.other += r.other;
    total.transport_failures += r.transport_failures;
    total.retried_requests += r.retried_requests;
    total.total_retries += r.total_retries;
    total.max_retries = std::max(total.max_retries, r.max_retries);
    total.backoff_ms += r.backoff_ms;
    total.reconnects += r.reconnects;
    total.acked += r.acked;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  double p50 = Percentile(&total.latencies_ms, 0.50);
  double p95 = Percentile(&total.latencies_ms, 0.95);
  double p99 = Percentile(&total.latencies_ms, 0.99);
  std::uint64_t answered = static_cast<std::uint64_t>(
      total.latencies_ms.size());

  // --endpoints: recompute the router's ring (same ordered backend list,
  // same replica count) and check shard placement — every session that
  // observed state must actually live on its predicted backend. A chaos
  // run that killed a backend may legitimately miss (read-session state is
  // not snapshotted), so this reports rather than fails; the no-kill smoke
  // asserts matches == checked.
  std::uint64_t placement_checked = 0;
  std::uint64_t placement_matches = 0;
  std::vector<std::uint64_t> placement_sessions;
  if (!options.endpoints.empty()) {
    zeroone::svc::HashRing ring(options.endpoints.size(),
                                options.ring_replicas);
    placement_sessions.assign(options.endpoints.size(), 0);
    // Read workers preamble a db into R; mutate workers insert into M.
    // `show` renders relations as "NAME = {(...)}", so a populated
    // relation of the right name proves the session's state is here.
    const std::string needle = options.mutate ? "M = {" : "R = {";
    std::uint64_t placement_id = 1;
    for (std::size_t i = 0; i < options.connections; ++i) {
      const std::string session =
          (options.mutate ? "chaos" : "loadgen") + std::to_string(i);
      const std::size_t owner = ring.Owner(session);
      ++placement_sessions[owner];
      const bool has_state =
          options.mutate ? results[i].acked > 0 : results[i].ok > 0;
      if (!has_state) continue;
      ++placement_checked;
      LoadgenOptions endpoint_options = options;
      endpoint_options.host = options.endpoints[owner].host;
      endpoint_options.port = options.endpoints[owner].port;
      RetryingClient direct = MakeClient(endpoint_options, i);
      Request request;
      request.id = "placement" + std::to_string(placement_id++);
      request.session = session;
      request.command = "show";
      StatusOr<Response> response = direct.CallWithRetry(request);
      if (response.ok() && response->status == WireStatus::kOk &&
          response->payload.find(needle) != std::string::npos) {
        ++placement_matches;
      } else {
        std::cerr << "loadgen: placement: session '" << session
                  << "' not found on predicted shard "
                  << zeroone::FormatHostPort(options.endpoints[owner])
                  << "\n";
      }
    }
  }

  std::cerr << "loadgen: " << answered << " "
            << (options.mutate ? "acknowledged" : "answered") << " in "
            << wall_s << "s (" << total.ok << " OK, " << total.err << " ERR, "
            << total.overloaded << " OVERLOADED, " << total.deadline_exceeded
            << " DEADLINE_EXCEEDED, " << total.unavailable << " UNAVAILABLE, "
            << total.shutting_down << " SHUTTING_DOWN, "
            << total.transport_failures << " gave up)\n"
            << "loadgen: retries: " << total.retried_requests
            << " requests retried (" << total.total_retries
            << " total, max " << total.max_retries << " per request), "
            << total.backoff_ms << "ms in backoff, " << total.reconnects
            << " reconnects\n"
            << "loadgen: latency ms p50=" << p50 << " p95=" << p95
            << " p99=" << p99 << "\n";
  if (!options.endpoints.empty()) {
    std::cerr << "loadgen: placement: " << placement_matches << "/"
              << placement_checked
              << " sessions with state on their predicted shard (";
    for (std::size_t e = 0; e < options.endpoints.size(); ++e) {
      if (e > 0) std::cerr << ", ";
      std::cerr << zeroone::FormatHostPort(options.endpoints[e]) << "="
                << placement_sessions[e];
    }
    std::cerr << " predicted)\n";
  }

  std::cout << "{\"answered\": " << answered << ", \"ok\": " << total.ok
            << ", \"err\": " << total.err
            << ", \"overloaded\": " << total.overloaded
            << ", \"deadline_exceeded\": " << total.deadline_exceeded
            << ", \"unavailable\": " << total.unavailable
            << ", \"shutting_down\": " << total.shutting_down
            << ", \"transport_failures\": " << total.transport_failures
            << ", \"retried_requests\": " << total.retried_requests
            << ", \"total_retries\": " << total.total_retries
            << ", \"max_retries\": " << total.max_retries
            << ", \"backoff_ms_total\": " << total.backoff_ms
            << ", \"reconnects\": " << total.reconnects
            << ", \"acked\": " << total.acked
            << ", \"wall_seconds\": " << wall_s
            << ", \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
            << ", \"p99\": " << p99 << "}";
  if (!options.endpoints.empty()) {
    std::cout << ", \"placement\": {\"checked\": " << placement_checked
              << ", \"matches\": " << placement_matches
              << ", \"predicted_sessions\": {";
    for (std::size_t e = 0; e < options.endpoints.size(); ++e) {
      if (e > 0) std::cout << ", ";
      std::cout << "\"" << zeroone::FormatHostPort(options.endpoints[e])
                << "\": " << placement_sessions[e];
    }
    std::cout << "}}";
  }
  std::cout << "}" << std::endl;

  return (total.transport_failures == 0 && total.ok > 0) ? 0 : 1;
}
