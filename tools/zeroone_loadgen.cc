// zeroone_loadgen — closed-loop load generator for zeroone_server.
//
// Opens N connections, each on its own session. Every connection first
// runs a preamble (a small incomplete database plus a query with joins
// over nulls), then issues a rotating mix of read commands (certain /
// possible / naive / mu) back-to-back, measuring per-request latency and
// tallying wire statuses. At the end it prints a human summary to stderr
// and a single JSON line to stdout (consumed by scripts/smoke_serving.sh).
//
// Flags:
//   --host=ADDR        server address (default 127.0.0.1)
//   --port=N           server port (required)
//   --connections=N    concurrent connections/threads (default 2)
//   --requests=N       requests per connection after preamble (default 50)
//   --seconds=N        optional wall-clock cap; stop early when exceeded
//   --deadline-ms=N    attach @deadline_ms=N to every read request
//   --nocache          attach @nocache to every read request
//   --help             usage
//
// Exit status is 0 iff every request got a well-formed response frame
// (OVERLOADED / DEADLINE_EXCEEDED count as well-formed — they are the
// server working as designed) and at least one request returned OK.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.h"
#include "svc/protocol.h"

namespace {

using zeroone::Status;
using zeroone::StatusOr;
using zeroone::svc::BlockingClient;
using zeroone::svc::Request;
using zeroone::svc::Response;
using zeroone::svc::WireStatus;

constexpr const char* kDatabase =
    "R(2) = { (a, _1), (b, _1), (b, _2), (c, _3), (d, _4) } "
    "S(1) = { (a), (b), (_2) }";
constexpr const char* kQuery = "Q(x) := exists y . R(x, y) & S(x)";

const char* const kReadCommands[] = {"certain", "possible", "naive", "certain"};

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t err = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t other = 0;
  std::uint64_t transport_failures = 0;
};

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 2;
  std::size_t requests = 50;
  std::uint64_t seconds = 0;
  std::uint64_t deadline_ms = 0;
  bool no_cache = false;
};

void PrintUsage(std::ostream& os) {
  os << "usage: zeroone_loadgen --port=N [--host=ADDR] [--connections=N]\n"
        "                       [--requests=N] [--seconds=N] "
        "[--deadline-ms=N] [--nocache]\n";
}

bool ParseUintFlag(const std::string& arg, const std::string& prefix,
                   std::uint64_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  if (value.empty()) return false;
  std::uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

void Tally(WireStatus status, WorkerResult* result) {
  switch (status) {
    case WireStatus::kOk:
      ++result->ok;
      break;
    case WireStatus::kErr:
    case WireStatus::kBadRequest:
      ++result->err;
      break;
    case WireStatus::kOverloaded:
      ++result->overloaded;
      break;
    case WireStatus::kDeadlineExceeded:
      ++result->deadline_exceeded;
      break;
    default:
      ++result->other;
      break;
  }
}

void RunWorker(const LoadgenOptions& options, std::size_t index,
               std::chrono::steady_clock::time_point stop_at,
               WorkerResult* result) {
  BlockingClient client;
  Status connected = client.Connect(options.host, options.port);
  if (!connected.ok()) {
    ++result->transport_failures;
    return;
  }
  const std::string session = "loadgen" + std::to_string(index);
  std::uint64_t next_id = 1;
  auto call = [&](const std::string& command, const std::string& args,
                  bool read) -> StatusOr<Response> {
    Request request;
    request.id = std::to_string(next_id++);
    request.session = session;
    request.command = command;
    request.args = args;
    if (read) {
      request.deadline_ms = options.deadline_ms;
      request.no_cache = options.no_cache;
    }
    return client.Call(request);
  };

  StatusOr<Response> db_response = call("db", kDatabase, /*read=*/false);
  StatusOr<Response> query_response = call("query", kQuery, /*read=*/false);
  if (!db_response.ok() || !query_response.ok()) {
    ++result->transport_failures;
    return;
  }

  for (std::size_t i = 0; i < options.requests; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    const char* command = kReadCommands[i % (sizeof(kReadCommands) /
                                             sizeof(kReadCommands[0]))];
    auto start = std::chrono::steady_clock::now();
    StatusOr<Response> response = call(command, "", /*read=*/true);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!response.ok()) {
      // Transport failure (server gone / frame never arrived) — this is
      // the condition the smoke test must catch, not a wire error status.
      ++result->transport_failures;
      return;
    }
    result->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(elapsed).count());
    Tally(response->status, result);
  }
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[index];
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--help") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (ParseUintFlag(arg, "--port=", &value)) {
      options.port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--connections=", &value)) {
      options.connections = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--requests=", &value)) {
      options.requests = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--seconds=", &value)) {
      options.seconds = value;
    } else if (ParseUintFlag(arg, "--deadline-ms=", &value)) {
      options.deadline_ms = value;
    } else if (arg == "--nocache") {
      options.no_cache = true;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }
  if (options.port == 0) {
    std::cerr << "missing required --port=N\n";
    PrintUsage(std::cerr);
    return 1;
  }
  if (options.connections == 0) options.connections = 1;

  auto start = std::chrono::steady_clock::now();
  auto stop_at = options.seconds == 0
                     ? std::chrono::steady_clock::time_point::max()
                     : start + std::chrono::seconds(options.seconds);

  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(RunWorker, std::cref(options), i, stop_at,
                         &results[i]);
  }
  for (std::thread& worker : workers) worker.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.err += r.err;
    total.overloaded += r.overloaded;
    total.deadline_exceeded += r.deadline_exceeded;
    total.other += r.other;
    total.transport_failures += r.transport_failures;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  double p50 = Percentile(&total.latencies_ms, 0.50);
  double p95 = Percentile(&total.latencies_ms, 0.95);
  double p99 = Percentile(&total.latencies_ms, 0.99);
  std::uint64_t answered = static_cast<std::uint64_t>(
      total.latencies_ms.size());

  std::cerr << "loadgen: " << answered << " answered in " << wall_s << "s ("
            << total.ok << " OK, " << total.err << " ERR, "
            << total.overloaded << " OVERLOADED, " << total.deadline_exceeded
            << " DEADLINE_EXCEEDED, " << total.transport_failures
            << " transport failures)\n"
            << "loadgen: latency ms p50=" << p50 << " p95=" << p95
            << " p99=" << p99 << "\n";

  std::cout << "{\"answered\": " << answered << ", \"ok\": " << total.ok
            << ", \"err\": " << total.err
            << ", \"overloaded\": " << total.overloaded
            << ", \"deadline_exceeded\": " << total.deadline_exceeded
            << ", \"transport_failures\": " << total.transport_failures
            << ", \"wall_seconds\": " << wall_s
            << ", \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
            << ", \"p99\": " << p99 << "}}" << std::endl;

  return (total.transport_failures == 0 && total.ok > 0) ? 0 : 1;
}
