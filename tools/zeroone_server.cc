// zeroone_server — the long-lived TCP query server (docs/serving.md).
//
// Speaks the newline-delimited zeroone wire protocol (src/svc/protocol.h)
// over named database sessions, with a worker pool, a bounded admission
// queue (OVERLOADED instead of unbounded buffering), a byte-bounded LRU
// result cache, and per-request deadlines (DEADLINE_EXCEEDED via
// cooperative cancellation). SIGINT/SIGTERM drain gracefully: the listener
// stops accepting, in-flight requests finish and are answered, then
// --metrics / --trace output is flushed.
//
// Flags:
//   --host=ADDR           listen address (default 127.0.0.1)
//   --port=N              listen port; 0 picks an ephemeral port (default 0)
//   --http-port=N         also serve the HTTP/JSON gateway (POST /v1/query,
//                         GET /metrics — docs/serving.md) on this port;
//                         0 picks an ephemeral port; unset disables it
//   --threads=N           worker threads (default 4)
//   --queue=N             bounded queue capacity (default 64)
//   --event-threads=N     epoll event-loop threads multiplexing all
//                         connections; 0 = min(4, hw_concurrency)
//                         (default 0)
//   --max-conns=N         refuse connections beyond N live ones with
//                         OVERLOADED; 0 = unlimited (default 0)
//   --legacy-readers      pre-epoll model: one blocking reader thread per
//                         connection (kept for differential testing)
//   --cache-bytes=N       result cache budget in bytes (default 8388608)
//   --deadline-ms=N       default per-request deadline; 0 = none (default 0)
//   --snapshot-dir=DIR    reload/persist session snapshots here
//                         (docs/robustness.md); unset disables persistence
//   --ack-mode=MODE       async | fsync (default async): in fsync mode a
//                         mutation is not acknowledged until its WAL record
//                         is fsync'd — durable across power loss, not just
//                         process death
//   --no-wal              disable the per-session write-ahead log (acked
//                         mutations then only survive via explicit `save`
//                         and drain snapshots, the pre-WAL contract)
//   --wal-compact-every=N fold a session's log into its snapshot after N
//                         records; 0 = never (default 256)
//   --follow=HOST:PORT    warm-standby mode: pull the primary's log from
//                         HOST:PORT, serve reads, answer mutations
//                         UNAVAILABLE, and promote to primary once the
//                         primary has been unreachable (transport-level
//                         failures only) for --promote-after-ms
//   --promote-after-ms=N  continuous transport-failure time before a
//                         follower promotes itself; 0 = never (default
//                         2000). Replication-level failures (the primary
//                         answered, but the stream is unusable) never
//                         promote — they alarm via svc.repl.pulls_broken
//   --pull-interval-ms=N  follower pull cadence (default 50)
//   --bind-retry-ms=N     keep retrying EADDRINUSE binds for N ms
//                         (default 2000; 0 fails immediately)
//   --faults=SPEC         install a fault plan, e.g.
//                         seed=42,svc.send.partial=0.01 (requires a build
//                         with ZEROONE_FAULT=ON; overrides ZEROONE_FAULTS)
//   --metrics[=FILE]      dump the obs counter registry as JSON on exit
//   --trace=FILE          record spans, write Chrome trace_events on exit
//   --help                usage
//
// The ZEROONE_FAULTS environment variable installs a fault plan with the
// same grammar; an explicit --faults flag wins over it.
//
// On startup the server prints one line to stdout:
//   listening on HOST:PORT
// and, when --http-port is set, a second line:
//   http listening on HOST:PORT
// (scripts parse the ports from these; see scripts/smoke_serving.sh).

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/net.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/server.h"

namespace {

zeroone::svc::Server* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: one write to the server's self-pipe; the main
  // thread performs the actual drain.
  if (g_server != nullptr) g_server->Notify();
}

void PrintUsage(std::ostream& os) {
  os << "usage: zeroone_server [--host=ADDR] [--port=N] [--http-port=N]\n"
        "                      [--threads=N]\n"
        "                      [--queue=N] [--event-threads=N] "
        "[--par-threads=N]\n"
        "                      [--max-conns=N]\n"
        "                      [--legacy-readers] [--cache-bytes=N] "
        "[--deadline-ms=N]\n"
        "                      [--snapshot-dir=DIR] [--ack-mode=async|fsync]\n"
        "                      [--no-wal] [--wal-compact-every=N]\n"
        "                      [--follow=HOST:PORT] [--promote-after-ms=N]\n"
        "                      [--pull-interval-ms=N] [--bind-retry-ms=N]\n"
        "                      [--faults=SPEC] [--metrics[=FILE]] "
        "[--trace=FILE]\n"
        "Serves the zeroone wire protocol (docs/serving.md); SIGINT/SIGTERM "
        "drain gracefully.\n"
        "With --snapshot-dir, acked mutations are write-ahead logged and "
        "survive crashes\n"
        "(--ack-mode=fsync makes the ack wait for the fsync); --follow runs "
        "a warm standby\n"
        "that replays the primary's log and takes over on its death "
        "(docs/robustness.md).\n";
}

bool ParseUintFlag(const std::string& arg, const std::string& prefix,
                   std::uint64_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  if (value.empty()) return false;
  std::uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  zeroone::svc::ServerOptions options;
  bool dump_metrics = false;
  std::string metrics_file;
  std::string trace_file;
  std::string faults_spec;
  bool have_faults_flag = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--help") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (ParseUintFlag(arg, "--port=", &value)) {
      options.port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--http-port=", &value)) {
      options.http_port = static_cast<int>(value);
    } else if (ParseUintFlag(arg, "--threads=", &value)) {
      options.threads = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--queue=", &value)) {
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--event-threads=", &value)) {
      options.event_threads = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--par-threads=", &value)) {
      // Intra-query morsel-team width; 0 = auto (hw threads / worker pool).
      options.par_threads = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--max-conns=", &value)) {
      options.max_conns = static_cast<std::size_t>(value);
    } else if (arg == "--legacy-readers") {
      options.legacy_readers = true;
    } else if (ParseUintFlag(arg, "--cache-bytes=", &value)) {
      options.cache_bytes = static_cast<std::size_t>(value);
    } else if (ParseUintFlag(arg, "--deadline-ms=", &value)) {
      options.default_deadline_ms = value;
    } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
      options.snapshot_dir = arg.substr(15);
    } else if (arg.rfind("--ack-mode=", 0) == 0) {
      const std::string mode = arg.substr(11);
      if (mode == "async") {
        options.ack_mode = zeroone::svc::AckMode::kAsync;
      } else if (mode == "fsync") {
        options.ack_mode = zeroone::svc::AckMode::kFsync;
      } else {
        std::cerr << "bad --ack-mode '" << mode << "' (async|fsync)\n";
        PrintUsage(std::cerr);
        return 1;
      }
    } else if (arg == "--no-wal") {
      options.wal = false;
    } else if (ParseUintFlag(arg, "--wal-compact-every=", &value)) {
      options.wal_compact_every = value;
    } else if (arg.rfind("--follow=", 0) == 0) {
      zeroone::StatusOr<zeroone::HostPort> target =
          zeroone::ParseHostPort(arg.substr(9));
      if (!target.ok()) {
        std::cerr << "bad --follow target: " << target.status().message()
                  << "\n";
        PrintUsage(std::cerr);
        return 1;
      }
      options.follow_host = target->host;
      options.follow_port = target->port;
    } else if (ParseUintFlag(arg, "--promote-after-ms=", &value)) {
      options.promote_after_ms = value;
    } else if (ParseUintFlag(arg, "--pull-interval-ms=", &value)) {
      options.pull_interval_ms = value;
    } else if (ParseUintFlag(arg, "--bind-retry-ms=", &value)) {
      options.bind_retry_ms = value;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_spec = arg.substr(9);
      have_faults_flag = true;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      dump_metrics = true;
      metrics_file = arg.substr(10);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_file = arg.substr(8);
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }
  if (!trace_file.empty()) {
    zeroone::obs::TraceBuffer::Global().Enable();
  }
#if ZEROONE_FAULT_ENABLED
  {
    zeroone::Status configured =
        have_faults_flag
            ? zeroone::fault::Registry::Global().Configure(faults_spec)
            : zeroone::fault::Registry::Global().ConfigureFromEnv();
    if (!configured.ok()) {
      std::cerr << "error: bad fault spec: " << configured.message() << "\n";
      return 1;
    }
    std::string plan = zeroone::fault::Registry::Global().PlanString();
    if (!plan.empty()) {
      std::cerr << "fault plan: " << plan << "\n";
    }
  }
#else
  if (have_faults_flag) {
    std::cerr << "error: --faults requires a build with ZEROONE_FAULT=ON\n";
    return 1;
  }
#endif

  zeroone::svc::Server server(options);
  g_server = &server;
  zeroone::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.message() << "\n";
    return 1;
  }

  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::cout << "listening on " << options.host << ":" << server.port()
            << std::endl;
  if (server.http_port() >= 0) {
    std::cout << "http listening on " << options.host << ":"
              << server.http_port() << std::endl;
  }
  if (options.legacy_readers) {
    std::cerr << "reader model: legacy (one thread per connection)\n";
  } else {
    std::cerr << "reader model: epoll, " << server.event_threads()
              << " event threads\n";
  }
  if (!options.snapshot_dir.empty()) {
    if (options.wal) {
      std::cerr << "durability: wal, "
                << (options.ack_mode == zeroone::svc::AckMode::kFsync
                        ? "fsync"
                        : "async")
                << " ack, compact every " << options.wal_compact_every
                << " records\n";
    } else {
      std::cerr << "durability: snapshots only (--no-wal)\n";
    }
  }

  server.WaitForShutdownRequest();
  std::cerr << "draining: finishing in-flight requests...\n";
  server.Shutdown();
  zeroone::svc::Server::Stats stats = server.stats();
  std::cerr << "drained: " << stats.requests_received << " requests ("
            << stats.overloaded << " overloaded, " << stats.bad_requests
            << " bad)\n";
  if (!options.snapshot_dir.empty()) {
    std::cerr << "snapshots: loaded " << stats.snapshots_loaded
              << ", quarantined " << stats.snapshots_quarantined << ", saved "
              << stats.snapshots_saved << "\n";
    if (options.wal) {
      std::cerr << "wal: replayed " << stats.wal_records_replayed
                << " records (" << stats.wal_truncated_tails
                << " torn tails truncated, " << stats.wal_quarantined
                << " spans set aside)\n";
    }
  }
  if (server.replicator() != nullptr) {
    zeroone::svc::Replicator::Stats repl = server.replicator()->stats();
    std::cerr << "replication: " << repl.pulls << " pulls ("
              << repl.pull_failures << " failed), " << repl.records_applied
              << " records applied, " << repl.snapshots_installed
              << " snapshots installed"
              << (repl.promoted ? ", PROMOTED to primary" : "") << "\n";
  }

  if (!trace_file.empty()) {
    zeroone::obs::TraceBuffer::Global().Disable();
    std::ofstream out(trace_file);
    if (!out) {
      std::cerr << "cannot write trace file '" << trace_file << "'\n";
      return 1;
    }
    zeroone::obs::TraceBuffer::Global().WriteChromeTrace(out);
  }
  if (dump_metrics) {
    if (metrics_file.empty()) {
      zeroone::obs::Registry::Global().DumpJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(metrics_file);
      if (!out) {
        std::cerr << "cannot write metrics file '" << metrics_file << "'\n";
        return 1;
      }
      zeroone::obs::Registry::Global().DumpJson(out);
      out << "\n";
    }
  }
  return 0;
}
