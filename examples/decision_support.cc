// The paper's Section 1 decision-support scenario, verbatim and at scale.
//
// Two supplier relations R1, R2 with customers and products; product fields
// obtained from data integration are partially unknown (marked nulls, some
// shared between suppliers). The analyst asks: which products did a
// customer buy *only* from supplier 1?
//
//   Q(x, y) = R1(x, y) ∧ ¬R2(x, y)
//
// The example shows everything the rigid notion of certain answers misses:
// certain answers are empty, yet two answers are almost certainly true, and
// one of them is strictly better supported than the other.

#include <cstdlib>
#include <iostream>

#include "constraints/fd.h"
#include "core/comparison.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "core/support.h"
#include "gen/scenarios.h"
#include "query/eval.h"

using namespace zeroone;

namespace {

void Headline(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

}  // namespace

int main() {
  IntroExample example = PaperIntroExample();
  const Query& q = example.query;
  const Database& db = example.db;
  std::cout << "Database (Section 1):\n" << db.ToString() << "\n";
  std::cout << "Query: " << q.ToString() << "\n";

  Tuple a{Value::Constant("c1"), Value::Null("1")};
  Tuple b{Value::Constant("c2"), Value::Null("2")};

  Headline("Certain answers");
  std::vector<Tuple> certain = CertainAnswers(q, db);
  std::cout << (certain.empty() ? "(empty — the classical notion gives up)\n"
                                : "unexpected!\n");

  Headline("Naive evaluation");
  for (const Tuple& t : NaiveEvaluate(q, db)) {
    std::cout << "  " << t.ToString() << "  — not certain: v(⊥1) = v(⊥2) "
              << "breaks it\n";
  }

  Headline("Measuring certainty: mu^k along k (both answers -> 1)");
  std::cout << "  k      mu^k(c1,⊥1)        mu^k(c2,⊥2)\n";
  for (std::size_t k = 4; k <= 24; k += 4) {
    Rational mu_a = MuK(q, db, a, k);
    Rational mu_b = MuK(q, db, b, k);
    std::cout << "  " << k << "\t" << mu_a.ToString() << " ≈ "
              << mu_a.ToDouble() << "\t" << mu_b.ToString() << " ≈ "
              << mu_b.ToDouble() << "\n";
  }
  std::cout << "  limit (0-1 law): mu = " << MuLimit(q, db, a) << " and "
            << MuLimit(q, db, b) << " — likely, though not certain\n";

  Headline("Comparing the two answers by support");
  bool a_below_b = WeaklyDominated(q, db, a, b);
  bool b_below_a = WeaklyDominated(q, db, b, a);
  std::cout << "  Supp(c1,⊥1) ⊆ Supp(c2,⊥2): " << (a_below_b ? "yes" : "no")
            << "\n  Supp(c2,⊥2) ⊆ Supp(c1,⊥1): " << (b_below_a ? "yes" : "no")
            << "\n  → (c2,⊥2) is the strictly better answer "
            << "(v(⊥3) = c1 can break (c1,⊥1) alone)\n";

  Headline("Best answers");
  for (const Tuple& t : BestAnswers(q, db)) {
    std::cout << "  " << t.ToString() << "\n";
  }

  Headline("Adding the constraint: customer determines product");
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("R1", 2, {0}, 1),
      FunctionalDependency("R2", 2, {0}, 1)};
  std::cout << "  Sigma = { R1: customer -> product, R2: customer -> product }\n";
  std::cout << "  mu(Q | Sigma, D, (c1,⊥1)) = "
            << ConditionalMuViaChase(q, fds, db, a)
            << "   (the FD forces ⊥1 = ⊥2; the answers vanish)\n";
  std::cout << "  mu(Q | Sigma, D, (c2,⊥2)) = "
            << ConditionalMuViaChase(q, fds, db, b) << "\n";

  Headline("The same pipeline at scale");
  IntroExample scaled = ScaledIntroExample(/*customers=*/200,
                                           /*orders_per_customer=*/10,
                                           /*null_fraction=*/0.25,
                                           /*seed=*/42);
  std::vector<Tuple> naive = NaiveEvaluate(scaled.query, scaled.db);
  std::size_t almost_certain = 0;
  for (const Tuple& t : naive) {
    almost_certain +=
        static_cast<std::size_t>(MuLimit(scaled.query, scaled.db, t));
  }
  std::cout << "  200 customers x 10 orders, 25% unknown products:\n";
  std::cout << "  naive answers: " << naive.size()
            << ", all almost certainly true: "
            << (almost_certain == naive.size() ? "yes" : "no") << "\n";
  return EXIT_SUCCESS;
}
