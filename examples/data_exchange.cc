// A miniature data-exchange pipeline — the application area the paper's
// introduction names first ("data integration, data exchange, and OBDA
// scenarios, where queries are directly applied to databases with nulls").
//
// Source data is translated into a target schema by schema-mapping TGDs;
// the chase materializes the canonical solution (inventing labeled nulls
// for unknown target values); the core minimizes it; and queries over the
// target are answered with the full ladder: naive evaluation, certain
// answers, the measure, and best answers.

#include <cstdlib>
#include <iostream>

#include "constraints/dependencies.h"
#include "core/comparison.h"
#include "core/measure.h"
#include "core/ranking.h"
#include "data/homomorphism.h"
#include "data/io.h"
#include "query/parser.h"

using namespace zeroone;

int main() {
  // Source: a flat CRM export.
  StatusOr<Database> source = ParseDatabase(R"(
    Customer(2) = { (acme, berlin), (bolt, paris) }
    Order(2)    = { (acme, widgets), (bolt, gears), (acme, gears) }
  )");
  if (!source.ok()) {
    std::cerr << source.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Source:\n" << source->ToString() << "\n\n";

  // Target schema: Account(id, name), Located(id, city), Buys(id, product).
  // The mapping invents account ids — the classic existential TGD pattern.
  DependencySet mapping;
  // Customer(n, c) → ∃i Account(i, n) ∧ Located(i, c).
  mapping.tgds.push_back(TupleGeneratingDependency(
      {{"Customer", {Term::Variable(0), Term::Variable(1)}}},
      {{"Account", {Term::Variable(2), Term::Variable(0)}},
       {"Located", {Term::Variable(2), Term::Variable(1)}}}));
  // Customer(n, c) ∧ Order(n, p) → ∃i Account(i, n) ∧ Located(i, c) ∧
  // Buys(i, p). Each firing invents an account; the location-only accounts
  // from the first rule become homomorphically redundant — the core test.
  mapping.tgds.push_back(TupleGeneratingDependency(
      {{"Customer", {Term::Variable(0), Term::Variable(1)}},
       {"Order", {Term::Variable(0), Term::Variable(3)}}},
      {{"Account", {Term::Variable(2), Term::Variable(0)}},
       {"Located", {Term::Variable(2), Term::Variable(1)}},
       {"Buys", {Term::Variable(2), Term::Variable(3)}}}));

  std::cout << "Mapping (weakly acyclic: "
            << (CheckWeakAcyclicity(mapping.tgds) ? "yes" : "no") << "):\n";
  for (const TupleGeneratingDependency& tgd : mapping.tgds) {
    std::cout << "  " << tgd.ToString() << "\n";
  }

  GeneralChaseResult chase = ChaseDependencies(mapping, *source);
  if (!chase.success) {
    std::cerr << "chase failed: " << chase.failure_reason << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nCanonical solution (chase output):\n"
            << chase.database.ToString() << "\n";
  Database core = ComputeCore(chase.database);
  std::cout << "\nCore (redundant invented accounts folded: "
            << chase.database.Nulls().size() << " -> " << core.Nulls().size()
            << " nulls):\n"
            << core.ToString() << "\n";

  // Query the target: which accounts buy gears, and where are they located?
  StatusOr<Query> q = ParseQuery(
      "GearBuyers(n, c) := exists i . Account(i, n) & Located(i, c) & "
      "Buys(i, gears)");
  if (!q.ok()) {
    std::cerr << q.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nQuery: which customers buy gears, and in which city?\n";
  std::cout << "Certain answers over the core:\n";
  for (const Tuple& t : CertainAnswers(*q, core)) {
    std::cout << "  " << t.ToString() << "\n";
  }

  // A query whose answer hinges on invented ids: do acme and bolt share an
  // account? Never — but naive/measure machinery proves it rather than
  // assumes it.
  StatusOr<Query> shared = ParseQuery(
      ":= exists i . Account(i, acme) & Account(i, bolt)");
  if (!shared.ok()) return EXIT_FAILURE;
  std::cout << "\nmu(acme and bolt share an account) = "
            << MuLimit(*shared, core)
            << "   (the invented ids are distinct nulls: almost certainly "
               "different accounts)\n";

  // Ranked answers at k = 12 for "accounts located in berlin" — invented
  // ids appear as nulls in the output, ranked by exact µ^k.
  StatusOr<Query> berlin =
      ParseQuery("InBerlin(i) := Located(i, berlin)");
  if (!berlin.ok()) return EXIT_FAILURE;
  std::cout << "\nRanked answers for accounts in berlin (k = 12):\n";
  for (const RankedAnswer& answer : RankAnswers(*berlin, core, 12)) {
    std::cout << "  " << answer.tuple.ToString() << "  mu^12 = "
              << answer.mu_k.ToString()
              << (answer.certain ? "  [certain]" : "") << "\n";
  }
  return EXIT_SUCCESS;
}
