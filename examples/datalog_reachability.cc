// Recursion meets the measure: reachability over an incomplete network.
//
// The 0–1 law (Theorem 1) needs only genericity, so it covers datalog —
// queries no first-order formula can express. This example models a network
// whose link table has unknown endpoints (marked nulls: the same unknown
// router may appear in several links) and asks which hosts can almost
// certainly reach which others.

#include <cstdlib>
#include <iostream>

#include "data/io.h"
#include "datalog/eval.h"
#include "datalog/measure.h"
#include "datalog/parser.h"

using namespace zeroone;

int main() {
  // Link(from, to): ⊥r is one concrete but unknown router; note it appears
  // in three links — marked nulls carry exactly this correlation.
  StatusOr<Database> db = ParseDatabase(R"(
    Link(2) = { (web, _r), (_r, app), (_r, cache), (app, db), (_x, db) }
  )");
  if (!db.ok()) {
    std::cerr << db.status().message() << "\n";
    return EXIT_FAILURE;
  }
  StatusOr<DatalogProgram> reach = ParseDatalogProgram(R"(
    % Transitive closure of Link.
    Reach(X, Y) :- Link(X, Y).
    Reach(X, Z) :- Link(X, Y), Reach(Y, Z).
    ?- Reach
  )");
  if (!reach.ok()) {
    std::cerr << reach.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Network:\n" << db->ToString() << "\n\n";
  std::cout << "Program:\n" << reach->ToString() << "\n";

  std::cout << "Naive reachability (= almost certainly true, Thm 1):\n";
  for (const Tuple& t : EvaluateDatalog(*reach, *db)) {
    std::cout << "  " << t.ToString() << "\n";
  }

  // web → db holds through ⊥r → app → db for *every* valuation: µ = 1.
  Tuple web_db{Value::Constant("web"), Value::Constant("db")};
  std::cout << "\nreach(web, db):  mu = "
            << DatalogMuViaPolynomial(*reach, *db, web_db).ToString()
            << "  (the unknown router is a real hop — certain)\n";

  // web → cache also goes through ⊥r: almost certain as well.
  Tuple web_cache{Value::Constant("web"), Value::Constant("cache")};
  std::cout << "reach(web, cache): mu = "
            << DatalogMuViaPolynomial(*reach, *db, web_cache).ToString()
            << "\n";

  // cache → db needs a lucky coincidence (v(⊥r)… there is no edge out of
  // cache unless some null collapses onto it): almost certainly false, but
  // the finite-k measure quantifies the residual chance.
  Tuple cache_db{Value::Constant("cache"), Value::Constant("db")};
  std::cout << "reach(cache, db): mu = "
            << DatalogMuViaPolynomial(*reach, *db, cache_db).ToString()
            << ", with mu^k = ";
  for (std::size_t k = 6; k <= 12; k += 3) {
    std::cout << DatalogMuK(*reach, *db, cache_db, k).ToString() << " (k="
              << k << ") ";
  }
  std::cout << "\n\nNo first-order query expresses reachability; the "
               "measure framework applies regardless (only genericity is "
               "needed).\n";
  return EXIT_SUCCESS;
}
