// Quickstart: the library in five minutes.
//
// Builds a small incomplete database, parses a query, and walks through the
// paper's ladder of notions: naïve answers, certain answers, the measure
// µ(Q,D,ā) with its 0–1 law, finite-k approximations µ^k, and support-based
// comparison of answers.

#include <cstdlib>
#include <iostream>

#include "core/comparison.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/support_polynomial.h"
#include "data/io.h"
#include "query/eval.h"
#include "query/parser.h"

using namespace zeroone;

int main() {
  // An incomplete database: _1, _2 denote the marked nulls ⊥1, ⊥2.
  StatusOr<Database> db = ParseDatabase(R"(
    Orders(2)   = { (alice, _1), (bob, _2), (bob, widget) }
    Shipped(2)  = { (alice, _1), (bob, widget) }
  )");
  if (!db.ok()) {
    std::cerr << db.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Database:\n" << db->ToString() << "\n\n";

  // Which orders have not shipped? Negation makes this non-monotone, so
  // certain answers are hard in general — the measure machinery applies to
  // any generic query.
  StatusOr<Query> query =
      ParseQuery("Pending(c, p) := Orders(c, p) & !Shipped(c, p)");
  if (!query.ok()) {
    std::cerr << query.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Query: " << query->ToString() << "\n\n";

  // Naïve evaluation: treat nulls as ordinary values.
  std::cout << "Naive answers (= almost certainly true answers, Thm 1):\n";
  for (const Tuple& t : NaiveEvaluate(*query, *db)) {
    std::cout << "  " << t.ToString() << "\n";
  }

  // Certain answers: true under every interpretation of the nulls.
  std::cout << "\nCertain answers:\n";
  std::vector<Tuple> certain = CertainAnswers(*query, *db);
  if (certain.empty()) std::cout << "  (none)\n";
  for (const Tuple& t : certain) std::cout << "  " << t.ToString() << "\n";

  // The measure: how close is (bob, ⊥2) to being certain? µ^k is the
  // fraction of valuations of nulls into {c₁..c_k} witnessing the answer.
  Tuple candidate{Value::Constant("bob"), Value::Null("2")};
  std::cout << "\nFinite-k measures for (bob, ⊥2):\n";
  for (std::size_t k = 4; k <= 32; k *= 2) {
    Rational mu_k = MuK(*query, *db, candidate, k);
    std::cout << "  mu^" << k << " = " << mu_k.ToString() << " ≈ "
              << mu_k.ToDouble() << "\n";
  }

  // The 0–1 law (Theorem 1): the limit is 0 or 1, and equals 1 exactly for
  // naïve answers. MuViaPolynomial computes the limit straight from the
  // definition (exact, via the partition-polynomial method).
  std::cout << "\nLimits (0-1 law):\n";
  std::cout << "  mu(bob, ⊥2)  = "
            << MuViaPolynomial(*query, *db, candidate).ToString() << "\n";
  Tuple shipped{Value::Constant("bob"), Value::Constant("widget")};
  std::cout << "  mu(bob, widget) = "
            << MuViaPolynomial(*query, *db, shipped).ToString()
            << "   (shipped, so almost certainly not pending)\n";

  // Comparing answers by support (Section 5): the best answers are the
  // support-maximal ones — they exist even when certain answers don't.
  std::cout << "\nBest answers (support-maximal):\n";
  for (const Tuple& t : BestAnswers(*query, *db)) {
    std::cout << "  " << t.ToString() << "\n";
  }
  return EXIT_SUCCESS;
}
