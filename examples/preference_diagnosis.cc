// Preferences over null values — the paper's Section 6 motivation made
// concrete: "if ⊥ stands for the disease of a particular patient in a
// database, we may have additional information on the likelihood of
// different diagnoses."
//
// The plain measure treats all constants as equally likely values for the
// unknown diagnosis; here each unknown carries a probability table, and the
// preference-weighted measure pref-µ interpolates between the 0–1 world of
// Theorem 1 (no information) and fully probabilistic answers.

#include <cstdlib>
#include <iostream>

#include "core/measure.h"
#include "core/preference.h"
#include "data/io.h"
#include "query/parser.h"

using namespace zeroone;

int main() {
  // Diagnosis(patient, disease); ⊥d is one undiagnosed condition shared by
  // two patients of the same household (marked nulls model exactly this),
  // ⊥e an unrelated unknown. Treats(drug, disease) is complete reference
  // data.
  StatusOr<Database> db = ParseDatabase(R"(
    Diagnosis(2) = { (ana, _d), (ben, _d), (cid, _e), (dee, flu) }
    Treats(2)    = { (oseltamivir, flu), (rest, cold), (rest, flu) }
  )");
  if (!db.ok()) {
    std::cerr << db.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Database:\n" << db->ToString() << "\n\n";

  StatusOr<Query> treatable = ParseQuery(
      "Treatable(p) := exists d, m . Diagnosis(p, d) & Treats(m, d)");
  if (!treatable.ok()) {
    std::cerr << treatable.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Query: " << treatable->ToString() << "\n\n";

  // Without side information, Theorem 1's verdict is all-or-nothing: an
  // unknown disease is almost surely a brand-new value no drug treats.
  std::cout << "Plain measure (no preference tables, 0-1 law):\n";
  for (const char* patient : {"ana", "ben", "cid", "dee"}) {
    Tuple t{Value::Constant(patient)};
    std::cout << "  mu(Treatable(" << patient
              << ")) = " << MuLimit(*treatable, *db, t) << "\n";
  }

  // The clinic's priors: the household condition ⊥d is flu (60%) or cold
  // (30%), something else with the remaining 10%; nothing is known about
  // ⊥e.
  std::vector<NullPreference> prefs = {
      {Value::Null("d"),
       {{Value::Constant("flu"), Rational(3, 5)},
        {Value::Constant("cold"), Rational(3, 10)}}}};
  std::cout << "\nWith diagnosis priors on ⊥d (flu 3/5, cold 3/10):\n";
  for (const char* patient : {"ana", "ben", "cid", "dee"}) {
    Tuple t{Value::Constant(patient)};
    StatusOr<Rational> mu =
        PreferenceMuLimit(*treatable, *db, t, prefs);
    if (!mu.ok()) {
      std::cerr << mu.status().message() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "  pref-mu(Treatable(" << patient
              << ")) = " << mu->ToString() << " ≈ " << mu->ToDouble()
              << "\n";
  }
  std::cout << "\nana and ben share the unknown ⊥d, so their answers are "
               "perfectly correlated (both 9/10); cid's unknown carries no "
               "prior, so the generic value dominates and pref-mu = 0; "
               "dee's flu is treatable outright.\n";

  // Correlation in action: "both ana and ben treatable" costs a single
  // draw of ⊥d, not two.
  StatusOr<Query> both = ParseQuery(
      ":= (exists d, m . Diagnosis(ana, d) & Treats(m, d)) & "
      "(exists d, m . Diagnosis(ben, d) & Treats(m, d))");
  if (!both.ok()) return EXIT_FAILURE;
  StatusOr<Rational> mu_both = PreferenceMuLimit(*both, *db, Tuple{}, prefs);
  if (!mu_both.ok()) return EXIT_FAILURE;
  std::cout << "\npref-mu(both ana and ben treatable) = "
            << mu_both->ToString()
            << "  — equal to the single-patient value, not its square: "
               "marked nulls carry the correlation.\n";
  return EXIT_SUCCESS;
}
