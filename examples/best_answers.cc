// Section 5 end to end: comparing answers and finding the best ones.
//
// 1. The paper's difference-query example where certain answers are empty
//    but a unique best answer exists.
// 2. Proposition 7: best/non-best is orthogonal to almost-certainly
//    true/false — all four combinations, with their finite-k measures.
// 3. The Theorem 8 fast path: for unions of conjunctive queries the
//    comparisons run in polynomial time; the example shows both algorithms
//    agreeing and the support table behind the comparison.

#include <cstdlib>
#include <iostream>

#include "core/comparison.h"
#include "core/measure.h"
#include "core/support.h"
#include "core/ucq_compare.h"
#include "data/io.h"
#include "gen/scenarios.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

void Headline(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

void PrintTuples(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) std::cout << "  (none)\n";
  for (const Tuple& t : tuples) std::cout << "  " << t.ToString() << "\n";
}

}  // namespace

int main() {
  Headline("Best answers when certain answers are empty (Section 5)");
  BestAnswerExample example = PaperBestAnswerExample();
  std::cout << example.db.ToString() << "\n";
  std::cout << "Q = " << example.query.ToString() << "\n";
  std::cout << "certain answers:\n";
  PrintTuples(CertainAnswers(example.query, example.db));
  std::cout << "(1,⊥1) ⊴ (2,⊥2): "
            << (WeaklyDominated(example.query, example.db, example.tuple_a,
                                example.tuple_b)
                    ? "yes"
                    : "no")
            << "   — v(⊥1)≠v(⊥2) ∧ v(⊥3)≠1 implies v(⊥1)≠v(⊥2) ∨ v(⊥3)≠2\n";
  std::cout << "best answers:\n";
  PrintTuples(BestAnswers(example.query, example.db));

  Headline("Proposition 7: best vs almost-certain, all four cells");
  for (bool with_g : {false, true}) {
    OrthogonalityExample ortho = Proposition7Example(with_g);
    std::cout << (with_g ? "\nwith G = {g} and Q'(x) = G(x) | Q(x):\n"
                         : "Q(x) = (B(x) & ∃y R(y,y)) | (A(x) & ¬∃y R(y,y)):\n");
    std::vector<Tuple> best = BestAnswers(ortho.query, ortho.db);
    auto in_best = [&](const Tuple& t) {
      for (const Tuple& candidate : best) {
        if (candidate == t) return true;
      }
      return false;
    };
    for (const Tuple& t : {ortho.tuple_a, ortho.tuple_b}) {
      std::cout << "  " << t.ToString() << ": "
                << (in_best(t) ? "best    " : "non-best") << "  mu = "
                << MuLimit(ortho.query, ortho.db, t) << "  (mu^8 = "
                << MuK(ortho.query, ortho.db, t, 8).ToString() << ")\n";
    }
  }

  Headline("Theorem 8: polynomial-time comparisons for UCQs");
  StatusOr<Database> db = ParseDatabase(R"(
    Speaks(2)  = { (ann, _l1), (ben, french), (_p1, german) }
    Visited(2) = { (ann, _l2), (ben, _l1) }
  )");
  if (!db.ok()) {
    std::cerr << db.status().message() << "\n";
    return EXIT_FAILURE;
  }
  StatusOr<Query> ucq = ParseQuery(
      "Candidates(x) := (exists l . Speaks(x, l)) | "
      "(exists c . Visited(x, c))");
  if (!ucq.ok()) {
    std::cerr << ucq.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << db->ToString() << "\n";
  std::cout << ucq->ToString() << "\n\n";
  StatusOr<std::vector<Tuple>> fast_best = UcqBestAnswers(*ucq, *db);
  if (!fast_best.ok()) {
    std::cerr << fast_best.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "best answers (polynomial Theorem 8 algorithm):\n";
  PrintTuples(*fast_best);
  std::cout << "best answers (generic bounded-range search):\n";
  PrintTuples(BestAnswers(*ucq, *db));

  Headline("The support table behind a comparison");
  // The paper's 5.1 instance where naive evaluation cannot decide ⊴.
  StatusOr<Database> small = ParseDatabase("R(2) = { (1, _e1), (_e2, 2) }");
  StatusOr<Query> returns_r = ParseQuery("Q(x, y) := R(x, y)");
  if (!small.ok() || !returns_r.ok()) return EXIT_FAILURE;
  Tuple a{Value::Constant("1"), Value::Constant("2")};
  Tuple b{Value::Constant("1"), Value::Constant("1")};
  SupportTable table = ComputeSupportTable(*returns_r, *small, {a, b});
  std::cout << "candidates (1,2) and (1,1) over " << table.valuation_count
            << " bounded-range valuations; witnessing counts: ";
  for (const std::vector<bool>& row : table.support) {
    std::size_t witnessed = 0;
    for (bool w : row) witnessed += static_cast<std::size_t>(w);
    std::cout << witnessed << " ";
  }
  std::cout << "\nSep((1,2),(1,1)) = "
            << (Separates(*returns_r, *small, a, b) ? "true" : "false")
            << ", so (1,2) ⊴ (1,1) fails even though naive evaluation of "
               "Q(1,2) → Q(1,1) is true.\n";
  return EXIT_SUCCESS;
}
