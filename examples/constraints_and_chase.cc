// Section 4 end to end: measuring certainty under integrity constraints.
//
// 1. The worked example where the conditional measure takes the values 1/3
//    and 2/3 — the 0–1 law genuinely fails under inclusion dependencies.
// 2. The Proposition 4 construction realizing *any* rational p/r.
// 3. The Section 4.3 example where constraints break naive evaluation.
// 4. Functional dependencies: the chase restores the 0–1 law (Theorem 5),
//    with the chase steps shown.

#include <cstdlib>
#include <iostream>

#include "constraints/fd.h"
#include "core/conditional.h"
#include "core/measure.h"
#include "data/io.h"
#include "gen/scenarios.h"
#include "query/parser.h"

using namespace zeroone;

namespace {

void Headline(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

}  // namespace

int main() {
  Headline("Conditional measure: the Section 4 example");
  ConditionalExample cond = PaperConditionalExample();
  std::cout << cond.db.ToString() << "\n";
  std::cout << "Sigma: " << cond.constraints[0]->ToString()
            << "   Query: " << cond.query.ToString() << "\n";
  ConditionalMeasure mu_a =
      ComputeConditionalMu(cond.query, cond.constraints, cond.db,
                           cond.tuple_a);
  ConditionalMeasure mu_b =
      ComputeConditionalMu(cond.query, cond.constraints, cond.db,
                           cond.tuple_b);
  std::cout << "mu(Q|Sigma, D, " << cond.tuple_a.ToString()
            << ") = " << mu_a.value.ToString() << "\n";
  std::cout << "mu(Q|Sigma, D, " << cond.tuple_b.ToString()
            << ") = " << mu_b.value.ToString() << "\n";
  std::cout << "support polynomials (in k): numerator "
            << mu_b.numerator.ToString() << ", denominator "
            << mu_b.denominator.ToString() << "\n";

  Headline("Proposition 4: any rational p/r is a conditional measure");
  std::cout << "  p/r      measured\n";
  for (auto [p, r] : {std::pair{1, 4}, std::pair{3, 5}, std::pair{5, 6},
                      std::pair{7, 11}}) {
    RationalValueExample example = Proposition4Example(
        static_cast<std::size_t>(p), static_cast<std::size_t>(r));
    Rational mu = ConditionalMu(example.query, example.constraints,
                                example.db);
    std::cout << "  " << p << "/" << r << "\t   " << mu.ToString() << "\n";
  }

  Headline("Section 4.3: constraints break naive evaluation");
  NaiveBreaksExample breaks = PaperNaiveBreaksExample();
  std::cout << breaks.db.ToString() << "\n";
  std::cout << "Q = " << breaks.query.ToString() << "\n";
  std::cout << "Q^naive(D) = " << MuLimit(breaks.query, breaks.db)
            << " (true), but mu(Q|Sigma, D) = "
            << ConditionalMu(breaks.query, breaks.constraints, breaks.db)
                   .ToString()
            << "\n";

  Headline("Functional dependencies: chase, then measure (Theorem 5)");
  StatusOr<Database> db = ParseDatabase(R"(
    Emp(3) = { (alice, _d1, london), (alice, _d2, _c1),
               (bob,   _d2, paris) }
  )");
  if (!db.ok()) {
    std::cerr << db.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Emp(name, dept, city):\n" << db->ToString() << "\n";
  // name -> dept, name -> city.
  std::vector<FunctionalDependency> fds = {
      FunctionalDependency("Emp", 3, {0}, 1),
      FunctionalDependency("Emp", 3, {0}, 2)};
  for (const FunctionalDependency& fd : fds) {
    std::cout << "FD: " << fd.ToString() << "\n";
  }
  ChaseResult chase = ChaseFds(fds, *db);
  if (!chase.success) {
    std::cout << "chase failed: " << chase.failure_reason << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nchase_Sigma(D):\n" << chase.database.ToString() << "\n";
  std::cout << "null mapping:\n";
  for (const auto& [from, to] : chase.null_mapping) {
    std::cout << "  " << from.ToString() << " -> " << to.ToString() << "\n";
  }
  StatusOr<Query> works_in_london =
      ParseQuery(":= exists d . Emp(alice, d, london)");
  if (!works_in_london.ok()) {
    std::cerr << works_in_london.status().message() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nQ = " << works_in_london->ToString() << "\n";
  std::cout << "mu(Q | Sigma, D) via chase      = "
            << ConditionalMuViaChase(*works_in_london, fds, *db, Tuple{})
            << "\n";
  ConstraintSet sigma;
  for (const FunctionalDependency& fd : fds) {
    sigma.push_back(std::make_shared<FunctionalDependency>(fd));
  }
  std::cout << "mu(Q | Sigma, D) exact (Thm 3)  = "
            << ConditionalMu(*works_in_london, sigma, *db).ToString()
            << "   — a 0-1 law again, as Theorem 5 promises\n";
  return EXIT_SUCCESS;
}
